"""Equivalence and behavior tests for the streaming stage engine.

The engine's contract is that chunked, prefetch-threaded execution
produces outputs *byte-identical* to the serial one-shot pipeline
functions — same gadgets in the same order, same trained weights,
same scores.  Everything here asserts exact equality.
"""

import numpy as np
import pytest

from repro.core.cache import GadgetCache
from repro.core.encode import encode_gadgets
from repro.core.engine import (EncodeStage, Engine, ExtractStage,
                               RunContext, ScoreStage, Stage,
                               TrainResult, TrainStage)
from repro.core.extract import CaseResult, extract_gadgets
from repro.core.resilience import Quarantine
from repro.core.score import predict_proba
from repro.core.telemetry import Telemetry
from repro.core.train import train_classifier
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(40, seed=17)


@pytest.fixture(scope="module")
def reference_gadgets(corpus):
    return extract_gadgets(corpus)


def build_net(dataset):
    model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8,
                        pretrained=dataset.word2vec.vectors, seed=3)
    dataset.bind_embedding_aliases(model)
    return model


def state_of(model):
    return {key: value.copy()
            for key, value in model.state_dict().items()}


class TestRunContext:
    def test_create_coerces_paths(self, tmp_path):
        ctx = RunContext.create(cache=tmp_path / "cache",
                                quarantine=tmp_path / "q.jsonl",
                                checkpoint_dir=str(tmp_path / "ckpt"))
        assert isinstance(ctx.cache, GadgetCache)
        assert isinstance(ctx.quarantine, Quarantine)
        assert ctx.checkpoint_dir == tmp_path / "ckpt"
        assert isinstance(ctx.telemetry, Telemetry)
        assert ctx.failures == []

    def test_create_passes_objects_through(self, tmp_path):
        telemetry = Telemetry()
        quarantine = Quarantine(tmp_path / "q.jsonl")
        ctx = RunContext.create(telemetry=telemetry,
                                quarantine=quarantine)
        assert ctx.telemetry is telemetry
        assert ctx.quarantine is quarantine
        assert ctx.cache is None
        assert ctx.checkpoint_dir is None

    def test_contexts_do_not_share_mutable_defaults(self):
        first, second = RunContext.create(), RunContext.create()
        assert first.failures is not second.failures
        assert first.telemetry is not second.telemetry


class TestExtractEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_chunked_extraction_matches_one_shot(
            self, corpus, reference_gadgets, chunk_size):
        chunks = Engine(ExtractStage(),
                        chunk_size=chunk_size).run(corpus)
        gadgets = [g for chunk in chunks for g in chunk]
        assert gadgets == reference_gadgets

    def test_dedup_is_stateful_across_chunks(self, corpus,
                                             reference_gadgets):
        # chunk_size=1 puts every case in its own chunk; cross-case
        # duplicates must still be dropped exactly like the one-shot
        # corpus-order dedup does
        ctx = RunContext.create()
        chunks = Engine(ExtractStage(), ctx=ctx, chunk_size=1
                        ).run(corpus)
        gadgets = [g for chunk in chunks for g in chunk]
        assert gadgets == reference_gadgets
        reference_telemetry = Telemetry()
        extract_gadgets(corpus, telemetry=reference_telemetry)
        assert (ctx.telemetry.get("gadgets_emitted")
                == reference_telemetry.get("gadgets_emitted"))
        assert (ctx.telemetry.get("dedup_hits")
                == reference_telemetry.get("dedup_hits"))

    def test_streaming_off_matches_streaming_on(self, corpus):
        on = Engine(ExtractStage(), chunk_size=8,
                    streaming=True).run(corpus)
        off = Engine(ExtractStage(), chunk_size=8,
                     streaming=False).run(corpus)
        assert on == off

    def test_per_case_results_carry_case_identity(self, corpus):
        chunks = Engine(ExtractStage(deduplicate=False, per_case=True),
                        chunk_size=8).run(corpus)
        results = [r for chunk in chunks for r in chunk]
        assert all(isinstance(r, CaseResult) for r in results)
        assert [r.case.name for r in results] == \
            [case.name for case in corpus]

    def test_cache_rides_the_context(self, corpus, tmp_path):
        ctx = RunContext.create(cache=tmp_path / "cache")
        Engine(ExtractStage(), ctx=ctx, chunk_size=8).run(corpus)
        assert ctx.telemetry.get("cache_misses") == len(corpus)
        warm = RunContext.create(cache=tmp_path / "cache")
        Engine(ExtractStage(), ctx=warm, chunk_size=8).run(corpus)
        assert warm.telemetry.get("cache_hits") == len(corpus)


class TestEncodeAndTrainEquivalence:
    def test_engine_dataset_matches_one_shot_encode(
            self, corpus, reference_gadgets):
        expected = encode_gadgets(reference_gadgets, dim=8,
                                  w2v_epochs=1, seed=13)
        dataset = Engine(ExtractStage(),
                         EncodeStage(dim=8, w2v_epochs=1, seed=13),
                         chunk_size=8).run(corpus)
        assert len(dataset.samples) == len(expected.samples)
        for ours, theirs in zip(dataset.samples, expected.samples):
            assert np.array_equal(ours.token_ids, theirs.token_ids)
            assert ours.label == theirs.label
        assert np.array_equal(dataset.word2vec.vectors,
                              expected.word2vec.vectors)

    def test_engine_trained_weights_match_serial_path(
            self, corpus, reference_gadgets):
        expected_dataset = encode_gadgets(reference_gadgets, dim=8,
                                          w2v_epochs=1, seed=13)
        expected_model = build_net(expected_dataset)
        train_classifier(expected_model, expected_dataset.samples,
                         epochs=2, batch_size=16, lr=3e-3, seed=5)

        result = Engine(ExtractStage(),
                        EncodeStage(dim=8, w2v_epochs=1, seed=13),
                        TrainStage(build_net, epochs=2,
                                   batch_size=16, lr=3e-3, seed=5),
                        chunk_size=8).run(corpus)
        assert isinstance(result, TrainResult)
        left, right = state_of(result.model), state_of(expected_model)
        assert sorted(left) == sorted(right)
        for key in left:
            assert np.array_equal(left[key], right[key]), key

    def test_empty_corpus_raises(self):
        engine = Engine(ExtractStage(),
                        EncodeStage(dim=8, w2v_epochs=0, seed=13))
        with pytest.raises(ValueError, match="no gadgets"):
            engine.run([])


class TestScoreEquivalence:
    def test_engine_scores_match_serial_chunk_scoring(
            self, reference_gadgets):
        dataset = encode_gadgets(reference_gadgets, dim=8,
                                 w2v_epochs=0, seed=13)
        model = build_net(dataset)
        # The engine guarantee: threading chunks through ScoreStage
        # (and its prefetch boundary) is bit-equal to calling
        # predict_proba on the same chunks serially.
        expected = np.concatenate(
            [predict_proba(model,
                           [g.sample(dataset.vocab)
                            for g in reference_gadgets[i:i + 5]])
             for i in range(0, len(reference_gadgets), 5)])

        chunks = Engine(ScoreStage(model, dataset.vocab),
                        chunk_size=5).run(reference_gadgets)
        scores = np.concatenate([s for _, s in chunks])
        gadgets = [g for g_chunk, _ in chunks for g in g_chunk]
        assert gadgets == reference_gadgets
        assert np.array_equal(scores, expected)
        # and within float tolerance of the one-shot full-corpus pass
        # (bitwise identity across *different* batch compositions is a
        # BLAS property we do not promise)
        one_shot = predict_proba(
            model, [g.sample(dataset.vocab) for g in reference_gadgets])
        assert np.allclose(scores, one_shot, atol=1e-6)


class _Boom(Stage):
    name = "boom"
    streaming = True

    def __init__(self):
        self.closed = False

    def process(self, chunk, ctx):
        raise RuntimeError("boom")

    def close(self, ctx):
        self.closed = True


class TestEngineMechanics:
    def test_stage_error_propagates_through_prefetch(self, corpus):
        boom = _Boom()
        tail = ExtractStage()
        engine = Engine(boom, tail, chunk_size=4)
        with pytest.raises(RuntimeError, match="boom"):
            engine.run(corpus[:8])
        assert boom.closed  # stages are closed even on failure

    def test_run_requires_stages(self):
        with pytest.raises(ValueError):
            Engine()

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            Engine(ExtractStage(), chunk_size=0)

    def test_stream_is_lazy(self, corpus):
        consumed = []

        class Probe(Stage):
            streaming = True

            def process(self, chunk, ctx):
                consumed.append(len(chunk))
                return chunk

        stream = Engine(Probe(), chunk_size=4,
                        streaming=False).stream(corpus)
        assert consumed == []  # nothing ran before iteration
        next(stream)
        assert consumed == [4]
        stream.close()


class TestPrefetchCleanup:
    """Regression: abandoning an ``Engine.stream`` generator used to
    close the stages while the ``_Prefetch`` pump thread could still
    be blocked on ``queue.put`` against a full queue — leaking the
    thread and racing the closed ``CorpusExtractor``."""

    @staticmethod
    def _prefetch_threads():
        import threading

        return [t for t in threading.enumerate()
                if t.name == "engine-prefetch" and t.is_alive()]

    def _assert_pumps_exit(self):
        import time

        deadline = time.time() + 5.0
        while self._prefetch_threads():
            assert time.time() < deadline, (
                f"leaked pump thread(s): {self._prefetch_threads()}")
            time.sleep(0.01)

    def test_early_break_joins_pump_threads(self, corpus):
        assert not self._prefetch_threads()

        class Identity(Stage):
            name = "identity"
            streaming = True

            def process(self, chunk, ctx):
                return chunk

        # chunk_size 1 + prefetch 1: the pump fills the queue and
        # blocks on put long before the consumer drains 40 chunks.
        engine = Engine(ExtractStage(per_case=True), Identity(),
                        chunk_size=1, prefetch=1)
        stream = engine.stream(corpus)
        next(stream)
        stream.close()  # early abandon, as ScanService's callers may
        self._assert_pumps_exit()

    def test_early_break_in_for_loop(self, corpus):
        engine = Engine(ExtractStage(per_case=True), chunk_size=1,
                        prefetch=1)
        for i, _chunk in enumerate(engine.stream(corpus)):
            if i == 1:
                break
        self._assert_pumps_exit()

    def test_exhausted_stream_leaves_no_threads(self, corpus):
        engine = Engine(ExtractStage(per_case=True), chunk_size=8)
        chunks = list(engine.stream(corpus[:16]))
        assert len(chunks) == 2
        self._assert_pumps_exit()

    def test_closed_prefetch_unblocks_downstream_pump(self, corpus):
        """A two-boundary chain: closing the upstream prefetch must
        wake a downstream pump blocked in its ``__next__``."""

        class Slow(Stage):
            name = "slow"
            streaming = True

            def process(self, chunk, ctx):
                return chunk

        engine = Engine(ExtractStage(per_case=True), Slow(), Slow(),
                        chunk_size=1, prefetch=1)
        stream = engine.stream(corpus)
        next(stream)
        stream.close()
        self._assert_pumps_exit()
