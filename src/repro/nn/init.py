"""Parameter initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator`; the
framework never touches global random state, so experiments are
reproducible bit-for-bit from their seeds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal",
           "uniform", "zeros"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: tuple[int, ...],
                   rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...],
                  rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...],
               rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...],
              rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            limit: float = 0.05) -> np.ndarray:
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...],
          rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape)
