"""Fused inference-only forward pass for :class:`SEVulDetNet`.

The autograd forward (paper Fig. 2 Steps IV-V) builds a Tensor node
per op — even under ``no_grad`` every op allocates a fresh output
array and re-casts it through the Tensor constructor.  Scoring never
needs any of that, so this kernel runs the identical mathematics as
plain ndarray code:

* activations (relu, the sigmoid gates) are applied **in place**;
* the conv padding buffers and the matmul outputs of the token
  attention and the dense head are **preallocated scratch buffers**
  reused across batches of the same (batch, length) bucket — and kept
  per *thread*, because the scan service's ``ThreadScorer`` drives one
  model from N threads concurrently;
* the conv bias lands via an in-place add on the im2col matmul output
  (the bit-identity-safe form of folding it into the matmul: actually
  changing the contraction would change float summation order);
* the token-attention softmax (Eq. 3) is skipped — it only feeds the
  ``last_weights`` visualization hook, never the scores;
* no autograd graph is ever constructed.

**Bit-identity contract** (pinned by ``tests/models/test_fused.py``):
at float32 the kernel reproduces ``net.forward(ids).data`` *bitwise*.
That requires replicating the Tensor ops' exact float semantics, not
just their mathematics — e.g. relu is ``x * (x > 0)`` (not
``np.maximum``, which differs on ``-0.0``), mean is
``sum * dtype(1/n)`` (not ``np.mean``), and the conv einsum is the
same ``np.einsum("bok,ck->bco", ..., optimize=True)`` call as
:func:`repro.nn.ops.conv1d`.

**Reduced precision**: the compute dtype follows the weights.  Under
float16 weights (see :mod:`repro.nn.quantize`) elementwise ops run in
half precision while matmuls/einsums are computed through float32
casts (numpy's half-precision matmul has no BLAS backing) and rounded
back — float16 storage, float32 accumulation.  int8-quantized models
arrive here as dequantized float32 arrays, so they take the plain
float32 path.
"""

from __future__ import annotations

import threading

import numpy as np

from ..nn.ops import _adaptive_bounds, _im2col

__all__ = ["InferenceKernel"]


def _sigmoid_inplace(z: np.ndarray) -> np.ndarray:
    """Tensor.sigmoid's exact formula, applied in place:
    ``1 / (1 + exp(-clip(z, -500, 500)))``."""
    np.clip(z, -500, 500, out=z)
    np.negative(z, out=z)
    np.exp(z, out=z)
    z += 1.0
    np.divide(1.0, z, out=z)
    return z


class InferenceKernel:
    """Callable fused forward bound to one :class:`SEVulDetNet`.

    Thread-safe: scratch buffers live in ``threading.local`` storage,
    so concurrent ``predict_proba`` calls (the thread scorer) never
    share a buffer.  Weight rebinding (``bind_state``, quantization)
    is picked up automatically — weights are read from the live
    parameters on every call, and the float32 matmul casts kept for
    float16 models are invalidated by identity check.
    """

    #: Scratch entries kept per thread before the cache resets; each
    #: distinct (batch, length) bucket contributes a handful of keys.
    _MAX_SCRATCH = 256

    def __init__(self, net):
        self.net = net
        self._tls = threading.local()
        self._f32_lock = threading.Lock()
        self._f32: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- buffers & dtype-aware matmul ----------------------------------------

    def _buffers(self) -> dict:
        buffers = getattr(self._tls, "buffers", None)
        if buffers is None:
            buffers = self._tls.buffers = {}
        return buffers

    def _scratch(self, tag: str, shape: tuple[int, ...],
                 dtype: np.dtype) -> np.ndarray:
        buffers = self._buffers()
        key = (tag, shape, dtype.str)
        array = buffers.get(key)
        if array is None:
            if len(buffers) >= self._MAX_SCRATCH:
                buffers.clear()
            array = buffers[key] = np.empty(shape, dtype=dtype)
        return array

    def _f32_weight(self, param) -> np.ndarray:
        """float32 view of a float16 parameter, cached until rebound."""
        with self._f32_lock:
            entry = self._f32.get(id(param))
            if entry is None or entry[0] is not param.data:
                entry = (param.data, param.data.astype(np.float32))
                self._f32[id(param)] = entry
            return entry[1]

    def _matmul(self, a: np.ndarray, wparam, tag: str,
                shape: tuple[int, ...]) -> np.ndarray:
        """``a @ w`` into a scratch buffer (float32 compute for f16)."""
        w = wparam.data
        out = self._scratch(tag, shape, a.dtype)
        if w.dtype == np.float16:
            out[...] = np.matmul(a.astype(np.float32),
                                 self._f32_weight(wparam))
            return out
        return np.matmul(a, w, out=out)

    def _einsum_conv(self, cols: np.ndarray, wparam,
                     out_channels: int) -> np.ndarray:
        """The conv contraction, identical to
        :func:`repro.nn.ops.conv1d`'s einsum at float32."""
        w = wparam.data
        if w.dtype == np.float16:
            r = np.einsum("bok,ck->bco", cols.astype(np.float32),
                          self._f32_weight(wparam).reshape(
                              out_channels, -1),
                          optimize=True)
            return r.astype(np.float16)
        return np.einsum("bok,ck->bco", cols,
                         w.reshape(out_channels, -1), optimize=True)

    def _conv1d(self, padded: np.ndarray, conv) -> np.ndarray:
        kernel = conv.weight.data.shape[2]
        out_channels = conv.weight.data.shape[0]
        cols = _im2col(padded, kernel, 1)
        out = self._einsum_conv(cols, conv.weight, out_channels)
        if conv.bias is not None:
            out += conv.bias.data[None, :, None]
        return out

    def _pad(self, x_bct: np.ndarray, pad: int, tag: str) -> np.ndarray:
        """Copy ``x`` into a zero-padded scratch buffer (last axis)."""
        batch, channels, length = x_bct.shape
        padded = self._scratch(tag, (batch, channels, length + 2 * pad),
                               x_bct.dtype)
        if pad:
            padded[:, :, :pad] = 0
            padded[:, :, pad + length:] = 0
        padded[:, :, pad:pad + length] = x_bct
        return padded

    # -- the fused forward ---------------------------------------------------

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        """(batch, length) int ids -> (batch,) logits, no graph."""
        net = self.net
        ids = np.asarray(token_ids, dtype=np.int64)
        if net.embedding.id_aliases is not None:
            ids = net.embedding.id_aliases[ids]
        weight = net.embedding.weight.data
        dtype = weight.dtype
        batch, length = ids.shape

        x = weight[ids]                                  # (B, T, D)

        if net.use_token_attention:
            attn = net.token_attention
            dim = weight.shape[1]
            u = self._matmul(x, attn.proj.weight, "ta.u",
                             (batch, length, dim))
            u += attn.proj.bias.data
            np.tanh(u, out=u)
            if attn.context.data.dtype == np.float16:
                gate = np.matmul(
                    u.astype(np.float32),
                    self._f32_weight(attn.context)).astype(np.float16)
            else:
                gate = np.matmul(u, attn.context.data)   # (B, T) scores
            gate += np.asarray(attn.GATE_BIAS, dtype=dtype)
            _sigmoid_inplace(gate)
            x *= gate[:, :, None]

        pad = net.conv.padding
        features = self._pad(x.transpose(0, 2, 1), pad, "conv.pad")
        features = self._conv1d(features, net.conv)      # (B, C, T')
        features *= features > 0                         # in-place relu
        channels, feat_len = features.shape[1], features.shape[2]

        if net.use_cbam:
            # channel attention (Eq. 5): shared MLP over avg+max pools
            chan = net.cbam.channel
            avg = features.sum(axis=2)
            avg *= np.asarray(1.0 / feat_len, dtype=dtype)
            mx = features.max(axis=2)
            hidden = chan.fc1.weight.data.shape[1]
            h_avg = self._matmul(avg, chan.fc1.weight, "ch.h",
                                 (batch, hidden))
            h_avg *= h_avg > 0
            a_avg = np.matmul(h_avg, chan.fc2.weight.data) \
                if dtype != np.float16 else np.matmul(
                    h_avg.astype(np.float32),
                    self._f32_weight(chan.fc2.weight)).astype(dtype)
            h_mx = self._matmul(mx, chan.fc1.weight, "ch.h2",
                                (batch, hidden))
            h_mx *= h_mx > 0
            a_mx = np.matmul(h_mx, chan.fc2.weight.data) \
                if dtype != np.float16 else np.matmul(
                    h_mx.astype(np.float32),
                    self._f32_weight(chan.fc2.weight)).astype(dtype)
            att = a_avg
            att += a_mx
            att += chan.gate_bias.data
            _sigmoid_inplace(att)
            features *= att[:, :, None]

            # spatial attention (Eq. 6): conv over pooled channel maps
            spat = net.cbam.spatial
            avg_s = features.sum(axis=1, keepdims=True)
            avg_s *= np.asarray(1.0 / channels, dtype=dtype)
            mx_s = features.max(axis=1, keepdims=True)
            sp_pad = spat.kernel // 2
            pooled = self._scratch(
                "sp.pad", (batch, 2, feat_len + 2 * sp_pad), dtype)
            if sp_pad:
                pooled[:, :, :sp_pad] = 0
                pooled[:, :, sp_pad + feat_len:] = 0
            pooled[:, 0:1, sp_pad:sp_pad + feat_len] = avg_s
            pooled[:, 1:2, sp_pad:sp_pad + feat_len] = mx_s
            att_s = self._conv1d(pooled, spat)           # (B, 1, T')
            _sigmoid_inplace(att_s)
            features *= att_s

        # SPP (Definition 8): adaptive pooling pyramid -> fixed width
        pieces = []
        for bin_count in net.spp.bins:
            bounds = _adaptive_bounds(feat_len, bin_count)
            if net.spp.mode == "max":
                pooled_bin = np.stack(
                    [features[:, :, s:e].max(axis=2) for s, e in bounds],
                    axis=2)
            else:
                pooled_bin = np.stack(
                    [features[:, :, s:e].mean(axis=2)
                     for s, e in bounds], axis=2)
            pieces.append(pooled_bin.reshape(batch,
                                             channels * bin_count))
        pooled_vec = np.concatenate(pieces, axis=1)      # (B, 7C)

        # dense head (dropout is identity in eval mode)
        h1 = self._matmul(pooled_vec, net.fc1.weight, "fc1",
                          (batch, net.fc1.out_features))
        h1 += net.fc1.bias.data
        h1 *= h1 > 0
        h2 = self._matmul(h1, net.fc2.weight, "fc2",
                          (batch, net.fc2.out_features))
        h2 += net.fc2.bias.data
        h2 *= h2 > 0
        out = self._matmul(h2, net.fc3.weight, "fc3",
                           (batch, net.fc3.out_features))
        out += net.fc3.bias.data
        return out.reshape(-1).copy()
