"""Tests for the Checkmarx baseline's interval-precision mode."""

import pytest

from repro.baselines.checkmarx import CheckmarxScanner

CLAMPED = """\
void f(char *data, int n) {
    char dest[16];
    if (n > 15) {
        n = 15;
    }
    if (n < 0) {
        n = 0;
    }
    strncpy(dest, data, n);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line, atoi(line));
    return 0;
}
"""

UNCLAMPED = """\
void f(char *data, int n) {
    char dest[16];
    strncpy(dest, data, n);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line, atoi(line));
    return 0;
}
"""

CONSTANT_LENGTH = """\
void f(char *data) {
    char dest[16];
    memcpy(dest, data, 8);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line);
    return 0;
}
"""

OVERSIZED_CONSTANT = CONSTANT_LENGTH.replace(
    "memcpy(dest, data, 8);", "memcpy(dest, data, 64);")


class TestIntervalPrecision:
    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            CheckmarxScanner(precision="quantum")

    def test_clamped_flow_discharged(self):
        scanner = CheckmarxScanner(precision="interval")
        assert not scanner.flags(CLAMPED)

    def test_unclamped_flow_still_reported(self):
        scanner = CheckmarxScanner(precision="interval")
        assert scanner.flags(UNCLAMPED)

    def test_constant_in_bounds_discharged(self):
        scanner = CheckmarxScanner(precision="interval")
        assert not scanner.flags(CONSTANT_LENGTH)

    def test_constant_out_of_bounds_reported(self):
        scanner = CheckmarxScanner(precision="interval")
        assert scanner.flags(OVERSIZED_CONSTANT)

    def test_syntactic_mode_unchanged_on_unclamped(self):
        assert CheckmarxScanner().flags(UNCLAMPED)

    def test_interval_mode_never_adds_findings(self):
        """Interval precision only discharges findings, never creates
        new ones."""
        for source in (CLAMPED, UNCLAMPED, CONSTANT_LENGTH,
                       OVERSIZED_CONSTANT):
            syntactic = {(f.sink_line, f.sink)
                         for f in CheckmarxScanner(
                             report_sanitized=True).scan(source)}
            interval = {(f.sink_line, f.sink)
                        for f in CheckmarxScanner(
                            report_sanitized=True,
                            precision="interval").scan(source)}
            assert interval == syntactic
