"""Unit tests for the recursive-descent parser."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.parser import ParseError, parse


def first_stmt(source_body: str) -> A.Stmt:
    unit = parse(f"void f() {{ {source_body} }}")
    return unit.functions[0].body.stmts[0]


def first_expr(expression: str) -> A.Expr:
    stmt = first_stmt(f"{expression};")
    assert isinstance(stmt, A.ExprStmt)
    return stmt.expr


class TestTopLevel:
    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        fn = unit.functions[0]
        assert fn.name == "add"
        assert fn.return_type == "int"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_pointer_return_type(self):
        unit = parse("char *dup(char *s) { return s; }")
        assert unit.functions[0].return_type == "*char"

    def test_prototype_skipped(self):
        unit = parse("int f(int x);\nint f(int x) { return x; }")
        assert len(unit.functions) == 1

    def test_global_declaration(self):
        unit = parse("int counter = 0;\nvoid f() { counter = 1; }")
        assert len(unit.globals) == 1
        assert unit.globals[0].declarators[0].name == "counter"

    def test_struct_definition(self):
        unit = parse("struct point { int x; int y; };")
        assert unit.structs[0].name == "point"
        assert ("int", "x") in unit.structs[0].fields

    def test_typedef_registers_type(self):
        unit = parse("typedef unsigned int uint;\nvoid f() { uint x = 1; }")
        decl = unit.functions[0].body.stmts[0]
        assert isinstance(decl, A.Decl)

    def test_preprocessor_lines_ignored(self):
        unit = parse("#include <stdio.h>\n#define N 10\nint f() { return 0; }")
        assert unit.functions[0].line == 3

    def test_function_lookup(self):
        unit = parse("void a() {}\nvoid b() {}")
        assert unit.function("b") is not None
        assert unit.function("missing") is None

    def test_garbage_at_top_level_raises(self):
        with pytest.raises(ParseError):
            parse("+++")


class TestStatements:
    def test_if_else_chain_structure(self):
        stmt = first_stmt("if (1) {} else if (2) {} else {}")
        assert isinstance(stmt, A.If)
        assert not stmt.is_elseif
        child = stmt.otherwise
        assert isinstance(child, A.If) and child.is_elseif
        assert isinstance(child.otherwise, A.Block)

    def test_else_line_recorded(self):
        unit = parse("void f(int n) {\n  if (n) {\n  }\n  else {\n    n = 1;\n  }\n}")
        stmt = unit.functions[0].body.stmts[0]
        assert stmt.else_line == 4

    def test_while_loop(self):
        stmt = first_stmt("while (x > 0) x--;")
        assert isinstance(stmt, A.While)

    def test_do_while_records_while_line(self):
        unit = parse("void f(int x) {\n  do {\n    x--;\n  } while (x);\n}")
        stmt = unit.functions[0].body.stmts[0]
        assert isinstance(stmt, A.DoWhile)
        assert stmt.while_line == 4

    def test_for_with_declaration_init(self):
        stmt = first_stmt("for (int i = 0; i < 10; i++) {}")
        assert isinstance(stmt, A.For)
        assert isinstance(stmt.init, A.Decl)

    def test_for_with_empty_clauses(self):
        stmt = first_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch_cases_and_default(self):
        stmt = first_stmt(
            "switch (x) { case 1: break; case 2: break; default: break; }")
        assert isinstance(stmt, A.Switch)
        assert len(stmt.cases) == 3
        assert stmt.cases[2].is_default

    def test_switch_statement_before_case_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(int x) { switch (x) { x = 1; case 1: break; } }")

    def test_goto_and_label(self):
        unit = parse("void f() { goto end; end: return; }")
        stmts = unit.functions[0].body.stmts
        assert isinstance(stmts[0], A.Goto)
        assert isinstance(stmts[1], A.Label)
        assert stmts[1].name == "end"

    def test_declaration_multiple_declarators(self):
        stmt = first_stmt("int a = 1, b, *c;")
        assert isinstance(stmt, A.Decl)
        names = [d.name for d in stmt.declarators]
        assert names == ["a", "b", "c"]
        assert stmt.declarators[2].is_pointer

    def test_array_declaration_with_size(self):
        stmt = first_stmt("char buf[32];")
        decl = stmt.declarators[0]
        assert decl.is_array
        assert decl.array_sizes[0].value == 32

    def test_array_initializer_list(self):
        stmt = first_stmt("int a[3] = {1, 2, 3};")
        assert isinstance(stmt.declarators[0].init, A.InitList)

    def test_block_end_line(self):
        unit = parse("void f() {\n  int x;\n}\n")
        assert unit.functions[0].body.end_line == 3

    def test_empty_statement(self):
        stmt = first_stmt(";")
        assert isinstance(stmt, A.Empty)

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse("void f() { int x;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = first_expr("a + b * c")
        assert isinstance(expr, A.Binary) and expr.op == "+"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = first_expr("(a + b) * c")
        assert expr.op == "*"

    def test_assignment_right_associative(self):
        expr = first_expr("a = b = c")
        assert isinstance(expr, A.Assign)
        assert isinstance(expr.value, A.Assign)

    def test_compound_assignment(self):
        expr = first_expr("a += 2")
        assert isinstance(expr, A.Assign) and expr.op == "+="

    def test_ternary(self):
        expr = first_expr("a ? b : c")
        assert isinstance(expr, A.Ternary)

    def test_call_with_args(self):
        expr = first_expr("memcpy(dst, src, n)")
        assert isinstance(expr, A.Call)
        assert expr.callee_name == "memcpy"
        assert len(expr.args) == 3

    def test_nested_index(self):
        expr = first_expr("m[i][j]")
        assert isinstance(expr, A.Index)
        assert isinstance(expr.base, A.Index)

    def test_member_dot_and_arrow(self):
        dot = first_expr("s.field")
        arrow = first_expr("p->field")
        assert isinstance(dot, A.Member) and not dot.arrow
        assert isinstance(arrow, A.Member) and arrow.arrow

    def test_cast_expression(self):
        expr = first_expr("(char *)p")
        assert isinstance(expr, A.Cast)
        assert expr.type_name == "char*"

    def test_sizeof_type(self):
        expr = first_expr("sizeof(int)")
        assert isinstance(expr, A.SizeOf)
        assert expr.arg == "int"

    def test_sizeof_expression(self):
        expr = first_expr("sizeof buf")
        assert isinstance(expr, A.SizeOf)
        assert isinstance(expr.arg, A.Ident)

    def test_unary_operators(self):
        for op in ("-", "!", "~", "*", "&"):
            expr = first_expr(f"{op}x")
            assert isinstance(expr, A.Unary) and expr.op == op

    def test_postfix_increment(self):
        expr = first_expr("x++")
        assert isinstance(expr, A.Unary)
        assert not expr.prefix

    def test_logical_short_circuit_precedence(self):
        expr = first_expr("a || b && c")
        assert expr.op == "||"

    def test_comma_expression(self):
        expr = first_expr("(a = 1, b = 2)")
        assert isinstance(expr, A.Comma)

    def test_adjacent_string_concatenation(self):
        expr = first_expr('"a" "b"')
        assert isinstance(expr, A.StringLit)
        assert expr.value == "ab"

    def test_number_value_property(self):
        assert first_expr("0x10").value == 16
        assert first_expr("2.5").value == 2.5

    def test_char_literal_value(self):
        assert first_expr("'A'").value == 65
        assert first_expr(r"'\n'").value == 10


class TestWalk:
    def test_walk_visits_all_statements(self):
        unit = parse("void f(int n) { if (n) { n = 1; } while (n) { n--; } }")
        nodes = list(A.walk(unit.functions[0].body))
        assert any(isinstance(n, A.If) for n in nodes)
        assert any(isinstance(n, A.While) for n in nodes)

    def test_walk_preorder_root_first(self):
        unit = parse("void f() { int x = 1 + 2; }")
        nodes = list(A.walk(unit.functions[0].body))
        assert isinstance(nodes[0], A.Block)
