"""Shared process-pool scoring substrate (one implementation, two
front ends).

PR 6 grew a process-backed scorer inside the scan service: spawn
workers attach the model's weights as read-only
:class:`~repro.nn.serialize.SharedWeights` views and score
``(job_id, ids)`` batches shipped over queues.  That machinery is now
this module's :class:`ScorerPool`, so *both* inference fan-out paths
ride one implementation:

* :class:`repro.core.serve.ProcessScorer` — the scan service / scan
  server backend: its dispatcher thread micro-batches submissions and
  feeds them to the pool;
* :class:`repro.core.engine.ScoreStage` with ``workers=N`` — the
  engine's scoring stage: each chunk's samples are length-bucketed
  exactly like :func:`repro.core.score.predict_proba` and scored
  across the pool via :meth:`ScorerPool.score_samples`.

Weights cross the process boundary once (shared memory, zero-copy
views in every worker); only token-id batches and score vectors travel
through the queues.  A collector thread matches results back to the
submitting callback and doubles as a watchdog: when a worker dies it
*resubmits* every outstanding batch under a fresh job id (a dead
worker takes its in-flight batch to the grave; surviving or respawned
workers re-score it) and *respawns* a replacement under the bounded
:class:`RestartPolicy` budget.  Only when no worker remains alive and
the budget is exhausted does the pool fail outstanding work and mark
itself :attr:`broken` — further submissions raise :class:`PoolBroken`
instead of hanging, which is the signal the serve layer uses to fall
back to a thread scorer.

Scores are byte-identical to the in-process path: workers rebuild the
same :class:`~repro.models.sevuldet.SEVulDetNet`, bind the same weight
bytes, and run the same fused forward on the same exact-length-grouped
batches.  Resubmission preserves that: a batch scored twice (once by a
doomed worker, once after resubmission) yields identical vectors, and
stale results for superseded job ids are dropped.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..nn import bucketed_batches, no_grad
from ..nn.serialize import SharedWeights, bind_state
from ..testing import faults
from .score import SCORE_MIN_LENGTH, output_dtype

__all__ = ["net_spec", "PoolBroken", "RestartPolicy", "ScorerPool"]


class PoolBroken(RuntimeError):
    """The pool's workers are gone and its restart budget is spent.

    A distinct type (not just ``RuntimeError``) so callers can tell
    *infrastructure* failure — retryable on another backend — from a
    per-job model error that would recur anywhere.
    """


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded worker-respawn budget.

    At most ``max_restarts`` respawns within any sliding ``window_s``
    seconds; consecutive respawns are spaced by ``backoff`` seconds
    doubling per restart (so a crash-looping model can't spin the CPU
    forking workers).  ``max_restarts=0`` disables self-healing: the
    first total worker loss breaks the pool immediately (the pre-PR-8
    behavior, still pinned by tests).
    """

    max_restarts: int = 3
    window_s: float = 30.0
    backoff: float = 0.05


def net_spec(model) -> dict:
    """Constructor arguments that rebuild ``model``'s architecture
    (weights travel separately, via shared memory)."""
    return {
        "vocab_size": model.embedding.vocab_size,
        "dim": model.embedding.dim,
        "channels": int(model.conv.weight.data.shape[0]),
        "kernel": model.kernel,
        "use_token_attention": model.use_token_attention,
        "use_cbam": model.use_cbam,
        "bins": tuple(model.spp.bins),
    }


def _scorer_worker(spec: dict, request_q, result_q) -> None:
    """Scorer worker process body: attach shared weights, score
    ``(job_id, ids)`` requests until the ``None`` poison pill."""
    from ..models.sevuldet import SEVulDetNet

    shared = SharedWeights.attach(spec["weights"])
    net = dict(spec["net"])
    net["bins"] = tuple(net["bins"])
    model = SEVulDetNet(net.pop("vocab_size"), **net)
    bind_state(model, shared.arrays())
    if spec["id_aliases"] is not None:
        model.embedding.id_aliases = np.asarray(spec["id_aliases"],
                                                dtype=np.int64)
    model.eval()
    try:
        with no_grad():
            while True:
                job = request_q.get()
                if job is None:
                    return
                job_id, ids = job
                try:
                    # chaos site: crash = worker-kill, hang = slow
                    # worker, raise = per-job scoring error
                    faults.fire("score-batch", str(job_id))
                    scores = model.predict_proba(ids)
                    result_q.put((job_id, scores, None))
                except Exception as error:
                    result_q.put(
                        (job_id, None,
                         f"{type(error).__name__}: {error}"))
    finally:
        shared.close()


class ScorerPool:
    """N spawn worker processes scoring token-id batches against one
    shared-memory copy of the model weights.

    Submission is callback-based: :meth:`submit` enqueues a batch with
    an opaque ``payload``; the collector thread invokes
    ``callback(payload, scores, error)`` when the result (or a worker
    failure) arrives.  :meth:`score_samples` layers the synchronous
    bucketed-batch contract of :func:`repro.core.score.predict_proba`
    on top for callers that just want a score vector.

    The collector doubles as the self-healing watchdog: dead workers
    are reaped, their possibly-lost batches resubmitted under fresh
    job ids, and replacements respawned within ``restart_policy``.
    The pool only turns :attr:`broken` — failing outstanding work and
    raising :class:`PoolBroken` on further use — when no worker is
    alive and the restart budget is exhausted.
    """

    def __init__(self, model, workers: int, *,
                 start_method: str = "spawn",
                 restart_policy: RestartPolicy | None = None,
                 telemetry=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._ctx = multiprocessing.get_context(start_method)
        self.workers = workers
        self.restart_policy = restart_policy or RestartPolicy()
        self.output_dtype = output_dtype(model)
        self._telemetry = telemetry
        self._shared = SharedWeights.export(model.state_dict())
        aliases = model.embedding.id_aliases
        self._spec = {
            "weights": self._shared.spec(),
            "net": net_spec(model),
            "id_aliases": (None if aliases is None
                           else np.asarray(aliases)),
        }
        self._request_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs_lock = threading.Lock()
        self._proc_seq = itertools.count()
        self._procs = [self._spawn_proc() for _ in range(workers)]
        self._jobs: dict[int, tuple[np.ndarray, object, Callable]] = {}
        self._jobs_lock = threading.Lock()
        self._job_ids = itertools.count()
        self._broken: str | None = None
        self._closed = False
        self._restart_times: deque[float] = deque()
        self._next_spawn_at = 0.0
        self._respawns = 0
        self._collector_stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, daemon=True,
            name="scan-scorer-collect")
        self._collector.start()

    def _spawn_proc(self):
        proc = self._ctx.Process(
            target=_scorer_worker,
            args=(self._spec, self._request_q, self._result_q),
            daemon=True,
            name=f"scan-scorer-proc-{next(self._proc_seq)}")
        proc.start()
        return proc

    def _count(self, name: str, amount: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.count(name, amount)

    # -- submission ----------------------------------------------------------

    @property
    def broken(self) -> str | None:
        """Why the pool is unusable (worker death), or None."""
        return self._broken

    def health(self) -> dict:
        """Pool health snapshot: ``status`` is ``ok`` (full worker
        complement), ``degraded`` (workers lost, budget not yet spent)
        or ``broken`` (unusable — submissions raise)."""
        with self._procs_lock:
            alive = sum(1 for proc in self._procs if proc.is_alive())
        if self._broken is not None:
            status = "broken"
        elif alive < self.workers:
            status = "degraded"
        else:
            status = "ok"
        return {"status": status, "alive": alive,
                "workers": self.workers, "respawns": self._respawns,
                "reason": self._broken}

    def submit(self, ids: np.ndarray, payload,
               callback: Callable) -> int:
        """Queue one (batch, length) id matrix for scoring.

        ``callback(payload, scores, error)`` fires on the collector
        thread: ``scores`` is the worker's ``predict_proba`` output on
        success, ``error`` a message string on failure.
        """
        if self._closed:
            raise RuntimeError("scorer pool is closed")
        if self._broken is not None:
            raise PoolBroken(
                f"scorer workers died: {self._broken}")
        job_id = next(self._job_ids)
        with self._jobs_lock:
            self._jobs[job_id] = (ids, payload, callback)
        self._request_q.put((job_id, ids))
        return job_id

    def score_samples(self, samples: Sequence,
                      batch_size: int = 128) -> np.ndarray:
        """Synchronous scores for flexible-length samples.

        Exact-length bucketing (:func:`~repro.nn.data.bucketed_batches`
        with the :data:`~repro.core.score.SCORE_MIN_LENGTH` floor)
        mirrors :func:`repro.core.score.predict_proba`, so a row's
        padded representation — and therefore its score — never
        depends on its batch-mates; results are byte-identical to the
        serial path, just scored across the pool.
        """
        scores = np.zeros(len(samples), dtype=self.output_dtype)
        batches = list(bucketed_batches(
            samples, batch_size, min_length=SCORE_MIN_LENGTH,
            with_indices=True))
        if not batches:
            return scores
        done = threading.Event()
        lock = threading.Lock()
        state = {"remaining": len(batches), "error": None}

        def on_result(indices, batch_scores, error) -> None:
            with lock:
                if error is not None:
                    state["error"] = state["error"] or str(error)
                else:
                    scores[indices] = batch_scores
                state["remaining"] -= 1
                if state["remaining"] <= 0:
                    done.set()

        submitted = 0
        try:
            for ids, _, indices in batches:
                self.submit(ids, indices, on_result)
                submitted += 1
        except RuntimeError as error:
            with lock:
                state["error"] = state["error"] or str(error)
                state["remaining"] -= len(batches) - submitted
                if state["remaining"] <= 0:
                    done.set()
        done.wait()
        if state["error"] is not None:
            exc = PoolBroken if self._broken is not None else RuntimeError
            raise exc(f"process scoring failed: {state['error']}")
        return scores

    # -- collection + watchdog -----------------------------------------------

    def _collect(self) -> None:
        while True:
            try:
                job_id, scores, error = self._result_q.get(
                    timeout=0.2)
            except queue.Empty:
                self._watchdog()
                with self._jobs_lock:
                    outstanding = bool(self._jobs)
                if self._collector_stop.is_set():
                    if not outstanding:
                        return
                    with self._procs_lock:
                        alive = any(proc.is_alive()
                                    for proc in self._procs)
                    if not alive:
                        # close() raced worker death: answer, never
                        # wedge the closing thread
                        self._fail_outstanding("scorer pool closed "
                                               "with workers dead")
                        return
                continue
            with self._jobs_lock:
                entry = self._jobs.pop(job_id, None)
            if entry is None:
                # stale result for a job that was resubmitted under a
                # fresh id (or failed wholesale) — identical scores,
                # already delivered or superseded
                self._count("pool_duplicate_results")
                continue
            _ids, payload, callback = entry
            callback(payload, scores, error)

    def _watchdog(self) -> None:
        """Reap dead workers, resubmit their possibly-lost batches,
        respawn replacements within budget; break the pool only when
        nothing is alive and nothing more may be spawned."""
        if self._broken is not None or self._closed:
            return
        with self._procs_lock:
            dead = [p for p in self._procs if not p.is_alive()]
            for proc in dead:
                self._procs.remove(proc)
                proc.join(timeout=0)
        if dead:
            self._count("pool_worker_deaths", len(dead))
            # A dead worker may have dequeued a batch it never
            # answered; there is no way to know which, so every
            # outstanding job is resubmitted under a fresh id.  Jobs
            # still queued get scored twice — byte-identical, the
            # stale result is dropped by id.
            self._resubmit_outstanding()
        with self._procs_lock:
            deficit = 0 if self._closed else (self.workers
                                              - len(self._procs))
        if deficit > 0:
            self._maybe_respawn(deficit)
        with self._procs_lock:
            alive = any(proc.is_alive() for proc in self._procs)
        if not alive and self._budget_exhausted():
            self._fail_outstanding(
                "all scorer worker processes exited and the restart "
                "budget is exhausted")

    def _resubmit_outstanding(self) -> None:
        with self._jobs_lock:
            entries = list(self._jobs.items())
            self._jobs.clear()
            remapped = []
            for _old_id, (ids, payload, callback) in entries:
                new_id = next(self._job_ids)
                self._jobs[new_id] = (ids, payload, callback)
                remapped.append((new_id, ids))
        for new_id, ids in remapped:
            self._request_q.put((new_id, ids))
        if remapped:
            self._count("pool_resubmitted_jobs", len(remapped))

    def _prune_window(self, now: float) -> None:
        window = self.restart_policy.window_s
        while self._restart_times and \
                now - self._restart_times[0] > window:
            self._restart_times.popleft()

    def _budget_exhausted(self) -> bool:
        self._prune_window(time.monotonic())
        return (len(self._restart_times)
                >= self.restart_policy.max_restarts)

    def _maybe_respawn(self, count: int) -> None:
        policy = self.restart_policy
        for _ in range(count):
            now = time.monotonic()
            self._prune_window(now)
            if len(self._restart_times) >= policy.max_restarts:
                return
            if now < self._next_spawn_at:
                return  # backing off; the next watchdog tick retries
            with self._procs_lock:
                if self._closed:
                    return
                self._procs.append(self._spawn_proc())
            self._restart_times.append(now)
            self._respawns += 1
            self._next_spawn_at = now + policy.backoff * (
                2 ** (len(self._restart_times) - 1))
            self._count("pool_respawns")

    def _fail_outstanding(self, reason: str) -> None:
        self._broken = reason
        # A broken pool's request queue will never be drained; its
        # feeder thread may sit blocked on a full pipe forever.  Cancel
        # the interpreter-exit join NOW — close() may run on a daemon
        # thread that interpreter shutdown freezes before it gets here.
        self._request_q.cancel_join_thread()
        with self._jobs_lock:
            entries = list(self._jobs.values())
            self._jobs.clear()
        for _ids, payload, callback in entries:
            callback(payload, None, reason)

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Poison and join workers, stop the collector, free the
        shared-memory weights (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._procs_lock:
            procs = list(self._procs)
        for _ in procs:
            self._request_q.put(None)
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=2.0)
        self._collector_stop.set()
        self._collector.join()
        # If workers died with batches still queued, the request
        # queue's feeder thread is blocked on a pipe nobody will ever
        # read; joining it at interpreter exit would hang forever.
        self._request_q.cancel_join_thread()
        self._result_q.cancel_join_thread()
        self._request_q.close()
        self._result_q.close()
        self._shared.unlink()

    def __enter__(self) -> "ScorerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
