"""The detectors × datasets benchmark matrix.

:class:`MatrixRunner` executes every (detector, dataset) cell of a
grid, computes :class:`~repro.eval.metrics.Metrics` per cell, runs
paired-bootstrap significance against a chosen baseline detector per
dataset, and emits one leaderboard (text + markdown via
:class:`~repro.eval.report.Table`) plus a stable JSON artifact for
regression tracking.

Design points the table benchmarks and CI rely on:

* **Cells are independent and resumable.**  Each finished cell is
  written atomically to ``<out>/cells/<detector>__<dataset>.json``;
  a rerun with ``resume=True`` loads finished cells instead of
  recomputing them.  Significance is recomputed from stored verdicts,
  so a resumed grid reports the same comparisons as a fresh one.
* **Failures are cell errors, not aborts.**  A detector that blows up
  on one dataset yields an ``error`` cell; the rest of the grid runs.
* **One dataset split per dataset, shared across detectors.**  The
  paired bootstrap requires verdict vectors aligned on the *same*
  test cases, so the dataset is loaded once per grid seed and every
  detector in that column predicts on the identical split.
* **Per-cell seeds.**  Detectors built from registry names get a seed
  derived from (grid seed, detector, dataset), so each cell's
  randomness is independent yet reproducible.  Caller-supplied
  detector instances/factories keep their own seeds — that is how the
  table benchmarks pin the historical seeds for parity checks.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..core.engine import RunContext
from ..datasets.adapters import DatasetAdapter, DatasetSplit, derive_seed
from ..datasets.manifest import TestCase
from .detector import Detector, Prediction, build_detector
from .metrics import Metrics
from .report import Table, atomic_write_text
from .significance import paired_bootstrap

__all__ = ["MatrixCell", "MatrixResult", "MatrixRunner", "run_matrix"]

#: Bump when the cell JSON layout changes; resume ignores other versions.
CELL_SCHEMA = 1


@dataclass
class MatrixCell:
    """One (detector, dataset) evaluation outcome."""

    detector: str
    dataset: str
    status: str = "ok"  # 'ok' | 'error'
    basis: str = "case"
    metrics: Metrics | None = None
    case_metrics: Metrics | None = None
    verdicts: list[int] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)
    gadgets: int = 0
    seconds: float = 0.0
    error: str | None = None
    significance: dict | None = None  # vs the dataset baseline

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        payload = {
            "schema": CELL_SCHEMA,
            "detector": self.detector,
            "dataset": self.dataset,
            "status": self.status,
            "basis": self.basis,
            "metrics": asdict(self.metrics) if self.metrics else None,
            "case_metrics": (asdict(self.case_metrics)
                             if self.case_metrics else None),
            "verdicts": self.verdicts,
            "labels": self.labels,
            "gadgets": self.gadgets,
            "error": self.error,
        }
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "MatrixCell":
        def metrics(value):
            return Metrics(**value) if value else None

        return cls(
            detector=payload["detector"], dataset=payload["dataset"],
            status=payload["status"], basis=payload["basis"],
            metrics=metrics(payload.get("metrics")),
            case_metrics=metrics(payload.get("case_metrics")),
            verdicts=list(payload.get("verdicts", [])),
            labels=list(payload.get("labels", [])),
            gadgets=int(payload.get("gadgets", 0)),
            error=payload.get("error"))


@dataclass
class MatrixResult:
    """The full grid outcome."""

    cells: list[MatrixCell]
    baseline: str
    seed: int
    dataset_summaries: list[dict] = field(default_factory=list)

    def cell(self, detector: str, dataset: str) -> MatrixCell:
        """Look up one cell (detector name matched case-insensitively)."""
        for cell in self.cells:
            if (cell.detector.lower() == detector.lower()
                    and cell.dataset == dataset):
                return cell
        raise KeyError(f"no cell ({detector!r}, {dataset!r})")

    def leaderboard(self) -> Table:
        """One row per cell, ranked by F1 within each dataset."""
        table = Table(
            "matrix_leaderboard",
            f"Benchmark matrix (baseline: {self.baseline}, "
            f"seed {self.seed})")
        ordered = sorted(
            self.cells,
            key=lambda c: (c.dataset,
                           -(c.metrics.f1 if c.ok and c.metrics
                             else -1.0)))
        for cell in ordered:
            if not cell.ok:
                table.add(dataset=cell.dataset, detector=cell.detector,
                          basis="-",
                          **{key: "-" for key in
                             ("FPR(%)", "FNR(%)", "A(%)", "P(%)",
                              "F1(%)")},
                          dF1="-", p="-", sig="-",
                          note=f"error: {cell.error}")
                continue
            sig = cell.significance or {}
            table.add(
                dataset=cell.dataset, detector=cell.detector,
                basis=cell.basis,
                **cell.metrics.as_percentages(),
                dF1=(round(sig["delta"], 3)
                     if "delta" in sig else "-"),
                p=(round(sig["p_value"], 3)
                   if "p_value" in sig else "-"),
                sig=("yes" if sig.get("significant") else "no")
                if sig else "-",
                note="baseline"
                if cell.detector.lower() == self.baseline.lower()
                else "")
        return table

    def to_json(self) -> dict:
        """Stable artifact: cells first (regression-tracked), then
        environment facts that may drift (timings)."""
        return {
            "schema": CELL_SCHEMA,
            "baseline": self.baseline,
            "seed": self.seed,
            "datasets": self.dataset_summaries,
            "cells": [
                {**cell.to_json(),
                 "significance": cell.significance}
                for cell in self.cells
            ],
            "timing": {
                f"{cell.detector}__{cell.dataset}":
                    round(cell.seconds, 3)
                for cell in self.cells
            },
        }


def _cell_path(out_dir: Path, detector: str, dataset: str) -> Path:
    # Lowercased so registry names ('flawfinder') and display names
    # ('Flawfinder') address the same artifact across resumes.
    safe = f"{detector}__{dataset}".lower().replace("/", "_")
    return out_dir / "cells" / f"{safe}.json"


class MatrixRunner:
    """Execute a detectors × datasets grid.

    Args:
        detectors: detector sources — registry names (fresh instance
            per cell, with a per-cell derived seed), zero-argument
            factories (called once per cell), or ready instances
            (refit per cell; avoid instances whose ``fit`` accumulates
            state across calls, like VUDDY's reference corpus).
        datasets: the dataset adapters (columns).
        baseline: detector *name* significance is computed against,
            per dataset.
        ctx: shared :class:`RunContext`; one context across all cells
            shares the gadget caches, quarantine, and telemetry.
        out_dir: artifact directory (leaderboard, JSON, cell files);
            None disables persistence (and resume).
        resume: load finished cell files instead of recomputing.
        resamples: bootstrap iterations (0 degrades gracefully to
            point estimates, see ``paired_bootstrap``).
    """

    def __init__(self, detectors: Sequence, datasets: Sequence[DatasetAdapter],
                 *, baseline: str = "flawfinder", seed: int = 7,
                 ctx: RunContext | None = None,
                 out_dir: str | Path | None = None, resume: bool = True,
                 resamples: int = 500,
                 progress: Callable[[str], None] | None = None):
        self.detectors = list(detectors)
        self.datasets = list(datasets)
        self.baseline = baseline
        self.seed = seed
        self.ctx = ctx if ctx is not None else RunContext.create()
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.resume = resume
        self.resamples = resamples
        self.progress = progress or (lambda message: None)

    # -- detector construction -------------------------------------

    def _detector_name(self, source) -> str:
        if isinstance(source, str):
            return source
        name = getattr(source, "name", None)
        if isinstance(name, str):
            return name
        # Bare factory without a .name attribute: build one just to
        # read the name (adapters are cheap to construct).
        return source().name

    def _make_detector(self, source, dataset_name: str) -> Detector:
        if isinstance(source, str):
            return build_detector(
                source,
                seed=derive_seed(self.seed, "cell", source,
                                 dataset_name))
        if callable(source) and not hasattr(source, "predict"):
            return source()
        return source

    # -- cell execution --------------------------------------------

    def _load_cached(self, detector: str, dataset: str
                     ) -> MatrixCell | None:
        if self.out_dir is None or not self.resume:
            return None
        path = _cell_path(self.out_dir, detector, dataset)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CELL_SCHEMA:
            return None
        cell = MatrixCell.from_json(payload)
        cell.seconds = 0.0  # cached; not this run's time
        return cell

    def _save_cell(self, cell: MatrixCell) -> None:
        if self.out_dir is None:
            return
        atomic_write_text(
            _cell_path(self.out_dir, cell.detector, cell.dataset),
            json.dumps(cell.to_json(), indent=2, sort_keys=True))

    def _run_cell(self, source, split: DatasetSplit) -> MatrixCell:
        name = self._detector_name(source)
        cached = self._load_cached(name, split.name)
        if cached is not None:
            self.progress(f"cell {name} × {split.name}: cached")
            return cached
        self.progress(f"cell {name} × {split.name}: running")
        labels = [1 if case.vulnerable else 0 for case in split.test]
        started = time.perf_counter()
        try:
            detector = self._make_detector(source, split.name)
            fit = getattr(detector, "fit", None)
            with self.ctx.telemetry.stage(
                    f"cell:{name}:{split.name}"):
                if fit is not None:
                    fit(split.train, self.ctx)
                prediction: Prediction = detector.predict(
                    split.test, self.ctx)
            cell = MatrixCell(
                detector=detector.name, dataset=split.name,
                basis=prediction.basis,
                metrics=prediction.metrics(labels),
                case_metrics=prediction.case_metrics(labels),
                verdicts=list(prediction.verdicts), labels=labels,
                gadgets=len(prediction.gadget_labels or ()),
                seconds=time.perf_counter() - started)
        except Exception as error:
            cell = MatrixCell(
                detector=name, dataset=split.name, status="error",
                labels=labels, error=f"{type(error).__name__}: {error}",
                seconds=time.perf_counter() - started)
        self._save_cell(cell)
        return cell

    # -- significance ----------------------------------------------

    def _attach_significance(self, cells: list[MatrixCell]) -> None:
        """Paired bootstrap of every cell vs its dataset's baseline.

        Runs over the per-case verdict vectors (the one granularity
        all detector families share).  Recomputed for cached cells
        too, so resumed grids report identical comparisons.
        """
        by_dataset: dict[str, list[MatrixCell]] = {}
        for cell in cells:
            by_dataset.setdefault(cell.dataset, []).append(cell)
        wanted = self.baseline.lower()
        for dataset, column in by_dataset.items():
            base = next((c for c in column
                         if c.detector.lower() == wanted and c.ok),
                        None)
            if base is None or not base.verdicts:
                continue
            for cell in column:
                if not cell.ok or not cell.verdicts:
                    continue
                if len(cell.verdicts) != len(base.verdicts):
                    continue
                comparison = paired_bootstrap(
                    [float(v) for v in cell.verdicts],
                    [float(v) for v in base.verdicts],
                    cell.labels, threshold=0.5,
                    resamples=self.resamples,
                    seed=derive_seed(self.seed, "bootstrap",
                                     cell.detector, dataset))
                cell.significance = {
                    "baseline": self.baseline,
                    "f1": comparison.f1_a,
                    "f1_baseline": comparison.f1_b,
                    "delta": comparison.delta,
                    "p_value": comparison.p_value,
                    "wins": comparison.wins,
                    "ci_low": comparison.ci_low,
                    "ci_high": comparison.ci_high,
                    "significant": comparison.significant,
                    "resamples": self.resamples,
                }

    # -- the grid ---------------------------------------------------

    def run(self) -> MatrixResult:
        cells: list[MatrixCell] = []
        summaries: list[dict] = []
        for adapter in self.datasets:
            self.progress(f"dataset {adapter.name}: loading")
            split = adapter.load(self.seed)
            summaries.append(split.summary())
            for source in self.detectors:
                cells.append(self._run_cell(source, split))
        self._attach_significance(cells)
        result = MatrixResult(cells=cells, baseline=self.baseline,
                              seed=self.seed,
                              dataset_summaries=summaries)
        if self.out_dir is not None:
            table = result.leaderboard()
            table.save(self.out_dir)
            table.save_markdown(self.out_dir)
            atomic_write_text(
                self.out_dir / "matrix.json",
                json.dumps(result.to_json(), indent=2, sort_keys=True))
        return result


def run_matrix(detectors: Sequence, datasets: Sequence[DatasetAdapter],
               **kwargs) -> MatrixResult:
    """One-call convenience over :class:`MatrixRunner`."""
    return MatrixRunner(detectors, datasets, **kwargs).run()
