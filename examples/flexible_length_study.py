#!/usr/bin/env python3
"""Definition 8 in practice: what fixed-length truncation costs.

Builds a long-preamble vulnerable program (the ``long_chain_strcpy``
family), shows that the vulnerable sink's tokens fall *past* a short
fixed window — so a BRNN literally never sees them — then trains both
a fixed-length BLSTM and the flexible-length SEVulDet network on the
same data and compares their scores on held-out long gadgets.
"""

import numpy as np

from repro.core.config import SCALE_PRESETS
from repro.core.pipeline import (encode_gadgets, extract_gadgets,
                                 predict_proba, train_classifier)
from repro.datasets.cwe_templates import TEMPLATES, generate_case
from repro.datasets.sard import generate_sard_corpus
from repro.models.blstm import BLSTMNet
from repro.models.sevuldet import SEVulDetNet
from repro.nn.data import pad_or_truncate

SHORT_WINDOW = 40  # a deliberately tight tau


def main() -> None:
    print("=== flexible length vs fixed time steps ===\n")
    scale = SCALE_PRESETS["small"]

    template = next(t for t in TEMPLATES
                    if t.name == "long_chain_strcpy")
    sample_case = generate_case(template, vulnerable=True, seed=404)
    (gadget,) = [g for g in extract_gadgets([sample_case],
                                            deduplicate=False)
                 if g.criterion.token == "strncpy"]
    sink_position = max(index for index, token
                        in enumerate(gadget.tokens)
                        if token == "strncpy")
    print(f"sample long gadget: {len(gadget.tokens)} tokens; the "
          f"vulnerable strncpy sits at token {sink_position}")
    truncated = pad_or_truncate(range(len(gadget.tokens)),
                                SHORT_WINDOW)
    survives = sink_position < len(truncated)
    print(f"with tau = {SHORT_WINDOW}, the sink "
          f"{'survives' if survives else 'IS TRUNCATED AWAY'} "
          f"(Definition 8)\n")

    print("training both models on the same corpus ...")
    train_cases = generate_sard_corpus(120, seed=88)
    train_gadgets = extract_gadgets(train_cases)
    dataset = encode_gadgets(train_gadgets, dim=scale.dim,
                             w2v_epochs=scale.w2v_epochs, seed=4)

    blstm = BLSTMNet(len(dataset.vocab), dim=scale.dim,
                     hidden=scale.hidden, time_steps=SHORT_WINDOW,
                     pretrained=dataset.word2vec.vectors, seed=4)
    sevuldet = SEVulDetNet(len(dataset.vocab), dim=scale.dim,
                           channels=scale.channels,
                           pretrained=dataset.word2vec.vectors, seed=4)
    for model in (blstm, sevuldet):
        train_classifier(model, dataset.samples, epochs=scale.epochs,
                         batch_size=scale.batch_size,
                         lr=scale.learning_rate, seed=4)

    print("scoring held-out long-chain gadgets ...\n")
    rows = []
    for seed in range(900, 912):
        for vulnerable in (True, False):
            case = generate_case(template, vulnerable=vulnerable,
                                 seed=seed)
            gadgets = [g for g in extract_gadgets([case],
                                                  deduplicate=False)
                       if g.criterion.token == "strncpy"]
            if not gadgets:
                continue
            samples = [g.sample(dataset.vocab) for g in gadgets]
            rows.append((vulnerable,
                         float(predict_proba(blstm, samples).max()),
                         float(predict_proba(sevuldet,
                                             samples).max())))

    def auc_like(scores):
        positives = [s for is_vuln, s in scores if is_vuln]
        negatives = [s for is_vuln, s in scores if not is_vuln]
        pairs = [(p > n) + 0.5 * (p == n)
                 for p in positives for n in negatives]
        return sum(pairs) / len(pairs) if pairs else float("nan")

    print(f"{'truth':8s} {'BLSTM(tau=' + str(SHORT_WINDOW) + ')':18s} "
          f"SEVulDet(flexible)")
    for vulnerable, blstm_score, sevuldet_score in rows:
        print(f"{'vuln' if vulnerable else 'good':8s} "
              f"{blstm_score:18.3f} {sevuldet_score:.3f}")
    blstm_auc = auc_like([(v, b) for v, b, _ in rows])
    sevul_auc = auc_like([(v, s) for v, _, s in rows])
    print(f"\npairwise ranking quality (AUC-like): "
          f"BLSTM {blstm_auc:.2f} vs SEVulDet {sevul_auc:.2f}")
    print("\nThe truncated model cannot separate the long-chain pairs "
          "— the flaw\nnever enters its window; the SPP model ingests "
          "the whole gadget.")


if __name__ == "__main__":
    main()
