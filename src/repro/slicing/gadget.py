"""Code-gadget assembly (paper Definition 5, Fig 1 Step III).

A *classic* code gadget is the brute stack the paper criticises: slice
statements grouped by function, functions ordered by call relationship,
statements within a function ordered by line number — and nothing else.
No scope boundaries survive, which is exactly why the guarded and
unguarded programs of Fig 1 produce identical classic gadgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..lang.callgraph import AnalyzedProgram
from .slicer import Slice, compute_slice
from .special_tokens import SlicingCriterion

__all__ = ["GadgetLine", "CodeGadget", "order_functions",
           "assemble_classic_gadget", "classic_gadget"]


@dataclass(frozen=True)
class GadgetLine:
    """One line of a gadget with provenance.

    ``role`` is ``"slice"`` for sliced statements, ``"criterion"`` for
    the special-token line, and (path-sensitive gadgets only)
    ``"control-header"`` / ``"control-end"`` for Algorithm 1's inserted
    scope boundaries.
    """

    function: str
    line: int
    text: str
    role: str = "slice"


@dataclass
class CodeGadget:
    """An ordered sequence of gadget lines plus metadata."""

    criterion: SlicingCriterion
    lines: list[GadgetLine]
    kind: str = "classic"  # 'classic' | 'path-sensitive'
    label: int | None = None
    source_path: str = ""
    extra: dict = field(default_factory=dict)

    def text(self) -> str:
        """The gadget body as newline-joined statement texts."""
        return "\n".join(line.text for line in self.lines)

    def line_numbers(self) -> list[int]:
        return [line.line for line in self.lines]

    def functions(self) -> list[str]:
        seen: list[str] = []
        for line in self.lines:
            if line.function not in seen:
                seen.append(line.function)
        return seen

    def __len__(self) -> int:
        return len(self.lines)


def order_functions(program: AnalyzedProgram,
                    function_names: list[str]) -> list[str]:
    """Order slice functions caller-before-callee (paper Step III).

    Functions unreachable from each other keep their source order.
    Cycles (recursion) fall back to source order within the cycle.
    """
    wanted = set(function_names)
    graph = nx.DiGraph()
    graph.add_nodes_from(wanted)
    for site in program.call_graph.sites_among(wanted):
        graph.add_edge(site.caller, site.callee)
    source_order = {fn.name: index
                    for index, fn in enumerate(program.unit.functions)}
    try:
        layers = list(nx.topological_generations(graph))
    except nx.NetworkXUnfeasible:
        return sorted(wanted, key=lambda n: source_order.get(n, 1 << 30))
    ordered: list[str] = []
    for layer in layers:
        ordered.extend(sorted(layer,
                              key=lambda n: source_order.get(n, 1 << 30)))
    return ordered


def assemble_classic_gadget(program: AnalyzedProgram,
                            slice_: Slice) -> CodeGadget:
    """Stack the slice's statements into a classic code gadget."""
    criterion = slice_.criterion
    per_function = slice_.lines(program)
    lines: list[GadgetLine] = []
    for fn_name in order_functions(program, list(per_function)):
        for line_no in sorted(per_function[fn_name]):
            text = program.statement_text(line_no)
            if not text:
                continue
            role = "criterion" if (fn_name == criterion.function
                                   and line_no == criterion.line) else "slice"
            lines.append(GadgetLine(fn_name, line_no, text, role))
    return CodeGadget(criterion, lines, kind="classic",
                      source_path=program.source.path)


def classic_gadget(program: AnalyzedProgram, criterion: SlicingCriterion,
                   *, use_control: bool = True) -> CodeGadget:
    """Slice + assemble in one call (the CG baseline pipeline)."""
    slice_ = compute_slice(program, criterion, use_control=use_control)
    return assemble_classic_gadget(program, slice_)
