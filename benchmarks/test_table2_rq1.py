"""Table II (RQ1) — does path semantics + flexible length help?

Grid: {BLSTM, BGRU, SEVulDet-net} x {CG, PS-CG}, run as one benchmark
matrix over the shared SARD+NVD corpus: each (network, kind) pair is a
:class:`FrameworkDetector` row and the corpus is one
:class:`FixedCorpusAdapter` column, so this file only asserts over
matrix cells.  Paper shape:
* PS-CG beats CG for every network (path semantics help);
* the flexible-length SEVulDet network on PS-CG is the best cell
  (paper: A 97.3 / P 96.2 / F1 94.2).

One cell (SEVulDet x PS-CG) is re-run through the pre-refactor
``train_and_evaluate`` path and must match the matrix cell exactly —
the refactor moved the wiring, not the numbers.
"""

from repro.datasets.adapters import FixedCorpusAdapter
from repro.eval.comparison import FRAMEWORKS, train_and_evaluate
from repro.eval.detector import FrameworkDetector
from repro.eval.matrix import MatrixRunner

from conftest import run_once

GRID = [("BLSTM", "classic"), ("BLSTM", "path-sensitive"),
        ("BGRU", "classic"), ("BGRU", "path-sensitive"),
        ("SEVulDet", "classic"), ("SEVulDet", "path-sensitive")]

PAPER = {
    ("BLSTM", "classic"): (94.9, 82.5, 85.2),
    ("BLSTM", "path-sensitive"): (95.1, 87.8, 88.8),
    ("BGRU", "classic"): (96.0, 84.1, 85.9),
    ("BGRU", "path-sensitive"): (97.0, 88.6, 90.7),
    ("SEVulDet", "classic"): (95.4, 91.0, 89.6),
    ("SEVulDet", "path-sensitive"): (97.3, 96.2, 94.2),
}


def _row_name(network: str, kind: str) -> str:
    return f"{network}-{'PSCG' if kind == 'path-sensitive' else 'CG'}"


def test_table2_rq1_path_semantics(benchmark, reporter, scale,
                                   train_cases, test_cases):
    def experiment():
        detectors = [
            FrameworkDetector(FRAMEWORKS[network], scale, seed=17,
                              gadget_kind=kind,
                              name=_row_name(network, kind))
            for network, kind in GRID
        ]
        runner = MatrixRunner(
            detectors,
            [FixedCorpusAdapter("sard", train_cases, test_cases)],
            baseline=_row_name("SEVulDet", "path-sensitive"),
            seed=17, resamples=200)
        return runner.run()

    result = run_once(benchmark, experiment)

    for cell in result.cells:
        assert cell.ok, (cell.detector, cell.error)
    results = {
        (network, kind): result.cell(_row_name(network, kind),
                                     "sard").metrics
        for network, kind in GRID
    }

    table = reporter("table2_rq1",
                     "Table II — RQ1: CG vs PS-CG across networks")
    for network, kind in GRID:
        metrics = results[(network, kind)]
        paper_a, paper_p, paper_f1 = PAPER[(network, kind)]
        row = metrics.as_percentages()
        table.add(network=network,
                  kind="PS-CG" if kind == "path-sensitive" else "CG",
                  **{k: row[k] for k in ("A(%)", "P(%)", "F1(%)")},
                  paper_A=paper_a, paper_P=paper_p, paper_F1=paper_f1)
    table.save_and_print()

    # Parity gate: the matrix cell equals the pre-refactor serial path
    # on the same seed, byte for byte.
    legacy, _ = train_and_evaluate(
        FRAMEWORKS["SEVulDet"], train_cases, test_cases, scale,
        seed=17, gadget_kind="path-sensitive")
    assert results[("SEVulDet", "path-sensitive")] == legacy

    # Shape 1: PS-CG >= CG on F1 for every network.
    for network in ("BLSTM", "BGRU", "SEVulDet"):
        ps = results[(network, "path-sensitive")].f1
        cg = results[(network, "classic")].f1
        assert ps >= cg - 0.02, (network, ps, cg)

    # Shape 2: the best cell is the SEVulDet network on PS-CG.
    best = max(results, key=lambda key: results[key].f1)
    assert results[("SEVulDet", "path-sensitive")].f1 >= \
        results[best].f1 - 0.03

    # Shape 3: SEVulDet x PS-CG beats both BRNNs on CG by a clear
    # margin (the combined contribution of the paper).
    assert results[("SEVulDet", "path-sensitive")].f1 > \
        results[("BLSTM", "classic")].f1
    assert results[("SEVulDet", "path-sensitive")].f1 > \
        results[("BGRU", "classic")].f1
