"""Model parameter persistence (npz archives)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str | Path,
               metadata: dict | None = None) -> None:
    """Save all parameters (and optional JSON metadata) to ``path``."""
    path = Path(path)
    state = model.state_dict()
    payload = dict(state)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_model(model: Module, path: str | Path) -> dict:
    """Load parameters into ``model``; returns saved metadata (or {})."""
    path = Path(path)
    with np.load(path) as archive:
        metadata = {}
        state = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode())
            else:
                state[key] = archive[key]
    model.load_state_dict(state)
    return metadata
