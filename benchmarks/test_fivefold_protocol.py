"""The paper's five-fold cross-validation protocol, end to end.

Section IV-B evaluates with gadget-level five-fold CV; the comparison
benches use disjoint train/test corpora instead (cheaper and closer to
deployment).  This bench runs the literal paper protocol once for the
SEVulDet network and reports per-fold and aggregate numbers, verifying
that fold variance is moderate and the mean matches the train/test
estimates within a few points.
"""

from repro.core.pipeline import extract_gadgets
from repro.eval.protocol import cross_validate
from repro.models.sevuldet import SEVulDetNet

from conftest import run_once


def test_fivefold_protocol(benchmark, reporter, scale, train_cases):
    def experiment():
        gadgets = extract_gadgets(train_cases)

        def build(vocab_size, pretrained):
            return SEVulDetNet(vocab_size, dim=scale.dim,
                               channels=scale.channels,
                               pretrained=pretrained, seed=5)

        return cross_validate(
            gadgets, build, k=5, dim=scale.dim,
            w2v_epochs=scale.w2v_epochs, epochs=scale.epochs,
            batch_size=scale.batch_size, lr=scale.learning_rate,
            seed=5)

    report = run_once(benchmark, experiment)

    table = reporter("fivefold_protocol",
                     "Five-fold CV (the paper's Section IV-B protocol), "
                     "SEVulDet network")
    for fold in report.folds:
        table.add(fold=fold.fold, test_gadgets=fold.test_size,
                  **fold.metrics.as_percentages())
    table.add(fold="mean", test_gadgets="-", **report.summary())
    table.save_and_print()

    # Every fold learns; aggregate is solid; fold variance is bounded.
    for fold in report.folds:
        assert fold.metrics.f1 > 0.5, fold
    assert report.mean_f1 > 0.7
    assert report.std_f1 < 0.15
