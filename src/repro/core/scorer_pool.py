"""Shared process-pool scoring substrate (one implementation, two
front ends).

PR 6 grew a process-backed scorer inside the scan service: spawn
workers attach the model's weights as read-only
:class:`~repro.nn.serialize.SharedWeights` views and score
``(job_id, ids)`` batches shipped over queues.  That machinery is now
this module's :class:`ScorerPool`, so *both* inference fan-out paths
ride one implementation:

* :class:`repro.core.serve.ProcessScorer` — the scan service / scan
  server backend: its dispatcher thread micro-batches submissions and
  feeds them to the pool;
* :class:`repro.core.engine.ScoreStage` with ``workers=N`` — the
  engine's scoring stage: each chunk's samples are length-bucketed
  exactly like :func:`repro.core.score.predict_proba` and scored
  across the pool via :meth:`ScorerPool.score_samples`.

Weights cross the process boundary once (shared memory, zero-copy
views in every worker); only token-id batches and score vectors travel
through the queues.  A collector thread matches results back to the
submitting callback and watches for dead workers, so a crashed forward
pass fails the affected jobs instead of hanging them.

Scores are byte-identical to the in-process path: workers rebuild the
same :class:`~repro.models.sevuldet.SEVulDetNet`, bind the same weight
bytes, and run the same fused forward on the same exact-length-grouped
batches.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
from typing import Callable, Sequence

import numpy as np

from ..nn import bucketed_batches, no_grad
from ..nn.serialize import SharedWeights, bind_state
from .score import SCORE_MIN_LENGTH, output_dtype

__all__ = ["net_spec", "ScorerPool"]


def net_spec(model) -> dict:
    """Constructor arguments that rebuild ``model``'s architecture
    (weights travel separately, via shared memory)."""
    return {
        "vocab_size": model.embedding.vocab_size,
        "dim": model.embedding.dim,
        "channels": int(model.conv.weight.data.shape[0]),
        "kernel": model.kernel,
        "use_token_attention": model.use_token_attention,
        "use_cbam": model.use_cbam,
        "bins": tuple(model.spp.bins),
    }


def _scorer_worker(spec: dict, request_q, result_q) -> None:
    """Scorer worker process body: attach shared weights, score
    ``(job_id, ids)`` requests until the ``None`` poison pill."""
    from ..models.sevuldet import SEVulDetNet

    shared = SharedWeights.attach(spec["weights"])
    net = dict(spec["net"])
    net["bins"] = tuple(net["bins"])
    model = SEVulDetNet(net.pop("vocab_size"), **net)
    bind_state(model, shared.arrays())
    if spec["id_aliases"] is not None:
        model.embedding.id_aliases = np.asarray(spec["id_aliases"],
                                                dtype=np.int64)
    model.eval()
    try:
        with no_grad():
            while True:
                job = request_q.get()
                if job is None:
                    return
                job_id, ids = job
                try:
                    scores = model.predict_proba(ids)
                    result_q.put((job_id, scores, None))
                except Exception as error:
                    result_q.put(
                        (job_id, None,
                         f"{type(error).__name__}: {error}"))
    finally:
        shared.close()


class ScorerPool:
    """N spawn worker processes scoring token-id batches against one
    shared-memory copy of the model weights.

    Submission is callback-based: :meth:`submit` enqueues a batch with
    an opaque ``payload``; the collector thread invokes
    ``callback(payload, scores, error)`` when the result (or a worker
    failure) arrives.  :meth:`score_samples` layers the synchronous
    bucketed-batch contract of :func:`repro.core.score.predict_proba`
    on top for callers that just want a score vector.

    Worker death is detected by the collector's watchdog: when jobs
    are outstanding and no worker remains alive, every outstanding
    callback is failed and the pool is marked :attr:`broken` —
    further submissions raise instead of hanging.
    """

    def __init__(self, model, workers: int, *,
                 start_method: str = "spawn"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ctx = multiprocessing.get_context(start_method)
        self.workers = workers
        self.output_dtype = output_dtype(model)
        self._shared = SharedWeights.export(model.state_dict())
        aliases = model.embedding.id_aliases
        spec = {
            "weights": self._shared.spec(),
            "net": net_spec(model),
            "id_aliases": (None if aliases is None
                           else np.asarray(aliases)),
        }
        self._request_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(target=_scorer_worker,
                        args=(spec, self._request_q, self._result_q),
                        daemon=True, name=f"scan-scorer-proc-{i}")
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        self._jobs: dict[int, tuple[object, Callable]] = {}
        self._jobs_lock = threading.Lock()
        self._job_ids = itertools.count()
        self._broken: str | None = None
        self._closed = False
        self._collector_stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, daemon=True,
            name="scan-scorer-collect")
        self._collector.start()

    # -- submission ----------------------------------------------------------

    @property
    def broken(self) -> str | None:
        """Why the pool is unusable (worker death), or None."""
        return self._broken

    def submit(self, ids: np.ndarray, payload,
               callback: Callable) -> int:
        """Queue one (batch, length) id matrix for scoring.

        ``callback(payload, scores, error)`` fires on the collector
        thread: ``scores`` is the worker's ``predict_proba`` output on
        success, ``error`` a message string on failure.
        """
        if self._closed:
            raise RuntimeError("scorer pool is closed")
        if self._broken is not None:
            raise RuntimeError(
                f"scorer workers died: {self._broken}")
        job_id = next(self._job_ids)
        with self._jobs_lock:
            self._jobs[job_id] = (payload, callback)
        self._request_q.put((job_id, ids))
        return job_id

    def score_samples(self, samples: Sequence,
                      batch_size: int = 128) -> np.ndarray:
        """Synchronous scores for flexible-length samples.

        Exact-length bucketing (:func:`~repro.nn.data.bucketed_batches`
        with the :data:`~repro.core.score.SCORE_MIN_LENGTH` floor)
        mirrors :func:`repro.core.score.predict_proba`, so a row's
        padded representation — and therefore its score — never
        depends on its batch-mates; results are byte-identical to the
        serial path, just scored across the pool.
        """
        scores = np.zeros(len(samples), dtype=self.output_dtype)
        batches = list(bucketed_batches(
            samples, batch_size, min_length=SCORE_MIN_LENGTH,
            with_indices=True))
        if not batches:
            return scores
        done = threading.Event()
        lock = threading.Lock()
        state = {"remaining": len(batches), "error": None}

        def on_result(indices, batch_scores, error) -> None:
            with lock:
                if error is not None:
                    state["error"] = state["error"] or str(error)
                else:
                    scores[indices] = batch_scores
                state["remaining"] -= 1
                if state["remaining"] <= 0:
                    done.set()

        submitted = 0
        try:
            for ids, _, indices in batches:
                self.submit(ids, indices, on_result)
                submitted += 1
        except RuntimeError as error:
            with lock:
                state["error"] = state["error"] or str(error)
                state["remaining"] -= len(batches) - submitted
                if state["remaining"] <= 0:
                    done.set()
        done.wait()
        if state["error"] is not None:
            raise RuntimeError(
                f"process scoring failed: {state['error']}")
        return scores

    # -- collection ----------------------------------------------------------

    def _collect(self) -> None:
        while True:
            try:
                job_id, scores, error = self._result_q.get(
                    timeout=0.2)
            except queue.Empty:
                with self._jobs_lock:
                    outstanding = bool(self._jobs)
                if not outstanding and self._collector_stop.is_set():
                    return
                if outstanding and not any(proc.is_alive()
                                           for proc in self._procs):
                    self._fail_outstanding("all scorer worker "
                                           "processes exited")
                continue
            with self._jobs_lock:
                payload, callback = self._jobs.pop(job_id)
            callback(payload, scores, error)

    def _fail_outstanding(self, reason: str) -> None:
        self._broken = reason
        with self._jobs_lock:
            entries = list(self._jobs.values())
            self._jobs.clear()
        for payload, callback in entries:
            callback(payload, None, reason)

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Poison and join workers, stop the collector, free the
        shared-memory weights (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            self._request_q.put(None)
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=2.0)
        self._collector_stop.set()
        self._collector.join()
        # If workers died with batches still queued, the request
        # queue's feeder thread is blocked on a pipe nobody will ever
        # read; joining it at interpreter exit would hang forever.
        self._request_q.cancel_join_thread()
        self._result_q.cancel_join_thread()
        self._request_q.close()
        self._result_q.close()
        self._shared.unlink()

    def __enter__(self) -> "ScorerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
