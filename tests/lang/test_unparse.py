"""Tests for the AST pretty-printer (parse/unparse round trip)."""

from hypothesis import given, settings

from repro.lang import ast_nodes as A
from repro.lang.parser import parse
from repro.lang.unparse import unparse, unparse_expr

from .test_properties import random_programs


def structure_of(unit: A.TranslationUnit) -> list:
    """A structural digest of the AST (types + key attributes), used to
    compare round-tripped trees without relying on line numbers."""
    digest = []
    for fn in unit.functions:
        for node in A.walk(fn.body):
            entry = [type(node).__name__]
            if isinstance(node, A.Ident):
                entry.append(node.name)
            elif isinstance(node, A.Number):
                entry.append(node.text)
            elif isinstance(node, (A.Binary, A.Assign, A.Unary)):
                entry.append(node.op)
            elif isinstance(node, A.Member):
                entry.append((node.name, node.arrow))
            elif isinstance(node, A.Decl):
                entry.append(tuple(d.name for d in node.declarators))
            digest.append(tuple(entry))
    return digest


def roundtrip(source: str) -> None:
    first = parse(source)
    rendered = unparse(first)
    second = parse(rendered)
    assert structure_of(first) == structure_of(second), rendered


class TestRoundTrip:
    def test_expressions(self):
        roundtrip("void f(int a, int b) { int c = a * (b + 2) - 1; "
                  "c = a < b ? a : b; c += a % 3; }")

    def test_precedence_preserved(self):
        source = "void f(int a, int b, int c) { int r = a * (b + c); }"
        unit = parse(source)
        rendered = unparse(unit)
        assert "a * (b + c)" in rendered

    def test_no_spurious_parens(self):
        unit = parse("void f(int a, int b) { int r = a + b * 2; }")
        assert "a + b * 2" in unparse(unit)

    def test_control_statements(self):
        roundtrip("""
void f(int n) {
    if (n < 0) { n = 0; } else if (n > 9) { n = 9; } else { n++; }
    while (n) { n--; }
    do { n += 2; } while (n < 5);
    for (int i = 0; i < n; i++) { n -= i; }
    switch (n) { case 1: n = 0; break; default: break; }
}
""")

    def test_pointers_arrays_members(self):
        roundtrip("""
struct box { int value; };
void f(struct box *b, char *s) {
    char buf[8];
    buf[0] = *s;
    b->value = buf[0] + 1;
    char *p = &buf[2];
    int size = sizeof(buf);
}
""")

    def test_goto_and_labels(self):
        roundtrip("void f(int n) { goto end; n = 1; end: return; }")

    def test_calls_and_strings(self):
        roundtrip('void f(char *d) { printf("x %d\\n", strlen(d)); }')

    def test_function_signatures(self):
        unit = parse("char *dup(char *s, int n) { return s; }")
        rendered = unparse(unit)
        assert "char *dup(char *s, int n)" in rendered
        roundtrip(rendered)

    def test_unparsed_output_is_interpretable(self):
        from repro.lang.interp import run_program
        source = ('int main() { int s = 0; '
                  'for (int i = 1; i <= 4; i++) { s += i; } '
                  'printf("%d", s); return 0; }')
        rendered = unparse(parse(source))
        assert run_program(rendered).output == "10"

    @given(random_programs())
    @settings(max_examples=50, deadline=None)
    def test_random_program_roundtrip(self, source):
        roundtrip(source)

    def test_corpus_roundtrip(self):
        from repro.datasets.sard import generate_sard_corpus
        for case in generate_sard_corpus(12, seed=77):
            roundtrip(case.source)


class TestExprRendering:
    def test_unary_postfix(self):
        unit = parse("void f(int i) { i++; --i; }")
        rendered = unparse(unit)
        assert "i++;" in rendered and "--i;" in rendered

    def test_cast(self):
        assert "(char*)p" in unparse(
            parse("void f(int p) { char *c = (char *)p; }"))

    def test_ternary_in_argument(self):
        unit = parse("void f(int n) { g(n > 3 ? n : 3); }")
        assert "g(n > 3 ? n : 3)" in unparse(unit)
