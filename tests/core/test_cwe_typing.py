"""Tests for multiclass CWE typing (Fig 2(b) vulnerability type)."""

import numpy as np
import pytest

from repro.core.cwe_typing import CWETyper
from repro.core.pipeline import encode_gadgets, extract_gadgets
from repro.datasets.sard import generate_sard_corpus
from repro.models.multiclass import CWETypeNet
from repro.nn import Tensor, cross_entropy, set_default_dtype


class TestCrossEntropy:
    @pytest.fixture(autouse=True)
    def pin_float64(self):
        # Exact-reference and central-difference checks need float64;
        # the production default is float32 (repro.nn.dtype).
        previous = set_default_dtype(np.float64)
        yield
        set_default_dtype(previous)

    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        targets = rng.integers(0, 4, size=5)
        loss = cross_entropy(logits, targets)
        z = logits.data
        shifted = z - z.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1,
                                                      keepdims=True)
        reference = -np.log(probs[np.arange(5), targets]).mean()
        assert abs(float(loss.data) - reference) < 1e-9

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 4))
        targets = np.array([0, 2, 1])
        logits = Tensor(data.copy(), requires_grad=True)
        cross_entropy(logits, targets).backward()
        eps = 1e-6
        numeric = np.zeros_like(data)
        for i in range(3):
            for j in range(4):
                data[i, j] += eps
                plus = float(cross_entropy(Tensor(data),
                                           targets).data)
                data[i, j] -= 2 * eps
                minus = float(cross_entropy(Tensor(data),
                                            targets).data)
                data[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.abs(logits.grad - numeric).max() < 1e-6

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-6


class TestCWETypeNet:
    def test_forward_shape(self):
        model = CWETypeNet(vocab_size=30, num_classes=5, dim=8,
                           channels=8)
        ids = np.zeros((3, 12), dtype=np.int64)
        assert model(ids).shape == (3, 5)

    def test_predict_proba_rows_sum_to_one(self):
        model = CWETypeNet(vocab_size=30, num_classes=4, dim=8,
                           channels=8)
        probs = model.predict_proba(np.zeros((2, 9), dtype=np.int64))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValueError):
            CWETypeNet(vocab_size=10, num_classes=1)


class TestCWETyper:
    @pytest.fixture(scope="class")
    def fitted(self):
        cases = generate_sard_corpus(120, seed=55)
        gadgets = extract_gadgets(cases)
        dataset = encode_gadgets(gadgets, dim=12, w2v_epochs=1,
                                 seed=5)
        typer = CWETyper(vocab=dataset.vocab, dim=12, channels=12,
                         seed=5)
        typer.fit(gadgets, epochs=10,
                  pretrained=dataset.word2vec.vectors)
        return typer, gadgets

    def test_learns_multiple_classes(self, fitted):
        typer, _ = fitted
        assert len(typer.classes) >= 4

    def test_training_accuracy_beats_majority(self, fitted):
        typer, gadgets = fitted
        vulnerable = [g for g in gadgets if g.label == 1 and g.cwe]
        counts = {}
        for gadget in vulnerable:
            counts[gadget.cwe] = counts.get(gadget.cwe, 0) + 1
        majority = max(counts.values()) / len(vulnerable)
        accuracy = typer.accuracy(gadgets)
        assert accuracy > majority + 0.1, (accuracy, majority)

    def test_classify_returns_known_class(self, fitted):
        typer, gadgets = fitted
        target = next(g for g in gadgets if g.label == 1)
        assert typer.classify(target) in typer.classes

    def test_untrained_raises(self):
        from repro.embedding.vocab import Vocabulary
        typer = CWETyper(vocab=Vocabulary())
        with pytest.raises(RuntimeError):
            typer.classify_tokens(["strcpy"])

    def test_fit_requires_vulnerable_gadgets(self):
        from repro.embedding.vocab import Vocabulary
        typer = CWETyper(vocab=Vocabulary())
        with pytest.raises(ValueError):
            typer.fit([])
