"""BLSTM baseline (VulDeePecker's network, paper Table IV column 1).

Fixed-length input: gadgets are truncated/padded to ``time_steps``
tokens (Definition 8) before entering the bidirectional LSTM; the final
forward/backward hidden states feed a dense head.
"""

from __future__ import annotations

import numpy as np

from ..nn import (Bidirectional, Dropout, Embedding, Linear, Module,
                  Tensor, stable_sigmoid)

__all__ = ["BLSTMNet"]


class BLSTMNet(Module):
    """Bidirectional-LSTM gadget classifier.

    Args:
        vocab_size: embedding rows.
        dim: embedding width (VulDeePecker uses 50).
        hidden: LSTM hidden size per direction.
        time_steps: the fixed token length tau.
        dropout: dropout before the dense head (VulDeePecker: 0.5).
    """

    def __init__(self, vocab_size: int, dim: int = 50, hidden: int = 32,
                 time_steps: int = 50, dropout: float = 0.5,
                 pretrained: np.ndarray | None = None, seed: int = 7):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fixed_length = time_steps
        self.embedding = Embedding(vocab_size, dim, rng,
                                   weights=pretrained)
        self.rnn = Bidirectional(dim, hidden, rng, kind="lstm")
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(2 * hidden, 1, rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """(batch, time_steps) int ids -> (batch,) logits."""
        if token_ids.shape[1] != self.fixed_length:
            raise ValueError(
                f"BLSTM requires exactly {self.fixed_length} tokens, got "
                f"{token_ids.shape[1]}; apply pad_or_truncate first")
        embedded = self.embedding(token_ids)      # (B, T, D)
        _, final = self.rnn(embedded)             # (B, 2H)
        return self.head(self.dropout(final)).reshape(-1)

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        logits = self.forward(token_ids).data
        return stable_sigmoid(logits)
