"""Dataset adapters: one protocol over every corpus generator.

The benchmark matrix (:mod:`repro.eval.matrix`) consumes datasets
through a single small surface — :class:`DatasetAdapter` — so a new
corpus becomes one adapter class instead of edits to every table
script.  Each adapter owns its corpus sizing and split policy and maps
one master seed to deterministic train/test splits:

* the adapter derives *independent* sub-seeds for the train and test
  generators from ``(seed, adapter name, role)`` via SHA-256, so
  corpora never collide across adapters or roles even when the caller
  reuses one master seed for the whole grid;
* ``load(seed)`` twice yields byte-identical sources and labels
  (pinned by ``tests/datasets/test_adapters.py``), which is what makes
  ``BENCH_matrix.json`` regression-trackable.

:class:`DatasetSplit` also exposes the per-CWE directory-style
grouping that Juliet/CVEfixes layouts imply, for per-family drilldown.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from .cvefixes import generate_cvefixes_corpus
from .juliet import generate_juliet_corpus
from .manifest import TestCase
from .nvd import generate_nvd_corpus
from .sard import generate_sard_corpus
from .xen import generate_xen_corpus

__all__ = [
    "DatasetAdapter", "DatasetSplit", "derive_seed",
    "SardAdapter", "NvdAdapter", "XenAdapter", "JulietAdapter",
    "CVEFixesAdapter", "FixedCorpusAdapter", "default_adapters",
]


def derive_seed(seed: int, *parts: str) -> int:
    """A stable sub-seed from a master seed and a role path.

    Uses SHA-256 (not Python's randomized ``hash``) so the derivation
    is identical across processes and sessions — the determinism the
    matrix's resume and regression tracking rely on.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode("utf-8"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % (2**31 - 1)


@dataclass
class DatasetSplit:
    """One dataset's train/test split, as loaded for a single seed."""

    name: str
    train: list[TestCase]
    test: list[TestCase] = field(default_factory=list)

    def by_cwe(self) -> dict[str, list[TestCase]]:
        """Group the *test* cases per CWE, directory-style.

        Mirrors the one-directory-per-weakness layout of Juliet (and
        of CVEfixes when re-filed by CWE): keys look like paths
        (``<dataset>/CWE-121``) and each bucket holds that family's
        cases, enabling per-family metric drilldowns.
        """
        groups: dict[str, list[TestCase]] = {}
        for case in self.test:
            groups.setdefault(f"{self.name}/{case.cwe}", []).append(case)
        return groups

    def summary(self) -> dict[str, object]:
        """Sizing and balance facts for reports."""
        vulnerable = sum(1 for case in self.test if case.vulnerable)
        return {
            "dataset": self.name,
            "train_cases": len(self.train),
            "test_cases": len(self.test),
            "test_vulnerable": vulnerable,
            "cwes": len(self.by_cwe()),
        }


@runtime_checkable
class DatasetAdapter(Protocol):
    """What the matrix needs from a dataset.

    ``load(seed)`` must be a pure function of ``seed`` — same seed,
    byte-identical corpus; different seed, different corpus.
    """

    name: str

    def load(self, seed: int) -> DatasetSplit:
        """Materialise the train/test split for ``seed``."""
        ...


@dataclass
class SardAdapter:
    """SARD-substitute corpus (the paper's main training ground)."""

    train_count: int = 200
    test_count: int = 100
    categories: tuple[str, ...] | None = None
    name: str = "sard"

    def load(self, seed: int) -> DatasetSplit:
        return DatasetSplit(
            self.name,
            train=generate_sard_corpus(
                self.train_count,
                seed=derive_seed(seed, self.name, "train"),
                categories=self.categories),
            test=generate_sard_corpus(
                self.test_count,
                seed=derive_seed(seed, self.name, "test"),
                categories=self.categories))


@dataclass
class NvdAdapter:
    """NVD-substitute corpus (skewed vulnerable fraction)."""

    train_count: int = 200
    test_count: int = 100
    name: str = "nvd"

    def load(self, seed: int) -> DatasetSplit:
        return DatasetSplit(
            self.name,
            train=generate_nvd_corpus(
                self.train_count,
                seed=derive_seed(seed, self.name, "train")),
            test=generate_nvd_corpus(
                self.test_count,
                seed=derive_seed(seed, self.name, "test")))


@dataclass
class XenAdapter:
    """Real-world-style corpus: train on Xen template cases, test on a
    disjoint Xen draw that includes the three CVE miniatures.

    The CVE miniatures are seed-independent and lead every generated
    Xen corpus, so the train side strips them — the whole point of the
    RQ3/RQ4 setting is that the detector has never seen the CVEs.
    """

    train_count: int = 120
    test_count: int = 60
    name: str = "xen"

    def load(self, seed: int) -> DatasetSplit:
        train = [
            case for case in generate_xen_corpus(
                self.train_count + 6,
                seed=derive_seed(seed, self.name, "train"))
            if "cve" not in case.meta
        ]
        test = generate_xen_corpus(
            self.test_count, seed=derive_seed(seed, self.name, "test"))
        return DatasetSplit(self.name, train=train, test=test)


@dataclass
class JulietAdapter:
    """Juliet-style paired bad/good corpus (see datasets/juliet.py)."""

    train_count: int = 200
    test_count: int = 100
    categories: tuple[str, ...] | None = None
    name: str = "juliet"

    def load(self, seed: int) -> DatasetSplit:
        return DatasetSplit(
            self.name,
            train=generate_juliet_corpus(
                self.train_count,
                seed=derive_seed(seed, self.name, "train"),
                categories=self.categories),
            test=generate_juliet_corpus(
                self.test_count,
                seed=derive_seed(seed, self.name, "test"),
                categories=self.categories))


@dataclass
class CVEFixesAdapter:
    """CVEfixes-style pre/post fix-commit corpus."""

    train_count: int = 200
    test_count: int = 100
    vulnerable_fraction: float = 0.5
    name: str = "cvefixes"

    def load(self, seed: int) -> DatasetSplit:
        return DatasetSplit(
            self.name,
            train=generate_cvefixes_corpus(
                self.train_count,
                seed=derive_seed(seed, self.name, "train"),
                vulnerable_fraction=self.vulnerable_fraction),
            test=generate_cvefixes_corpus(
                self.test_count,
                seed=derive_seed(seed, self.name, "test"),
                vulnerable_fraction=self.vulnerable_fraction))


@dataclass
class FixedCorpusAdapter:
    """Wrap pre-built case lists (ignores the seed).

    Lets the table benchmarks feed their existing session corpora —
    generated with the historical seeds — through the matrix unchanged,
    which is what makes exact metric parity with the pre-refactor
    ad-hoc paths checkable.
    """

    name: str
    train: list[TestCase]
    test: list[TestCase]

    def load(self, seed: int) -> DatasetSplit:  # noqa: ARG002
        return DatasetSplit(self.name, train=list(self.train),
                            test=list(self.test))


def default_adapters(
    train_count: int | None = None,
    test_count: int | None = None,
) -> dict[str, DatasetAdapter]:
    """The standard adapter registry, keyed by dataset name.

    Counts default to the active scale preset (train = the preset's
    ``cases_per_experiment``, test = half of it).
    """
    from ..core.config import current_scale

    scale = current_scale()
    train = train_count if train_count is not None \
        else scale.cases_per_experiment
    test = test_count if test_count is not None \
        else max(scale.cases_per_experiment // 2, 20)
    adapters: tuple[DatasetAdapter, ...] = (
        SardAdapter(train, test),
        NvdAdapter(train, test),
        XenAdapter(max(train // 2, 30), max(test // 2, 20)),
        JulietAdapter(train, test),
        CVEFixesAdapter(train, test),
    )
    return {adapter.name: adapter for adapter in adapters}
