"""Convolution and pooling primitives for 1-D sequence models.

SEVulDet treats a gadget as a 1-D token sequence whose "image" is
``(channels, length)``; convolution kernels span the full embedding
width (paper Step V), so everything here operates on tensors shaped
``(batch, channels, length)``.
"""

from __future__ import annotations

import numpy as np

from .dtype import get_default_dtype
from .tensor import Tensor

__all__ = ["conv1d", "max_pool1d", "avg_pool1d",
           "adaptive_max_pool1d", "adaptive_avg_pool1d",
           "stable_sigmoid"]


def stable_sigmoid(logits: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid on a raw ndarray, dtype-aware.

    The classic ``1 / (1 + exp(-clip(z, -500, 500)))`` overflows under
    float32, whose ``exp`` is only finite up to ~88: ``exp(500)`` emits
    a RuntimeWarning and relies on ``1 / inf == 0`` propagation.  Here
    the sign branch guarantees only ``exp`` of non-positive arguments
    is ever taken, and the magnitude is additionally clipped to the
    finite ``exp`` range of the array's own float dtype, so no
    floating-point warning can fire even under
    ``np.errstate(over="raise", invalid="raise")``.
    """
    data = np.asarray(logits)
    if data.dtype.kind != "f":
        data = data.astype(get_default_dtype())
    limit = float(np.log(np.finfo(data.dtype).max))
    exp_neg = np.exp(-np.minimum(np.abs(data), limit))  # in (0, 1]
    return np.where(data >= 0,
                    1.0 / (1.0 + exp_neg),
                    exp_neg / (1.0 + exp_neg))


def _im2col(data: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """(B, C, L) -> (B, out_len, C*kernel) patch matrix."""
    batch, channels, length = data.shape
    out_len = (length - kernel) // stride + 1
    stride_b, stride_c, stride_l = data.strides
    patches = np.lib.stride_tricks.as_strided(
        data,
        shape=(batch, out_len, channels, kernel),
        strides=(stride_b, stride_l * stride, stride_c, stride_l),
        writeable=False,
    )
    return patches.reshape(batch, out_len, channels * kernel)


def _window_view(data: np.ndarray, kernel: int,
                 stride: int) -> np.ndarray:
    """(B, C, L) -> read-only (B, C, out_len, kernel) sliding windows.

    A zero-copy ``as_strided`` view: reductions over the last axis
    implement pooling without materializing the ``np.stack`` of
    windows the old kernels built per batch.
    """
    batch, channels, length = data.shape
    out_len = (length - kernel) // stride + 1
    stride_b, stride_c, stride_l = data.strides
    return np.lib.stride_tricks.as_strided(
        data,
        shape=(batch, channels, out_len, kernel),
        strides=(stride_b, stride_c, stride_l * stride, stride_l),
        writeable=False,
    )


def _col2im_add(grad_x: np.ndarray, grad_windows: np.ndarray,
                kernel: int, stride: int) -> None:
    """Scatter-accumulate (B, C, out_len, kernel) window gradients
    back onto (B, C, L) ``grad_x`` in place.

    Loops over the kernel offset (a handful of iterations) instead of
    every output position: for a fixed offset each position writes a
    distinct strided location, so the add is one vectorized slice
    assignment.  Offsets run high-to-low so every input element
    accumulates its overlapping contributions in ascending-position
    order — bit-identical to the old per-position Python loop.
    """
    out_len = grad_windows.shape[2]
    span = (out_len - 1) * stride + 1
    for offset in reversed(range(kernel)):
        grad_x[:, :, offset : offset + span : stride] += \
            grad_windows[:, :, :, offset]


def conv1d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """1-D cross-correlation.

    Args:
        x: input of shape (batch, in_channels, length).
        weight: kernels of shape (out_channels, in_channels, kernel).
        bias: optional (out_channels,).
        stride: hop between applications.
        padding: symmetric zero padding on the length axis.

    Returns:
        Tensor of shape (batch, out_channels, out_length).
    """
    if padding > 0:
        x = x.pad1d(padding, padding)
    batch, in_channels, length = x.shape
    out_channels, w_in, kernel = weight.shape
    if w_in != in_channels:
        raise ValueError(f"channel mismatch: input {in_channels}, "
                         f"weight {w_in}")
    if length < kernel:
        raise ValueError(f"input length {length} shorter than kernel "
                         f"{kernel}; pad the input")
    out_len = (length - kernel) // stride + 1

    cols = _im2col(x.data, kernel, stride)  # (B, out_len, C*k)
    w_flat = weight.data.reshape(out_channels, -1)  # (O, C*k)
    out_data = np.einsum("bok,ck->bco", cols, w_flat, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        # grad: (B, O, out_len)
        if weight.requires_grad:
            grad_w = np.einsum("bco,bok->ck", grad, cols, optimize=True)
            weight._accumulate(grad_w.reshape(weight.data.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            grad_cols = np.einsum("bco,ck->bok", grad, w_flat,
                                  optimize=True)
            grad_cols = grad_cols.reshape(batch, out_len, in_channels,
                                          kernel)
            grad_x = np.zeros((batch, in_channels, length),
                              dtype=grad.dtype)
            _col2im_add(grad_x, grad_cols.transpose(0, 2, 1, 3),
                        kernel, stride)
            x._accumulate(grad_x)

    probe = Tensor(0.0)
    return probe._make(out_data, tuple(parents), backward)


def max_pool1d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over the length axis of (B, C, L)."""
    stride = stride or kernel
    batch, channels, length = x.shape
    out_len = max((length - kernel) // stride + 1, 0)
    if out_len == 0:
        raise ValueError(f"input length {length} shorter than pooling "
                         f"window {kernel}")
    windows = _window_view(x.data, kernel, stride)  # (B, C, out_len, k)
    out_data = windows.max(axis=3)
    arg = windows.argmax(axis=3)  # (B, C, out_len)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        b_idx, c_idx, p_idx = np.indices(arg.shape)
        positions = p_idx * stride + arg
        np.add.at(grad_x, (b_idx, c_idx, positions), grad)
        x._accumulate(grad_x)

    probe = Tensor(0.0)
    return probe._make(out_data, (x,), backward)


def avg_pool1d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over the length axis of (B, C, L)."""
    stride = stride or kernel
    batch, channels, length = x.shape
    out_len = max((length - kernel) // stride + 1, 0)
    if out_len == 0:
        raise ValueError(f"input length {length} shorter than pooling "
                         f"window {kernel}")
    windows = _window_view(x.data, kernel, stride)
    out_data = windows.mean(axis=3)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        shared = np.broadcast_to((grad / kernel)[:, :, :, None],
                                 grad.shape + (kernel,))
        _col2im_add(grad_x, shared, kernel, stride)
        x._accumulate(grad_x)

    probe = Tensor(0.0)
    return probe._make(out_data, (x,), backward)


def _adaptive_bounds(length: int, bins: int) -> list[tuple[int, int]]:
    """Split [0, length) into ``bins`` contiguous, never-empty spans.

    PyTorch's adaptive rule: bin ``b`` covers ``[floor(b*L/bins),
    ceil((b+1)*L/bins))``.  When the input is *shorter* than the bin
    count (a gadget of length 1-3 under the paper's (4, 2, 1) pyramid)
    the spans overlap and repeat elements instead — every span still
    satisfies ``start < end <= length``, so both pooling modes and
    their gradients stay well defined (pinned by
    ``tests/nn/test_spp_short_inputs.py``).
    """
    if length < 1:
        raise ValueError(
            f"adaptive pooling needs length >= 1, got {length}")
    bounds = []
    for b in range(bins):
        start = (b * length) // bins        # <= length - 1 for b < bins
        end = max(-(-((b + 1) * length) // bins), start + 1)
        bounds.append((start, min(end, length)))
    return bounds


def adaptive_max_pool1d(x: Tensor, bins: int) -> Tensor:
    """Max pool (B, C, L) down to exactly (B, C, bins) for any L >= 1."""
    batch, channels, length = x.shape
    outs = []
    args = []
    for start, end in _adaptive_bounds(length, bins):
        window = x.data[:, :, start:end]
        outs.append(window.max(axis=2))
        args.append(window.argmax(axis=2) + start)
    out_data = np.stack(outs, axis=2)
    arg = np.stack(args, axis=2)  # absolute positions

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        b_idx, c_idx, _ = np.indices(arg.shape)
        np.add.at(grad_x, (b_idx, c_idx, arg), grad)
        x._accumulate(grad_x)

    probe = Tensor(0.0)
    return probe._make(out_data, (x,), backward)


def adaptive_avg_pool1d(x: Tensor, bins: int) -> Tensor:
    """Average pool (B, C, L) down to exactly (B, C, bins)."""
    batch, channels, length = x.shape
    bounds = _adaptive_bounds(length, bins)
    out_data = np.stack(
        [x.data[:, :, s:e].mean(axis=2) for s, e in bounds], axis=2)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        for index, (start, end) in enumerate(bounds):
            grad_x[:, :, start:end] += \
                grad[:, :, index : index + 1] / (end - start)
        x._accumulate(grad_x)

    probe = Tensor(0.0)
    return probe._make(out_data, (x,), backward)
