"""Model parameter persistence (npz archives + shared memory).

All writes are atomic: the archive is assembled in a sibling temp file
that is renamed over the destination, so a crash mid-save (or two
processes racing on the same path) leaves either the old complete file
or the new complete file — never a torn archive.

:class:`SharedWeights` is the multi-process serving side: one
``multiprocessing.shared_memory`` block holds every parameter array
exactly once, a picklable spec travels to scorer worker processes,
and each worker rebuilds the arrays as zero-copy read-only views over
the same physical pages — N scorer processes pay for one copy of the
model.
"""

from __future__ import annotations

import json
import re
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from .dtype import get_default_dtype
from .layers import Module

__all__ = ["save_npz_atomic", "save_model", "load_model",
           "SharedWeights", "bind_state"]

#: Key style of archives written before parameters had names:
#: ``param0`` .. ``paramN`` in :meth:`Module.parameters` order.
_LEGACY_KEY = re.compile(r"^param\d+$")


def save_npz_atomic(path: str | Path, arrays: dict,
                    metadata: dict | None = None) -> None:
    """Write an ``.npz`` of ``arrays`` (+ JSON metadata) atomically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(arrays)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8)
    temp = path.with_name(path.name + ".tmp")
    # savez appends '.npz' to bare names but honors open file handles,
    # which also lets the rename target keep its exact spelling
    with temp.open("wb") as handle:
        np.savez(handle, **payload)
    temp.replace(path)


class SharedWeights:
    """Named arrays packed into one shared-memory block.

    Parent side::

        shared = SharedWeights.export(model.state_dict())
        spec = shared.spec()          # picklable; send to workers
        ...
        shared.unlink()               # after every worker detached

    Worker side::

        shared = SharedWeights.attach(spec)
        model.bind_parameters(...)    # or read shared.arrays()
        shared.close()                # detach on shutdown

    Worker views are read-only: scoring must never scribble on pages
    every process shares.  Alignment: each array is placed at an
    offset rounded up to 64 bytes so views stay cache-line aligned.
    """

    _ALIGN = 64

    def __init__(self, shm: shared_memory.SharedMemory,
                 manifest: list[tuple[str, str, tuple, int]],
                 owner: bool):
        self._shm = shm
        self._manifest = manifest
        self._owner = owner
        self._unlinked = False

    # -- parent side ---------------------------------------------------------

    @classmethod
    def export(cls, arrays: dict[str, np.ndarray],
               name: str | None = None) -> "SharedWeights":
        """Copy ``arrays`` into a fresh shared-memory block."""
        manifest: list[tuple[str, str, tuple, int]] = []
        offset = 0
        for key in sorted(arrays):
            array = np.ascontiguousarray(arrays[key])
            offset = cls._aligned(offset)
            manifest.append((key, array.dtype.str, array.shape,
                             offset))
            offset += array.nbytes
        shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name)
        shared = cls(shm, manifest, owner=True)
        for key, dtype, shape, off in manifest:
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                              offset=off)
            view[...] = arrays[key]
        return shared

    @classmethod
    def _aligned(cls, offset: int) -> int:
        return (offset + cls._ALIGN - 1) // cls._ALIGN * cls._ALIGN

    def spec(self) -> dict:
        """Picklable attachment recipe for worker processes."""
        return {"name": self._shm.name, "manifest": self._manifest}

    # -- worker side ---------------------------------------------------------

    @classmethod
    def attach(cls, spec: dict) -> "SharedWeights":
        """Map an exported block created by another process."""
        shm = shared_memory.SharedMemory(name=spec["name"])
        # The exporting process owns the block's lifetime.  Worker
        # processes spawned by it inherit its resource tracker, where
        # registrations dedup by name — so attaching neither needs an
        # unregister (which would race the owner's unlink) nor leaks.
        return cls(shm, [tuple(entry) for entry in spec["manifest"]],
                   owner=False)

    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy views over the block, keyed like a state dict.

        Owner views are writable (the exporter may update in place);
        attached views are read-only.
        """
        out: dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in self._manifest:
            view = np.ndarray(tuple(shape), dtype=dtype,
                              buffer=self._shm.buf, offset=offset)
            if not self._owner:
                view.flags.writeable = False
            out[key] = view
        return out

    # -- lifetime ------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Detach this process's mapping (views become invalid)."""
        try:
            self._shm.close()
        except BufferError:  # live views still reference the buffer
            pass

    def unlink(self) -> None:
        """Free the block (owner only, idempotent)."""
        self.close()
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __enter__(self) -> "SharedWeights":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink() if self._owner else self.close()


def bind_state(model: Module, state: dict[str, np.ndarray]) -> None:
    """Point the model's parameters at ``state``'s arrays, zero-copy.

    Unlike :meth:`Module.load_state_dict` (which copies into freshly
    owned arrays), this makes ``param.data`` *be* the given array —
    the scorer-worker path where ``state`` holds shared-memory views
    and a copy per process would defeat the sharing.  Keys and shapes
    must match exactly; read-only views are accepted (inference never
    writes parameters).
    """
    own: dict = {}
    model._collect_params(own, prefix="")
    missing = set(own) - set(state)
    if missing:
        raise KeyError(f"state missing keys: {sorted(missing)}")
    for key, param in own.items():
        array = state[key]
        if array.shape != param.data.shape:
            raise ValueError(f"shape mismatch for {key}: "
                             f"{array.shape} vs {param.data.shape}")
        param.data = array


def save_model(model: Module, path: str | Path,
               metadata: dict | None = None) -> None:
    """Save all parameters (and optional JSON metadata) to ``path``."""
    save_npz_atomic(path, model.state_dict(), metadata)


def load_model(model: Module, path: str | Path) -> dict:
    """Load parameters into ``model``; returns saved metadata (or {}).

    Archives written by :func:`save_model` are keyed by dotted
    parameter names (``fc1.weight``).  Older archives keyed
    positionally (``param0`` .. ``paramN``) still load: the arrays are
    assigned to :meth:`Module.parameters` in order, which is exactly
    how they were written.
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata = {}
        state = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode())
            else:
                state[key] = archive[key]
    if state and all(_LEGACY_KEY.match(key) for key in state):
        _load_legacy_state(model, state, path)
    else:
        model.load_state_dict(state)
    return metadata


def _load_legacy_state(model: Module, state: dict, path: Path) -> None:
    params = list(model.parameters())
    if len(state) != len(params):
        raise ValueError(
            f"legacy archive {path} holds {len(state)} parameter "
            f"arrays but the model has {len(params)}")
    for index, param in enumerate(params):
        key = f"param{index}"
        if key not in state:
            raise KeyError(f"legacy archive {path} missing {key}")
        array = np.asarray(state[key], dtype=get_default_dtype())
        if array.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: "
                f"{array.shape} vs {param.data.shape}")
        param.data = array.copy()
