"""Dominator / post-dominator analysis and control dependence.

Control dependence follows Ferrante, Ottenstein & Warren (TOPLAS 1987),
the algorithm the paper cites for PDG construction: statement *b* is
control dependent on predicate *a* exactly when *a* has an outgoing CFG
edge whose traversal makes execution of *b* inevitable while some other
edge out of *a* avoids *b*.  Operationally: for each CFG edge (a, b)
where *b* does not post-dominate *a*, every node on the post-dominator
tree path from *b* up to (excluding) ipostdom(a) is control dependent on
*a*, labelled with the edge's branch label.
"""

from __future__ import annotations

import networkx as nx

from .cfg import CFG, CFGNode

__all__ = [
    "dominator_tree",
    "post_dominator_tree",
    "control_dependences",
]


def _to_networkx(cfg: CFG) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(cfg.nodes)
    for edge in cfg.edges:
        graph.add_edge(edge.src, edge.dst)
    return graph


def dominator_tree(cfg: CFG) -> dict[int, int]:
    """Immediate dominators keyed by node id (entry maps to itself).

    Nodes unreachable from entry are absent from the result.
    """
    graph = _to_networkx(cfg)
    idom = dict(nx.immediate_dominators(graph, cfg.entry.id))
    idom[cfg.entry.id] = cfg.entry.id  # some nx versions omit the root
    return idom


def post_dominator_tree(cfg: CFG) -> dict[int, int]:
    """Immediate post-dominators keyed by node id (exit maps to itself).

    Computed as dominators of the reversed CFG rooted at the exit node.
    Nodes that cannot reach the exit (e.g. bodies of provable infinite
    loops) are connected to the exit with an auxiliary edge first so that
    every node receives a post-dominator — matching how practical PDG
    builders (and Joern) handle non-terminating paths.
    """
    graph = _to_networkx(cfg).reverse(copy=True)
    reachable = set(nx.descendants(graph, cfg.exit.id)) | {cfg.exit.id}
    for node_id in cfg.nodes:
        if node_id not in reachable:
            # Auxiliary edge: pretend the stuck node can reach exit.
            graph.add_edge(cfg.exit.id, node_id)
    ipdom = dict(nx.immediate_dominators(graph, cfg.exit.id))
    ipdom[cfg.exit.id] = cfg.exit.id  # some nx versions omit the root
    return ipdom


def control_dependences(cfg: CFG) -> list[tuple[CFGNode, CFGNode, str]]:
    """Compute labelled control-dependence pairs.

    Returns:
        list of ``(controller, dependent, branch_label)`` triples where
        ``dependent`` executes only when ``controller`` takes the branch
        carrying ``branch_label``.
    """
    ipdom = post_dominator_tree(cfg)
    result: list[tuple[CFGNode, CFGNode, str]] = []
    seen: set[tuple[int, int, str]] = set()
    for edge in cfg.edges:
        a, b = edge.src, edge.dst
        if ipdom.get(a) == b:
            continue  # b post-dominates a via this unique continuation
        # Walk b up the post-dominator tree until reaching ipdom(a).
        stop = ipdom.get(a)
        runner: int | None = b
        guard = 0
        while runner is not None and runner != stop:
            if runner != a:
                key = (a, runner, edge.label)
                if key not in seen:
                    seen.add(key)
                    result.append((cfg.nodes[a], cfg.nodes[runner],
                                   edge.label))
            nxt = ipdom.get(runner)
            if nxt == runner:  # reached the root (exit)
                break
            runner = nxt
            guard += 1
            if guard > len(cfg.nodes) + 1:  # malformed tree safety valve
                break
    return result
