"""Table VI — real-world (Xen-like) corpus evaluation.

Pre-trained frameworks applied to the harder Xen-flavoured corpus.
Paper shape: every framework's precision drops sharply relative to the
synthetic corpus (real software is harder: paper P = 51.6/60.0/62.7);
the ordering VulDeePecker < SySeVR < SEVulDet on F1 holds
(60.6 < 67.9 < 73.4).
"""

from repro.datasets.xen import generate_xen_corpus
from repro.eval.comparison import FRAMEWORKS, train_and_evaluate

from conftest import run_once

PAPER = {"VulDeePecker": (4.3, 26.7, 94.3, 51.6, 60.6),
         "SySeVR": (3.5, 19.8, 95.5, 60.0, 67.9),
         "SEVulDet": (3.3, 11.5, 96.2, 62.7, 73.4)}


def test_table6_realworld_xen(benchmark, reporter, scale, train_cases,
                              xen_train_cases):
    def experiment():
        xen = generate_xen_corpus(
            max(scale.cases_per_experiment // 2, 30), seed=401)
        training = train_cases + xen_train_cases
        results = {}
        for framework in ("VulDeePecker", "SySeVR", "SEVulDet"):
            metrics, _ = train_and_evaluate(
                FRAMEWORKS[framework], training, xen, scale,
                seed=37)
            results[framework] = metrics
        return results

    results = run_once(benchmark, experiment)

    table = reporter("table6_realworld",
                     "Table VI — pre-trained frameworks on the "
                     "Xen-like corpus")
    for framework, metrics in results.items():
        row = metrics.as_percentages()
        paper = PAPER[framework]
        table.add(work=framework, **row,
                  paper_FPR=paper[0], paper_FNR=paper[1],
                  paper_A=paper[2], paper_P=paper[3],
                  paper_F1=paper[4])
    table.save_and_print()

    # Shape: SEVulDet leads on F1; the full ordering holds with a
    # small tolerance for scaled-down noise.
    assert results["SEVulDet"].f1 >= results["SySeVR"].f1 - 0.02
    assert results["SEVulDet"].f1 >= \
        results["VulDeePecker"].f1 - 0.02
    assert results["SEVulDet"].f1 == max(m.f1 for m in
                                         results.values())
