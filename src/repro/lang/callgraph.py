"""Call graph and the whole-program analysis facade.

:class:`AnalyzedProgram` is the single entry point the slicing layer
uses: parse once, build every function's PDG, and expose the call graph
for interprocedural slice assembly (paper Algorithm 1, lines 32-36).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from . import ast_nodes as A
from .cfg import CFGNode
from .parser import parse
from .pdg import PDG, build_pdg
from .source import SourceFile

__all__ = ["CallSite", "CallGraph", "LazyCallGraph", "AnalyzedProgram",
           "analyze", "ast_call_edges"]


def ast_call_edges(unit: A.TranslationUnit) -> dict[str, list[str]]:
    """Per-caller callee lists from a plain AST walk (defined-only).

    The CFG (and therefore the PDG) is derived from the AST, so every
    PDG-visible call site corresponds to an AST ``Call`` node: this
    edge set is a *superset* of the analyzed call graph's edges.  That
    makes it safe for invalidation/reachability questions (it can only
    over-approximate) and cheap enough to compute without building a
    single PDG — the property the incremental-scanning fingerprint
    layer relies on.  Callee order follows AST pre-order; duplicates
    are dropped.
    """
    defined = {fn.name for fn in unit.functions}
    edges: dict[str, list[str]] = {}
    for fn in unit.functions:
        seen: list[str] = []
        for node in A.walk(fn.body):
            if isinstance(node, A.Call):
                callee = node.callee_name
                if callee in defined and callee not in seen:
                    seen.append(callee)
        edges[fn.name] = seen
    return edges


@dataclass(frozen=True)
class CallSite:
    """One syntactic call from ``caller`` to ``callee``."""

    caller: str
    callee: str
    node_id: int  # CFG node id inside the caller
    line: int


class CallGraph:
    """Static call graph over function names defined in one program."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.sites: list[CallSite] = []

    def add_function(self, name: str) -> None:
        self.graph.add_node(name)

    def add_call(self, site: CallSite) -> None:
        self.sites.append(site)
        self.graph.add_edge(site.caller, site.callee)

    def callees(self, name: str) -> set[str]:
        return set(self.graph.successors(name)) if name in self.graph else set()

    def callers(self, name: str) -> set[str]:
        return set(self.graph.predecessors(name)) if name in self.graph \
            else set()

    def sites_in(self, caller: str) -> list[CallSite]:
        return [s for s in self.sites if s.caller == caller]

    def sites_calling(self, callee: str) -> list[CallSite]:
        return [s for s in self.sites if s.callee == callee]

    def sites_among(self, names: Iterable[str]) -> list[CallSite]:
        """Call sites whose caller *and* callee are both in ``names``.

        The gadget assembler orders a slice's functions from exactly
        these edges; routing it through here (instead of iterating
        :attr:`sites` directly) lets a :class:`LazyCallGraph` answer
        without materializing sites for unrelated functions.
        """
        wanted = set(names)
        return [s for s in self.sites
                if s.caller in wanted and s.callee in wanted]

    def calls(self, caller: str, callee: str) -> bool:
        return self.graph.has_edge(caller, callee)

    def transitive_callers(self, names: Iterable[str],
                           depth: int) -> set[str]:
        """``names`` plus every function reaching one of them through
        at most ``depth`` call edges — the invalidation frontier of an
        edit to ``names`` (an edited callee can change any bounded
        caller's interprocedural slice)."""
        result = {n for n in names if n in self.graph}
        frontier = set(result)
        for _ in range(max(0, depth)):
            grown: set[str] = set()
            for name in frontier:
                grown |= self.callers(name)
            grown -= result
            if not grown:
                break
            result |= grown
            frontier = grown
        return result


class _LazyPDGMap:
    """Mapping facade that builds each function's PDG on first access.

    Satisfies the (small) protocol the slicing layer uses on
    ``AnalyzedProgram.pdgs`` — membership tests and item access — while
    deferring ``build_pdg`` until a function is actually sliced.  A
    warm incremental re-scan only touches the invalidated
    neighbourhood, so most functions' PDGs are never built at all.
    """

    def __init__(self, unit: A.TranslationUnit):
        self._defs = {fn.name: fn for fn in unit.functions}
        self._built: dict[str, PDG] = {}

    def __contains__(self, name: object) -> bool:
        return name in self._defs

    def __getitem__(self, name: str) -> PDG:
        pdg = self._built.get(name)
        if pdg is None:
            pdg = build_pdg(self._defs[name])
            self._built[name] = pdg
        return pdg

    def __iter__(self) -> Iterator[str]:
        return iter(self._defs)

    def __len__(self) -> int:
        return len(self._defs)

    def built_names(self) -> list[str]:
        """Functions whose PDG has been materialized (diagnostics)."""
        return sorted(self._built)


class LazyCallGraph(CallGraph):
    """Call graph whose :class:`CallSite` lists materialize on demand.

    Edges (``callers`` / ``callees`` / ``calls`` / reachability) come
    from :func:`ast_call_edges` at construction time — a safe superset
    of the PDG-derived edges, built without any PDG.  Site queries
    (``sites_in`` / ``sites_calling`` / ``sites_among``) materialize
    the PDG-derived sites per caller, in the same per-caller blocks
    and within-caller order the eager :func:`analyze` produces, so a
    slice computed against a lazy graph visits functions in exactly
    the eager order — the byte-parity property the incremental
    extraction path pins.
    """

    def __init__(self, unit: A.TranslationUnit, pdgs: _LazyPDGMap):
        super().__init__()
        self._order = [fn.name for fn in unit.functions]
        self._defined = set(self._order)
        self._pdgs = pdgs
        self._site_cache: dict[str, list[CallSite]] = {}
        for name in self._order:
            self.add_function(name)
        for caller, callees in ast_call_edges(unit).items():
            for callee in callees:
                self.graph.add_edge(caller, callee)

    def _sites_of(self, caller: str) -> list[CallSite]:
        cached = self._site_cache.get(caller)
        if cached is None:
            pdg = self._pdgs[caller]
            cached = [CallSite(caller, callee, node.id, node.line)
                      for callee, nodes in pdg.calls_made().items()
                      if callee in self._defined
                      for node in nodes]
            self._site_cache[caller] = cached
        return cached

    def sites_in(self, caller: str) -> list[CallSite]:
        if caller not in self._defined:
            return []
        return list(self._sites_of(caller))

    def sites_calling(self, callee: str) -> list[CallSite]:
        out: list[CallSite] = []
        for caller in self._order:
            # AST edges over-approximate, so this only ever *builds*
            # a PDG the eager path would have consulted anyway; a
            # false edge just yields no matching sites below.
            if self.graph.has_edge(caller, callee):
                out.extend(s for s in self._sites_of(caller)
                           if s.callee == callee)
        return out

    def sites_among(self, names: Iterable[str]) -> list[CallSite]:
        wanted = set(names)
        out: list[CallSite] = []
        for caller in self._order:
            if caller not in wanted:
                continue
            if not any(callee in wanted
                       for callee in self.graph.successors(caller)):
                continue
            out.extend(s for s in self._sites_of(caller)
                       if s.callee in wanted)
        return out


@dataclass
class AnalyzedProgram:
    """Parsed + analyzed program: AST, per-function PDGs, call graph."""

    source: SourceFile
    unit: A.TranslationUnit
    pdgs: dict[str, PDG] = field(default_factory=dict)
    call_graph: CallGraph = field(default_factory=CallGraph)

    @property
    def function_names(self) -> list[str]:
        return [f.name for f in self.unit.functions]

    def pdg(self, name: str) -> PDG:
        return self.pdgs[name]

    def functions_of_line(self, line: int) -> list[str]:
        """*All* functions whose span covers ``line``, in source order.

        Function spans run from the signature line to the closing
        brace, and adjacent functions can share a boundary line
        (``} int next(void) {``) — a diff hunk touching that line must
        invalidate both, which is why the incremental-scanning frontier
        maps hunks through this (and not the single-winner
        :meth:`function_of_line`).
        """
        owners: list[str] = []
        for fn in self.unit.functions:
            end = fn.body.end_line or fn.line
            if fn.line <= line <= end:
                owners.append(fn.name)
        return owners

    def function_of_line(self, line: int) -> str | None:
        """Name of the function whose body spans ``line``.

        On a boundary line shared by two functions (one's closing
        brace, the next one's signature) the function that *starts*
        there wins: any code on that line after the brace belongs to
        it.  Previously the earlier function shadowed the later one,
        which mis-attributed statements on shared lines.
        """
        owners = self.functions_of_line(line)
        return owners[-1] if owners else None

    def node_at(self, function: str, line: int) -> CFGNode | None:
        """First statement node on ``line`` of ``function``."""
        nodes = self.pdgs[function].nodes_on_line(line)
        return nodes[0] if nodes else None

    def statement_text(self, line: int) -> str:
        return self.source.line(line).strip()


def analyze(source_text: str, path: str = "<memory>", *,
            lazy: bool = False) -> AnalyzedProgram:
    """Parse and fully analyze C source text.

    Builds a PDG per function and the call graph between functions that
    are defined in the same translation unit.

    With ``lazy=True`` only the parse happens up front: PDGs build on
    first access (via ``program.pdgs[...]`` / ``program.pdg``) and the
    call graph materializes its sites per caller on demand, in eager
    order.  Slices computed either way are identical; lazy analysis
    is what lets an incremental re-scan of a large file pay only for
    its invalidated neighbourhood.
    """
    unit = parse(source_text)
    if lazy:
        pdgs = _LazyPDGMap(unit)
        return AnalyzedProgram(SourceFile(path, source_text), unit,
                               pdgs=pdgs,
                               call_graph=LazyCallGraph(unit, pdgs))
    program = AnalyzedProgram(SourceFile(path, source_text), unit)
    defined = {f.name for f in unit.functions}
    for fn in unit.functions:
        pdg = build_pdg(fn)
        program.pdgs[fn.name] = pdg
        program.call_graph.add_function(fn.name)
    for fn in unit.functions:
        pdg = program.pdgs[fn.name]
        for callee, nodes in pdg.calls_made().items():
            if callee in defined:
                for node in nodes:
                    program.call_graph.add_call(
                        CallSite(fn.name, callee, node.id, node.line))
    return program
