"""Model parameter persistence (npz archives).

All writes are atomic: the archive is assembled in a sibling temp file
that is renamed over the destination, so a crash mid-save (or two
processes racing on the same path) leaves either the old complete file
or the new complete file — never a torn archive.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np

from .dtype import get_default_dtype
from .layers import Module

__all__ = ["save_npz_atomic", "save_model", "load_model"]

#: Key style of archives written before parameters had names:
#: ``param0`` .. ``paramN`` in :meth:`Module.parameters` order.
_LEGACY_KEY = re.compile(r"^param\d+$")


def save_npz_atomic(path: str | Path, arrays: dict,
                    metadata: dict | None = None) -> None:
    """Write an ``.npz`` of ``arrays`` (+ JSON metadata) atomically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(arrays)
    if metadata is not None:
        payload["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8)
    temp = path.with_name(path.name + ".tmp")
    # savez appends '.npz' to bare names but honors open file handles,
    # which also lets the rename target keep its exact spelling
    with temp.open("wb") as handle:
        np.savez(handle, **payload)
    temp.replace(path)


def save_model(model: Module, path: str | Path,
               metadata: dict | None = None) -> None:
    """Save all parameters (and optional JSON metadata) to ``path``."""
    save_npz_atomic(path, model.state_dict(), metadata)


def load_model(model: Module, path: str | Path) -> dict:
    """Load parameters into ``model``; returns saved metadata (or {}).

    Archives written by :func:`save_model` are keyed by dotted
    parameter names (``fc1.weight``).  Older archives keyed
    positionally (``param0`` .. ``paramN``) still load: the arrays are
    assigned to :meth:`Module.parameters` in order, which is exactly
    how they were written.
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata = {}
        state = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(archive[key].tobytes().decode())
            else:
                state[key] = archive[key]
    if state and all(_LEGACY_KEY.match(key) for key in state):
        _load_legacy_state(model, state, path)
    else:
        model.load_state_dict(state)
    return metadata


def _load_legacy_state(model: Module, state: dict, path: Path) -> None:
    params = list(model.parameters())
    if len(state) != len(params):
        raise ValueError(
            f"legacy archive {path} holds {len(state)} parameter "
            f"arrays but the model has {len(params)}")
    for index, param in enumerate(params):
        key = f"param{index}"
        if key not in state:
            raise KeyError(f"legacy archive {path} missing {key}")
        array = np.asarray(state[key], dtype=get_default_dtype())
        if array.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: "
                f"{array.shape} vs {param.data.shape}")
        param.data = array.copy()
