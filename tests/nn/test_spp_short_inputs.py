"""SPP behavior on inputs shorter than the largest bin (audit pin).

The paper's pyramid is (4, 2, 1); a sliced gadget can legally be 1-3
tokens after normalization, making the feature map shorter than the
widest bin level.  These tests pin the adaptive-bounds contract for
that regime: spans may overlap / repeat elements but are never empty,
forward output keeps its fixed width, and gradients stay finite and
match numerical differentiation.
"""

import numpy as np
import pytest

from repro.nn import SpatialPyramidPooling1d, Tensor
from repro.nn.ops import (_adaptive_bounds, adaptive_avg_pool1d,
                          adaptive_max_pool1d)

PYRAMID = (4, 2, 1)


class TestAdaptiveBounds:
    @pytest.mark.parametrize("length", range(1, 10))
    @pytest.mark.parametrize("bins", [1, 2, 4, 7])
    def test_spans_never_empty_and_in_range(self, length, bins):
        bounds = _adaptive_bounds(length, bins)
        assert len(bounds) == bins
        for start, end in bounds:
            assert 0 <= start < end <= length

    @pytest.mark.parametrize("bins", [1, 2, 4])
    def test_long_inputs_partition_exactly(self, bins):
        # When length >= bins the spans tile [0, length) with no gaps
        # (the PyTorch adaptive rule).
        for length in range(bins, 4 * bins):
            bounds = _adaptive_bounds(length, bins)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == length
            covered = set()
            for start, end in bounds:
                covered.update(range(start, end))
            assert covered == set(range(length))

    def test_length_one_repeats_the_single_element(self):
        assert _adaptive_bounds(1, 4) == [(0, 1)] * 4

    def test_non_positive_length_raises(self):
        with pytest.raises(ValueError, match="length >= 1"):
            _adaptive_bounds(0, 4)


class TestShortForward:
    @pytest.mark.parametrize("length", [1, 2, 3])
    @pytest.mark.parametrize("mode", ["max", "avg"])
    def test_output_width_fixed(self, length, mode):
        spp = SpatialPyramidPooling1d(bins=PYRAMID, mode=mode)
        x = Tensor(np.random.default_rng(length).normal(
            size=(2, 3, length)))
        out = spp(x)
        assert out.shape == (2, spp.output_features(3))
        assert np.isfinite(out.data).all()

    def test_length_one_max_broadcasts_the_element(self):
        # With one position, every bin of every level sees that same
        # element: the output is the input value tiled sum(bins) times.
        spp = SpatialPyramidPooling1d(bins=PYRAMID)
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3, 1))
        out = spp(x)
        expected = np.tile(x.data[:, :, 0], (1, sum(PYRAMID)))
        # Layout is per-level (B, C*bin) blocks; compare as sets per
        # channel instead of assuming an ordering.
        assert sorted(out.data[0].tolist()) == \
            sorted(expected[0].tolist())

    @pytest.mark.parametrize("length", [2, 3])
    def test_short_max_pool_uses_real_elements(self, length):
        x = Tensor(np.random.default_rng(9).normal(size=(1, 2, length)))
        out = adaptive_max_pool1d(x, 4)
        assert out.shape == (1, 2, 4)
        # Max is taken per channel: every pooled value must be one of
        # that channel's real elements, never padding or garbage.
        for channel in range(2):
            elements = set(x.data[0, channel].tolist())
            assert set(out.data[0, channel].tolist()) <= elements


class TestShortGradients:
    @staticmethod
    def numerical_grad(pool, data, bins, eps=1e-6):
        grad = np.zeros_like(data)
        flat = data.reshape(-1)
        for i in range(flat.size):
            for sign in (1.0, -1.0):
                flat[i] += sign * eps
                out = pool(Tensor(data.copy()), bins)
                grad.reshape(-1)[i] += sign * out.data.sum() / (2 * eps)
                flat[i] -= sign * eps
        return grad

    @pytest.mark.parametrize("length", [1, 2, 3, 5])
    @pytest.mark.parametrize("pool", [adaptive_avg_pool1d])
    def test_avg_gradient_matches_numerical(self, length, pool):
        data = np.random.default_rng(length).normal(
            size=(1, 2, length))
        x = Tensor(data.copy(), requires_grad=True)
        pool(x, 4).sum().backward()
        numeric = self.numerical_grad(pool, data.copy(), 4)
        assert np.allclose(x.grad, numeric, atol=1e-4)

    @pytest.mark.parametrize("length", [1, 2, 3, 5])
    def test_max_gradient_matches_numerical(self, length):
        # Distinct values keep argmax away from ties, where numerical
        # differentiation of max is ill defined.
        data = np.linspace(-1.0, 1.0, 2 * length).reshape(1, 2, length)
        x = Tensor(data.copy(), requires_grad=True)
        adaptive_max_pool1d(x, 4).sum().backward()
        numeric = self.numerical_grad(adaptive_max_pool1d,
                                      data.copy(), 4)
        assert np.allclose(x.grad, numeric, atol=1e-4)

    @pytest.mark.parametrize("length", [1, 2, 3])
    @pytest.mark.parametrize("mode", ["max", "avg"])
    def test_spp_backward_finite_through_pyramid(self, length, mode):
        spp = SpatialPyramidPooling1d(bins=PYRAMID, mode=mode)
        x = Tensor(np.random.default_rng(5).normal(
            size=(2, 3, length)), requires_grad=True)
        spp(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()
        # Overlapping spans mean one element can feed several bins:
        # gradient mass equals total bin count per channel in avg mode.
        if mode == "avg":
            assert np.allclose(x.grad.sum(axis=2),
                               np.full((2, 3), float(sum(PYRAMID))))
