"""Call graph and the whole-program analysis facade.

:class:`AnalyzedProgram` is the single entry point the slicing layer
uses: parse once, build every function's PDG, and expose the call graph
for interprocedural slice assembly (paper Algorithm 1, lines 32-36).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from . import ast_nodes as A
from .cfg import CFGNode
from .parser import parse
from .pdg import PDG, build_pdg
from .source import SourceFile

__all__ = ["CallSite", "CallGraph", "AnalyzedProgram", "analyze"]


@dataclass(frozen=True)
class CallSite:
    """One syntactic call from ``caller`` to ``callee``."""

    caller: str
    callee: str
    node_id: int  # CFG node id inside the caller
    line: int


class CallGraph:
    """Static call graph over function names defined in one program."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.sites: list[CallSite] = []

    def add_function(self, name: str) -> None:
        self.graph.add_node(name)

    def add_call(self, site: CallSite) -> None:
        self.sites.append(site)
        self.graph.add_edge(site.caller, site.callee)

    def callees(self, name: str) -> set[str]:
        return set(self.graph.successors(name)) if name in self.graph else set()

    def callers(self, name: str) -> set[str]:
        return set(self.graph.predecessors(name)) if name in self.graph \
            else set()

    def sites_in(self, caller: str) -> list[CallSite]:
        return [s for s in self.sites if s.caller == caller]

    def sites_calling(self, callee: str) -> list[CallSite]:
        return [s for s in self.sites if s.callee == callee]

    def calls(self, caller: str, callee: str) -> bool:
        return self.graph.has_edge(caller, callee)


@dataclass
class AnalyzedProgram:
    """Parsed + analyzed program: AST, per-function PDGs, call graph."""

    source: SourceFile
    unit: A.TranslationUnit
    pdgs: dict[str, PDG] = field(default_factory=dict)
    call_graph: CallGraph = field(default_factory=CallGraph)

    @property
    def function_names(self) -> list[str]:
        return [f.name for f in self.unit.functions]

    def pdg(self, name: str) -> PDG:
        return self.pdgs[name]

    def function_of_line(self, line: int) -> str | None:
        """Name of the function whose body spans ``line``."""
        for fn in self.unit.functions:
            end = fn.body.end_line or fn.line
            if fn.line <= line <= end:
                return fn.name
        return None

    def node_at(self, function: str, line: int) -> CFGNode | None:
        """First statement node on ``line`` of ``function``."""
        nodes = self.pdgs[function].nodes_on_line(line)
        return nodes[0] if nodes else None

    def statement_text(self, line: int) -> str:
        return self.source.line(line).strip()


def analyze(source_text: str, path: str = "<memory>") -> AnalyzedProgram:
    """Parse and fully analyze C source text.

    Builds a PDG per function and the call graph between functions that
    are defined in the same translation unit.
    """
    unit = parse(source_text)
    program = AnalyzedProgram(SourceFile(path, source_text), unit)
    defined = {f.name for f in unit.functions}
    for fn in unit.functions:
        pdg = build_pdg(fn)
        program.pdgs[fn.name] = pdg
        program.call_graph.add_function(fn.name)
    for fn in unit.functions:
        pdg = program.pdgs[fn.name]
        for callee, nodes in pdg.calls_made().items():
            if callee in defined:
                for node in nodes:
                    program.call_graph.add_call(
                        CallSite(fn.name, callee, node.id, node.line))
    return program
