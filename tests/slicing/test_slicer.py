"""Tests for forward/backward interprocedural slicing."""

from repro.lang.callgraph import analyze
from repro.slicing.slicer import compute_slice
from repro.slicing.special_tokens import (SlicingCriterion, TokenCategory,
                                          find_special_tokens)


def slice_for(source, token, line=None, **kwargs):
    program = analyze(source)
    crits = [c for c in find_special_tokens(program)
             if c.token == token and (line is None or c.line == line)]
    assert crits, f"no criterion for {token}"
    return program, compute_slice(program, crits[0], **kwargs)


INTRA = """\
void f(char *data, int n) {
    char dest[8];
    int unrelated = 42;
    int len = n;
    if (len < 8) {
        strncpy(dest, data, len);
    }
    printf("%d", unrelated);
}
"""


class TestIntraprocedural:
    def test_backward_includes_definitions(self):
        program, result = slice_for(INTRA, "strncpy")
        lines = result.lines(program)["f"]
        assert {2, 4, 6} <= lines

    def test_guard_included_with_control(self):
        program, result = slice_for(INTRA, "strncpy", use_control=True)
        assert 5 in result.lines(program)["f"]

    def test_guard_excluded_without_control(self):
        program, result = slice_for(INTRA, "strncpy", use_control=False)
        assert 5 not in result.lines(program)["f"]

    def test_unrelated_statement_excluded(self):
        program, result = slice_for(INTRA, "strncpy")
        assert 3 not in result.lines(program)["f"]

    def test_forward_part_includes_uses(self):
        source = ("void f(char *data) {\nint n = strlen(data);\n"
                  "int m = n + 1;\nprintf(\"%d\", m);\n}")
        program, result = slice_for(source, "strlen")
        lines = result.lines(program)["f"]
        assert {2, 3, 4} <= lines

    def test_total_nodes_counts(self):
        program, result = slice_for(INTRA, "strncpy")
        assert result.total_nodes() == \
            sum(len(v) for v in result.nodes.values())


INTER = """\
void sink(char *buf, int len) {
    char dest[8];
    strncpy(dest, buf, len);
}

void source_fn(char *input) {
    int len = strlen(input);
    sink(input, len);
}

int main() {
    char line[32];
    fgets(line, 32, 0);
    source_fn(line);
    return 0;
}
"""


class TestInterprocedural:
    def test_backward_reaches_callers(self):
        program, result = slice_for(INTER, "strncpy")
        assert "source_fn" in result.nodes
        assert "main" in result.nodes

    def test_caller_lines_relevant(self):
        program, result = slice_for(INTER, "strncpy")
        lines = result.lines(program)
        assert 8 in lines["source_fn"]   # the call to sink
        assert 14 in lines["main"]       # the call to source_fn

    def test_interprocedural_disabled(self):
        program, result = slice_for(INTER, "strncpy",
                                    interprocedural=False)
        assert set(result.nodes) == {"sink"}

    def test_forward_descends_into_callee(self):
        # Criterion in source_fn; sink's body should join forward.
        program = analyze(INTER)
        crits = [c for c in find_special_tokens(program)
                 if c.token == "strlen"]
        result = compute_slice(program, crits[0])
        assert "sink" in result.nodes

    def test_missing_function_yields_empty_slice(self):
        program = analyze(INTER)
        ghost = SlicingCriterion("ghost", 1,
                                 TokenCategory.FUNCTION_CALL, "strcpy")
        result = compute_slice(program, ghost)
        assert result.nodes == {}

    def test_max_functions_cap(self):
        program, result = slice_for(INTER, "strncpy", max_functions=1)
        assert set(result.nodes) == {"sink"}
