"""Gadget-dataset persistence (JSON-lines).

Extracting and normalizing gadgets from a large corpus is the slowest
non-training stage; this store saves the labelled token streams so
experiments can reload them instead of re-slicing.  The format is
line-oriented JSON — append-friendly, diff-able, and independent of the
in-memory classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ..slicing.special_tokens import SlicingCriterion, TokenCategory
from .extract import LabeledGadget

__all__ = ["save_gadgets", "load_gadgets", "iter_gadgets"]

_FORMAT_VERSION = 1


def _to_record(gadget: LabeledGadget) -> dict:
    return {
        "v": _FORMAT_VERSION,
        "tokens": list(gadget.tokens),
        "label": gadget.label,
        "category": gadget.category,
        "case": gadget.case_name,
        "kind": gadget.kind,
        "cwe": gadget.cwe,
        "criterion": {
            "function": gadget.criterion.function,
            "line": gadget.criterion.line,
            "category": gadget.criterion.category.value,
            "token": gadget.criterion.token,
        },
    }


def _from_record(record: dict) -> LabeledGadget:
    if record.get("v") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported gadget record version {record.get('v')!r}")
    criterion_data = record["criterion"]
    criterion = SlicingCriterion(
        function=criterion_data["function"],
        line=int(criterion_data["line"]),
        category=TokenCategory(criterion_data["category"]),
        token=criterion_data["token"],
    )
    return LabeledGadget(
        tokens=tuple(record["tokens"]),
        label=int(record["label"]),
        category=record["category"],
        case_name=record["case"],
        criterion=criterion,
        kind=record["kind"],
        cwe=record.get("cwe", ""),
    )


def save_gadgets(gadgets: Sequence[LabeledGadget],
                 path: str | Path, *, atomic: bool = False) -> int:
    """Write gadgets to a .jsonl file; returns the record count.

    With ``atomic`` the records go to a sibling temp file that is
    renamed over ``path`` at the end, so concurrent readers (and other
    writers racing on the same path, e.g. parallel extraction caches)
    never observe a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    target = path.with_name(path.name + ".tmp") if atomic else path
    with target.open("w") as handle:
        for gadget in gadgets:
            handle.write(json.dumps(_to_record(gadget),
                                    separators=(",", ":")) + "\n")
    if atomic:
        target.replace(path)
    return len(gadgets)


def iter_gadgets(path: str | Path) -> Iterable[LabeledGadget]:
    """Stream gadgets from a .jsonl file (constant memory)."""
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: bad JSON") from error
            yield _from_record(record)


def load_gadgets(path: str | Path) -> list[LabeledGadget]:
    """Load all gadgets from a .jsonl file."""
    return list(iter_gadgets(path))
