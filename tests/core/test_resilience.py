"""Fault-injected tests for the extraction resilience layer.

The contract: one pathological case (hang, crash, recursion blow-up,
corrupt cache shard) costs at most its own result.  Every surviving
case's gadgets are byte-identical to a fully-serial, fault-free run,
every recovery step shows up in telemetry, and poison cases land in
the persistent quarantine so later runs skip them for pennies.
"""

import json
import logging
import time

import numpy as np
import pytest

from repro.core.cache import GadgetCache
from repro.core.detector import SEVulDet
from repro.core.config import Scale
from repro.core.pipeline import extract_gadgets
from repro.core.resilience import (CaseTimeout, Quarantine, time_limit)
from repro.core.telemetry import Telemetry
from repro.datasets.sard import generate_sard_corpus
from repro.testing import faults

TINY = Scale("tiny", cases_per_experiment=10, dim=8, channels=8,
             hidden=8, epochs=2, batch_size=8, time_steps=16,
             w2v_epochs=1)


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(10, seed=33)


@pytest.fixture(scope="module")
def serial(corpus):
    return extract_gadgets(corpus)


def extract_without(corpus, victim_name):
    return extract_gadgets(
        [case for case in corpus if case.name != victim_name])


class TestTimeLimit:
    def test_cuts_off_a_sleep(self):
        with pytest.raises(CaseTimeout):
            with time_limit(0.1):
                time.sleep(5)

    def test_none_and_zero_disable_the_budget(self):
        with time_limit(None):
            pass
        with time_limit(0):
            pass

    def test_timer_cleared_after_the_block(self):
        with time_limit(0.2):
            pass
        time.sleep(0.3)  # must not blow up after the block exits


class TestQuarantineUnit:
    def test_add_contains_reload(self, corpus, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        quarantine = Quarantine(path)
        assert corpus[0] not in quarantine
        assert quarantine.add(corpus[0], "timeout", "budget 0.5s")
        assert not quarantine.add(corpus[0], "timeout")  # dedup
        assert corpus[0] in quarantine
        assert corpus[1] not in quarantine
        # a fresh instance reloads from disk
        reloaded = Quarantine(path)
        assert corpus[0] in reloaded
        assert len(reloaded) == 1
        record = reloaded.records()[0]
        assert record["name"] == corpus[0].name
        assert record["reason"] == "timeout"

    def test_corrupt_lines_are_tolerated(self, corpus, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        quarantine = Quarantine(path)
        quarantine.add(corpus[0], "timeout")
        with path.open("a") as handle:
            handle.write("{torn json\n")
            handle.write("42\n")
        reloaded = Quarantine(path)
        assert corpus[0] in reloaded
        assert len(reloaded) == 1

    def test_corrupt_lines_warn_on_load(self, corpus, tmp_path,
                                        caplog):
        path = tmp_path / "quarantine.jsonl"
        Quarantine(path).add(corpus[0], "timeout")
        with path.open("a") as handle:
            handle.write("{torn json\n")
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.resilience"):
            assert corpus[0] in Quarantine(path)
        assert "corrupt quarantine line" in caplog.text

    def test_keyed_by_content_not_name(self, corpus, tmp_path):
        quarantine = Quarantine(tmp_path / "q.jsonl")
        quarantine.add(corpus[0], "timeout")
        edited = type(corpus[0])(
            corpus[0].name, corpus[0].source + "\n",
            corpus[0].vulnerable, corpus[0].vulnerable_lines,
            corpus[0].cwe, corpus[0].category, corpus[0].origin)
        assert corpus[0] in quarantine
        assert edited not in quarantine  # new content, new chance


class TestTimeoutAndQuarantine:
    def test_hanging_case_times_out_and_is_quarantined(
            self, corpus, tmp_path):
        victim = corpus[4]
        qpath = tmp_path / "quarantine.jsonl"
        telemetry = Telemetry()
        failures = []
        with faults.injected(f"hang@case:{victim.name}:30"):
            result = extract_gadgets(
                corpus, case_timeout=0.5, quarantine=qpath,
                telemetry=telemetry, failures=failures)
        assert result == extract_without(corpus, victim.name)
        assert telemetry.get("case_timeouts") == 1
        assert telemetry.get("skip_timeout") == 1
        assert telemetry.get("quarantined_cases") == 1
        assert [f.reason for f in failures] == ["timeout"]
        assert failures[0].case_name == victim.name
        assert failures[0].quarantined
        assert any(event["kind"] == "case-skip"
                   and event["reason"] == "timeout"
                   for event in telemetry.events)
        assert victim in Quarantine(qpath)

    def test_quarantined_case_is_skipped_cheaply_next_run(
            self, corpus, tmp_path):
        victim = corpus[4]
        qpath = tmp_path / "quarantine.jsonl"
        Quarantine(qpath).add(victim, "timeout")
        telemetry = Telemetry()
        failures = []
        result = extract_gadgets(corpus, quarantine=qpath,
                                 telemetry=telemetry,
                                 failures=failures)
        assert result == extract_without(corpus, victim.name)
        assert telemetry.get("quarantine_skips") == 1
        # the poison case never reached the frontend
        assert telemetry.calls("analyze") == len(corpus) - 1
        assert [f.reason for f in failures] == ["quarantined"]
        assert failures[0].attempts == 0

    def test_hang_in_a_pool_worker_times_out_too(self, corpus,
                                                 tmp_path):
        victim = corpus[6]
        telemetry = Telemetry()
        with faults.injected(f"hang@case:{victim.name}:30"):
            result = extract_gadgets(corpus, workers=2,
                                     case_timeout=0.5,
                                     quarantine=tmp_path / "q.jsonl",
                                     telemetry=telemetry)
        assert result == extract_without(corpus, victim.name)
        assert telemetry.get("case_timeouts") == 1


class TestWorkerCrash:
    def test_crashed_worker_retries_inline_byte_identical(
            self, corpus, serial):
        victim = corpus[2]
        telemetry = Telemetry()
        failures = []
        with faults.injected(f"crash@case:{victim.name}"):
            result = extract_gadgets(corpus, workers=2,
                                     telemetry=telemetry,
                                     failures=failures)
        # full recovery: nothing lost, ordering untouched
        assert result == serial
        assert failures == []
        assert telemetry.get("pool_breaks") == 1
        assert telemetry.get("case_retries") >= 1
        assert any(event["kind"] == "inline-fallback"
                   for event in telemetry.events)

    def test_retries_zero_records_structured_failures(
            self, corpus, serial, tmp_path):
        victim = corpus[2]
        telemetry = Telemetry()
        failures = []
        qpath = tmp_path / "q.jsonl"
        with faults.injected(f"crash@case:{victim.name}"):
            result = extract_gadgets(corpus, workers=2, retries=0,
                                     quarantine=qpath,
                                     telemetry=telemetry,
                                     failures=failures)
        assert failures
        assert all(f.reason == "worker-crash" for f in failures)
        lost = {f.case_name for f in failures}
        assert victim.name in lost
        survivors = [g for g in serial if g.case_name not in lost]
        assert [g.case_name for g in result] == \
            [g.case_name for g in survivors]
        # pool breakage cannot name the guilty case, so nobody is
        # quarantined on its account
        assert len(Quarantine(qpath)) == 0


class TestWidenedBoundary:
    def test_recursion_error_skips_only_that_case(self, corpus,
                                                  caplog):
        victim = corpus[1]
        telemetry = Telemetry()
        failures = []
        with faults.injected(
                f"raise@case:{victim.name}:RecursionError"):
            with caplog.at_level(logging.WARNING,
                                 logger="repro.core.pipeline"):
                result = extract_gadgets(corpus, telemetry=telemetry,
                                         failures=failures)
        assert result == extract_without(corpus, victim.name)
        assert telemetry.get("cases_skipped") == 1
        assert telemetry.get("skip_recursion") == 1
        assert [f.reason for f in failures] == ["recursion"]
        assert any(victim.name in record.getMessage()
                   for record in caplog.records)

    def test_memory_error_is_quarantined(self, corpus, tmp_path):
        victim = corpus[3]
        qpath = tmp_path / "q.jsonl"
        failures = []
        with faults.injected(f"raise@case:{victim.name}:MemoryError"):
            result = extract_gadgets(corpus, quarantine=qpath,
                                     failures=failures)
        assert result == extract_without(corpus, victim.name)
        assert failures[0].reason == "memory"
        assert failures[0].quarantined
        assert victim in Quarantine(qpath)

    def test_parse_error_not_quarantined(self, tmp_path):
        from repro.datasets.manifest import TestCase
        broken = TestCase("broken.c", "not C at all {{{", False,
                          frozenset(), "", "FC")
        qpath = tmp_path / "q.jsonl"
        failures = []
        extract_gadgets([broken], quarantine=qpath, failures=failures)
        assert failures[0].reason == "parse-error"
        assert not failures[0].quarantined
        assert len(Quarantine(qpath)) == 0


class TestCorruptShard:
    def test_corrupted_shards_degrade_to_misses(self, corpus, serial,
                                                tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        with faults.injected("corrupt@shard:*"):
            first = extract_gadgets(corpus, cache=cache)
        assert first == serial
        telemetry = Telemetry()
        second = extract_gadgets(corpus, cache=cache,
                                 telemetry=telemetry)
        assert second == serial
        assert telemetry.get("cache_misses") == len(corpus)
        assert telemetry.get("cache_hits") == 0


class TestCacheRaces:
    def test_clear_tolerates_concurrently_unlinked_shards(
            self, corpus, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        extract_gadgets(corpus, cache=cache)
        shards = sorted(cache.root.glob("*/*.jsonl"))
        shards[0].unlink()  # somebody else got there first
        assert cache.clear() == len(shards) - 1
        assert len(cache) == 0

    def test_clear_prunes_empty_fanout_directories(self, corpus,
                                                   tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        extract_gadgets(corpus, cache=cache)
        assert any(cache.root.iterdir())
        cache.clear()
        assert not any(cache.root.iterdir())

    def test_len_of_vanished_root(self, tmp_path):
        cache = GadgetCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert cache.clear() == 0


class TestLoadValidation:
    @pytest.fixture(scope="class")
    def saved_model(self, tmp_path_factory):
        detector = SEVulDet(scale=TINY, seed=1)
        detector.fit(generate_sard_corpus(10, seed=5))
        path = tmp_path_factory.mktemp("model") / "model.npz"
        detector.save(path)
        return path

    @staticmethod
    def _tamper(path, out, **metadata_updates):
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files
                      if key != "__metadata__"}
            metadata = json.loads(
                archive["__metadata__"].tobytes().decode())
        metadata.update(metadata_updates)
        arrays["__metadata__"] = np.frombuffer(
            json.dumps(metadata).encode(), dtype=np.uint8)
        np.savez(out, **arrays)

    def test_roundtrip_still_loads(self, saved_model):
        detector = SEVulDet(scale=TINY)
        detector.load(saved_model)
        assert detector.model is not None

    def test_pipeline_version_mismatch_is_named(self, saved_model,
                                                tmp_path):
        stale = tmp_path / "stale.npz"
        self._tamper(saved_model, stale, pipeline_version=1)
        detector = SEVulDet(scale=TINY)
        with pytest.raises(ValueError, match="pipeline_version"):
            detector.load(stale)

    def test_normalize_version_mismatch_is_named(self, saved_model,
                                                 tmp_path):
        stale = tmp_path / "stale.npz"
        self._tamper(saved_model, stale, normalize_version=-1)
        detector = SEVulDet(scale=TINY)
        with pytest.raises(ValueError, match="normalize_version"):
            detector.load(stale)

    def test_vocab_size_mismatch_is_named(self, saved_model,
                                          tmp_path):
        with np.load(saved_model) as archive:
            metadata = json.loads(
                archive["__metadata__"].tobytes().decode())
        broken = tmp_path / "broken.npz"
        self._tamper(saved_model, broken,
                     tokens=metadata["tokens"][:-3])
        detector = SEVulDet(scale=TINY)
        with pytest.raises(ValueError, match="vocabulary"):
            detector.load(broken)


class TestQuarantineRetry:
    """The retry-after-N escape hatch and the --requarantine reset.

    A quarantined case whose failure was environmental (load spike
    tripping the timeout) deserves another chance: with
    ``retry_after=N`` an entry stops matching after N skips, the case
    is retried, and a clean pass *discharges* it from the list.  A
    repeat failure re-quarantines it with a fresh skip budget.  The
    default (``retry_after=None``) keeps the legacy skip-forever
    behavior bit-for-bit.
    """

    def test_entry_expires_after_n_skips(self, corpus, tmp_path):
        quarantine = Quarantine(tmp_path / "q.jsonl", retry_after=2)
        quarantine.add(corpus[0], "timeout")
        assert corpus[0] in quarantine
        quarantine.note_skip(corpus[0])
        assert corpus[0] in quarantine  # 1 of 2 skips spent
        quarantine.note_skip(corpus[0])
        assert corpus[0] not in quarantine  # budget spent: retry
        assert quarantine.listed(corpus[0])  # but still on the books

    def test_skip_budget_survives_reload(self, corpus, tmp_path):
        path = tmp_path / "q.jsonl"
        quarantine = Quarantine(path, retry_after=2)
        quarantine.add(corpus[0], "timeout")
        quarantine.note_skip(corpus[0])
        reloaded = Quarantine(path, retry_after=2)
        assert corpus[0] in reloaded
        reloaded.note_skip(corpus[0])
        assert corpus[0] not in reloaded

    def test_readd_resets_the_budget(self, corpus, tmp_path):
        quarantine = Quarantine(tmp_path / "q.jsonl", retry_after=1)
        quarantine.add(corpus[0], "timeout")
        quarantine.note_skip(corpus[0])
        assert corpus[0] not in quarantine
        # the retry failed again: re-quarantine with a fresh budget
        assert quarantine.add(corpus[0], "timeout")
        assert corpus[0] in quarantine

    def test_discharge_clears_the_entry(self, corpus, tmp_path):
        path = tmp_path / "q.jsonl"
        quarantine = Quarantine(path, retry_after=1)
        quarantine.add(corpus[0], "timeout")
        quarantine.note_skip(corpus[0])
        assert quarantine.discharge(corpus[0])
        assert not quarantine.listed(corpus[0])
        assert corpus[0] not in quarantine
        # discharge replays from the op log
        reloaded = Quarantine(path, retry_after=1)
        assert not reloaded.listed(corpus[0])
        assert not reloaded.discharge(corpus[0])  # already gone

    def test_default_is_skip_forever(self, corpus, tmp_path):
        quarantine = Quarantine(tmp_path / "q.jsonl")
        quarantine.add(corpus[0], "timeout")
        for _ in range(50):
            quarantine.note_skip(corpus[0])
        assert corpus[0] in quarantine

    def test_reset_truncates(self, corpus, tmp_path):
        path = tmp_path / "q.jsonl"
        quarantine = Quarantine(path)
        quarantine.add(corpus[0], "timeout")
        quarantine.add(corpus[1], "crash")
        assert quarantine.reset() == 2
        assert len(quarantine) == 0
        assert corpus[0] not in quarantine
        assert path.read_text() == ""
        assert len(Quarantine(path)) == 0

    def test_retried_case_that_recovers_is_discharged(
            self, corpus, tmp_path):
        victim = corpus[4]
        path = tmp_path / "q.jsonl"
        quarantine = Quarantine(path, retry_after=1)
        quarantine.add(victim, "timeout", "budget 0.5s")
        # run 1: still quarantined -> skipped, burning the budget
        telemetry = Telemetry()
        result = extract_gadgets(corpus, quarantine=quarantine,
                                 telemetry=telemetry)
        assert result == extract_without(corpus, victim.name)
        assert telemetry.get("quarantine_skips") == 1
        # run 2: budget spent -> retried; the hang was environmental
        # and is gone, so the case extracts and is discharged
        telemetry = Telemetry()
        result = extract_gadgets(corpus, quarantine=quarantine,
                                 telemetry=telemetry)
        assert result == extract_gadgets(corpus)
        assert telemetry.get("quarantine_skips") in (None, 0)
        assert telemetry.get("quarantine_discharges") == 1
        assert not Quarantine(path).listed(victim)

    def test_retried_case_that_still_hangs_is_requarantined(
            self, corpus, tmp_path):
        victim = corpus[4]
        path = tmp_path / "q.jsonl"
        quarantine = Quarantine(path, retry_after=1)
        quarantine.add(victim, "timeout")
        quarantine.note_skip(victim)  # budget spent: next run retries
        telemetry = Telemetry()
        with faults.injected(f"hang@case:{victim.name}:30"):
            result = extract_gadgets(corpus, case_timeout=0.5,
                                     quarantine=quarantine,
                                     telemetry=telemetry)
        assert result == extract_without(corpus, victim.name)
        assert telemetry.get("case_timeouts") == 1
        assert telemetry.get("quarantined_cases") == 1
        # fresh budget: the immediate next run skips it again
        reloaded = Quarantine(path, retry_after=1)
        assert victim in reloaded
