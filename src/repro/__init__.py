"""repro — reproduction of SEVulDet (DSN 2022).

Semantics-Enhanced learnable Vulnerability Detector: path-sensitive
code gadgets (Algorithm 1) feeding a flexible-length CNN with token
attention, CBAM, and spatial pyramid pooling — plus every substrate the
paper's evaluation depends on (C frontend, numpy DL framework,
synthetic SARD/NVD/Xen corpora, classical-tool and fuzzing baselines).

Quickstart::

    from repro import SEVulDet, generate_sard_corpus

    detector = SEVulDet()
    detector.fit(generate_sard_corpus(200, seed=1))
    findings = detector.detect(open("target.c").read(), path="target.c")
"""

from .core.detector import Finding, SEVulDet
from .core.config import SCALE_PRESETS, Scale, current_scale
from .datasets import (CVE_CASES, TestCase, generate_nvd_corpus,
                       generate_sard_corpus, generate_xen_corpus)
from .eval import FRAMEWORKS, Metrics, evaluate_static_tool, train_and_evaluate

__version__ = "1.0.0"

__all__ = [
    "Finding", "SEVulDet",
    "SCALE_PRESETS", "Scale", "current_scale",
    "CVE_CASES", "TestCase", "generate_nvd_corpus",
    "generate_sard_corpus", "generate_xen_corpus",
    "FRAMEWORKS", "Metrics", "evaluate_static_tool", "train_and_evaluate",
    "__version__",
]
