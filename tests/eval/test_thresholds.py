"""Tests for ROC / threshold-sweep analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.thresholds import (best_f1_threshold,
                                   precision_recall_points, roc_auc,
                                   roc_points, sweep_thresholds,
                                   threshold_for_fpr)

PERFECT_SCORES = [0.9, 0.8, 0.2, 0.1]
PERFECT_LABELS = [1, 1, 0, 0]


class TestROC:
    def test_perfect_separation_auc_one(self):
        assert roc_auc(PERFECT_SCORES, PERFECT_LABELS) == 1.0

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, size=4000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_inverted_scores_auc_zero(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_points_monotone_in_fpr(self):
        rng = np.random.default_rng(1)
        scores = rng.random(100)
        labels = rng.integers(0, 2, size=100)
        points = roc_points(scores, labels)
        fprs = [fpr for fpr, _ in points]
        assert fprs == sorted(fprs)

    def test_endpoints_present(self):
        points = roc_points(PERFECT_SCORES, PERFECT_LABELS)
        assert (0.0, 0.0) in points
        assert (1.0, 1.0) in points

    def test_mismatched_inputs_raise(self):
        with pytest.raises(ValueError):
            roc_points([0.5], [1, 0])
        with pytest.raises(ValueError):
            roc_points([], [])

    @given(st.lists(st.tuples(st.floats(0, 1), st.integers(0, 1)),
                    min_size=2, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_auc_in_unit_interval(self, pairs):
        scores = [s for s, _ in pairs]
        labels = [l for _, l in pairs]
        assert 0.0 <= roc_auc(scores, labels) <= 1.0


class TestSweeps:
    def test_sweep_covers_grid(self):
        points = sweep_thresholds(PERFECT_SCORES, PERFECT_LABELS)
        assert len(points) == 19
        thresholds = [p.threshold for p in points]
        assert thresholds == sorted(thresholds)

    def test_best_f1_on_separable_data(self):
        best = best_f1_threshold(PERFECT_SCORES, PERFECT_LABELS)
        assert best.metrics.f1 == 1.0
        assert 0.2 < best.threshold <= 0.8

    def test_threshold_for_fpr_budget(self):
        point = threshold_for_fpr(PERFECT_SCORES, PERFECT_LABELS,
                                  max_fpr=0.0)
        assert point.metrics.fpr == 0.0
        assert point.metrics.fnr == 0.0  # separable data

    def test_threshold_for_fpr_impossible(self):
        with pytest.raises(ValueError):
            threshold_for_fpr(PERFECT_SCORES, PERFECT_LABELS,
                              max_fpr=-0.1)

    def test_precision_recall_points(self):
        points = precision_recall_points(PERFECT_SCORES,
                                         PERFECT_LABELS)
        assert (1.0, 1.0) in points  # perfect classifier point

    def test_raising_threshold_never_raises_fpr(self):
        rng = np.random.default_rng(3)
        scores = rng.random(200)
        labels = rng.integers(0, 2, size=200)
        points = sweep_thresholds(scores, labels)
        fprs = [p.metrics.fpr for p in points]
        assert all(a >= b for a, b in zip(fprs, fprs[1:]))
