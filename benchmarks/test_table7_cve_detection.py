"""Table VII — which systems detect the three Xen/QEMU CVEs.

Paper matrix:
* CVE-2016-4453 (vmware_vga loop):   AFL yes, SySeVR yes, SEVulDet yes
* CVE-2016-9104 (9pfs int overflow): AFL NO (magic offset),
                                     VulDeePecker yes, SEVulDet yes
* CVE-2016-9776 (mcf_fec loop):      AFL yes, SEVulDet yes
SEVulDet detects all three — at least one more than any other system.
"""

from repro.baselines.afl import AFLFuzzer
from repro.core.detector import SEVulDet
from repro.core.pipeline import extract_gadgets
from repro.datasets.xen import CVE_CASES

from conftest import run_once

PAPER_MATRIX = {
    "CVE-2016-4453": {"AFL": True, "SEVulDet": True},
    "CVE-2016-9104": {"AFL": False, "SEVulDet": True},
    "CVE-2016-9776": {"AFL": True, "SEVulDet": True},
}


def test_table7_cve_detection_matrix(benchmark, reporter, scale,
                                     train_cases, xen_train_cases):
    def experiment():
        # "Pre-trained" detector: SARD+NVD plus the Xen-flavoured
        # template distribution (the CVE miniatures stay held out).
        detector = SEVulDet(scale=scale, seed=41, threshold=0.5)
        detector.fit(train_cases + xen_train_cases)
        matrix = {}
        for cve, build in CVE_CASES.items():
            case = build(vulnerable=True)
            report = AFLFuzzer(case.source, max_execs=600,
                               max_steps=4000, seed=13).run()
            gadgets = extract_gadgets([case], deduplicate=False)
            scores = detector.score_gadgets(gadgets)
            matrix[cve] = {
                "AFL": report.found_anything,
                "SEVulDet": bool(scores.max() >= detector.threshold),
                "best_score": round(float(scores.max()), 3),
                "afl_execs": report.executions,
            }
        return matrix

    matrix = run_once(benchmark, experiment)

    table = reporter("table7_cve_detection",
                     "Table VII — CVE detection matrix")
    for cve, row in matrix.items():
        table.add(cve=cve, afl=row["AFL"], sevuldet=row["SEVulDet"],
                  sevuldet_best_score=row["best_score"],
                  paper_afl=PAPER_MATRIX[cve]["AFL"],
                  paper_sevuldet=PAPER_MATRIX[cve]["SEVulDet"])
    table.save_and_print()

    # SEVulDet detects all three (the headline of Table VII).
    for cve in CVE_CASES:
        assert matrix[cve]["SEVulDet"], cve

    # AFL finds the two reachable infinite loops but not the
    # magic-offset integer overflow.
    assert matrix["CVE-2016-9776"]["AFL"]
    assert matrix["CVE-2016-4453"]["AFL"]
    assert not matrix["CVE-2016-9104"]["AFL"]
