"""Table IV — hyper-parameters of the three frameworks.

A configuration table, reproduced verbatim from
:mod:`repro.core.config` (which the comparison harness actually uses),
plus a check that the scaled presets preserve each framework's
*relative* characteristics (only SEVulDet is flexible-length, SEVulDet
has the smallest learning rate, VulDeePecker the widest embedding).
"""

from repro.core.config import FRAMEWORK_HYPERPARAMS

from conftest import run_once


def test_table4_hyperparameters(benchmark, reporter):
    def experiment():
        return {name: hp.as_row()
                for name, hp in FRAMEWORK_HYPERPARAMS.items()}

    rows = run_once(benchmark, experiment)

    table = reporter("table4_hyperparams",
                     "Table IV — framework hyper-parameters (paper)")
    for name in ("VulDeePecker", "SySeVR", "SEVulDet"):
        table.add(**rows[name])
    table.save_and_print()

    vuldee = FRAMEWORK_HYPERPARAMS["VulDeePecker"]
    sysevr = FRAMEWORK_HYPERPARAMS["SySeVR"]
    sevuldet = FRAMEWORK_HYPERPARAMS["SEVulDet"]

    # Verbatim paper values.
    assert (vuldee.dimension, vuldee.batch_size, vuldee.learning_rate,
            vuldee.dropout, vuldee.epochs) == (50, 64, 0.001, 0.5, 4)
    assert (sysevr.dimension, sysevr.batch_size, sysevr.learning_rate,
            sysevr.dropout, sysevr.epochs) == (30, 16, 0.002, 0.2, 20)
    assert (sevuldet.dimension, sevuldet.batch_size,
            sevuldet.learning_rate, sevuldet.dropout,
            sevuldet.epochs) == (30, 16, 0.0001, 0.2, 20)

    # Only SEVulDet accepts flexible-length input.
    assert sevuldet.flexible_length
    assert not vuldee.flexible_length and not sysevr.flexible_length
