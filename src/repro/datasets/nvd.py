"""Synthetic NVD corpus: longer, noisier, multi-sink programs.

NVD cases are real-software excerpts — multiple interacting functions,
plenty of statements unrelated to the flaw, and flaws reachable across
function boundaries.  The generator composes 2-3 template bodies into
one translation unit behind a dispatcher, with extra noise, emulating
that "complex semantics in real software" (paper Section IV-B).
"""

from __future__ import annotations

import numpy as np

from .codegen import CodeWriter, NamePool, noise_statements
from .cwe_templates import TEMPLATES, Template
from .manifest import TestCase

__all__ = ["generate_nvd_corpus"]


def _compose_case(templates: list[Template], vulnerable_index: int | None,
                  seed: int, name: str) -> TestCase:
    """Build one multi-sink program.

    Exactly one component (``vulnerable_index``) uses its flaw variant;
    None means an all-patched (non-vulnerable) case.
    """
    rng = np.random.default_rng(seed)
    writer = CodeWriter()
    names = NamePool(rng)
    sink_names: list[str] = []
    categories: list[str] = []
    cwe = ""
    for index, template in enumerate(templates):
        is_vulnerable = index == vulnerable_index
        # Template builders emit their own main(); strip it by building
        # into a scratch writer and copying only the sink functions.
        scratch = CodeWriter()
        template.build(scratch, names, rng, is_vulnerable)
        main_start = next(
            (i for i, line in enumerate(scratch.lines)
             if line.startswith("int main(")), len(scratch.lines))
        offset = len(writer.lines)
        for line in scratch.lines[:main_start]:
            writer.lines.append(line)
        writer.marked.update(mark + offset for mark in scratch.marked
                             if mark <= main_start)
        entry_def = [line for line in scratch.lines[:main_start]
                     if line.startswith("void ")
                     and "(char *data, int n)" in line][-1]
        sink_names.append(entry_def.split()[1].split("(")[0])
        categories.append(template.category)
        if is_vulnerable:
            cwe = template.cwe
        writer.blank()
    dispatch = names.func()
    with writer.block(f"void {dispatch}(char *data, int n)"):
        noise_statements(writer, names, rng, int(rng.integers(1, 4)))
        selector = names.var("route")
        writer.line(f"int {selector} = n % {len(sink_names)};")
        for index, sink in enumerate(sink_names):
            header = f"if ({selector} == {index})" if index == 0 \
                else f"else if ({selector} == {index})"
            with writer.block(header):
                writer.line(f"{sink}(data, n);")
    writer.blank()
    with writer.block("int main()"):
        writer.line("char line[96];")
        writer.line("fgets(line, 96, 0);")
        writer.line("int n = atoi(line);")
        writer.line(f"{dispatch}(line, n);")
        writer.line("return 0;")
    vulnerable = vulnerable_index is not None
    dominant = categories[vulnerable_index] if vulnerable else categories[0]
    return TestCase(
        name=name, source=writer.source(), vulnerable=vulnerable,
        vulnerable_lines=frozenset(writer.marked), cwe=cwe or "CWE-000",
        category=dominant, origin="nvd",
        meta={"templates": [t.name for t in templates]})


def generate_nvd_corpus(count: int, seed: int = 0,
                        vulnerable_fraction: float = 0.55
                        ) -> list[TestCase]:
    """Generate ``count`` NVD-style multi-sink cases.

    The default 55% vulnerable fraction matches the paper's NVD split
    (54.9% with vulnerabilities).
    """
    rng = np.random.default_rng(seed ^ 0x5EED)
    # Sink builders with a uniform (char *data, int n) sink signature
    # compose cleanly; the others ship their own harness shapes.
    pool = [t for t in TEMPLATES if t.name not in
            ("strcpy_stack_overflow", "format_string", "infinite_loop")]
    cases: list[TestCase] = []
    for index in range(count):
        span = int(rng.integers(2, 4))
        picks = [pool[int(rng.integers(0, len(pool)))] for _ in range(span)]
        vulnerable = bool(rng.random() < vulnerable_fraction)
        target = int(rng.integers(0, span)) if vulnerable else None
        case_seed = seed * 86_243 + index
        cases.append(
            _compose_case(picks, target, case_seed,
                          name=f"nvd/case_{case_seed}.c"))
    return cases
