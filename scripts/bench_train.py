#!/usr/bin/env python3
"""Benchmark the vectorized training hot path.

Times the two word2vec backends (batched SGNS vs the per-pair
reference loop) on an identical extracted-gadget corpus, then times
end-to-end ``SEVulDet.fit`` under each backend, and writes the
measurements as machine-readable JSON to
``benchmarks/results/BENCH_train.json``::

    PYTHONPATH=src python scripts/bench_train.py          # full run
    PYTHONPATH=src python scripts/bench_train.py --smoke  # CI-sized

``--smoke`` shrinks the corpus so the script finishes in seconds and
records ``"mode": "smoke"``; CI runs it only to assert the script and
its JSON contract stay healthy, never to gate on the speedups (CI
machines are too noisy for that).  The checked-in BENCH_train.json
comes from a full run and records the targets the vectorization work
was acceptance-tested against: batched word2vec >= 5x the per-pair
loop, end-to-end fit >= 2x.

Alongside the speedups the report captures statistical-equivalence
evidence (final losses of both backends plus nearest-neighbor overlap
of the most frequent tokens) and the telemetry throughputs
(tokens/sec, pairs/sec, batches/sec) that ``repro train --stats``
prints.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.detector import SEVulDet  # noqa: E402
from repro.core.pipeline import extract_gadgets  # noqa: E402
from repro.core.telemetry import Telemetry  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402
from repro.embedding.vocab import Vocabulary  # noqa: E402
from repro.embedding.word2vec import Word2Vec  # noqa: E402

TARGET_W2V_SPEEDUP = 5.0
TARGET_FIT_SPEEDUP = 2.0


def _build_corpora(cases) -> tuple[Vocabulary, list[list[int]]]:
    """Extract gadgets and encode them exactly like encode_gadgets."""
    gadgets = extract_gadgets(cases)
    vocab = Vocabulary.build([list(g.tokens) for g in gadgets])
    corpora = [vocab.encode(list(g.tokens)) for g in gadgets]
    return vocab, corpora


def _neighborhood_overlap(reference: Word2Vec, candidate: Word2Vec,
                          corpora: list[list[int]],
                          probes: int = 10, top_k: int = 5) -> float:
    """Mean nearest-neighbor overlap on the most frequent tokens."""
    counts: dict[int, int] = {}
    for corpus in corpora:
        for token_id in corpus:
            counts[token_id] = counts.get(token_id, 0) + 1
    frequent = sorted((i for i in counts if i >= 2),
                      key=lambda i: -counts[i])[:probes]
    if not frequent:
        return 1.0
    overlaps = []
    for token_id in frequent:
        token = reference.vocab.id_to_token[token_id]
        ref = {t for t, _ in reference.most_similar(token, top_k)}
        cand = {t for t, _ in candidate.most_similar(token, top_k)}
        overlaps.append(len(ref & cand) / max(len(ref), 1))
    return sum(overlaps) / len(overlaps)


def bench_word2vec(vocab: Vocabulary, corpora: list[list[int]],
                   dim: int, epochs: int, seed: int) -> dict:
    """Time both backends on the same corpus and seed."""
    results: dict[str, object] = {}
    models: dict[str, Word2Vec] = {}
    for backend in ("pairwise", "batched"):
        model = Word2Vec(vocab, dim=dim, seed=seed, backend=backend)
        telemetry = Telemetry()
        start = time.perf_counter()
        loss = model.train(corpora, epochs=epochs, telemetry=telemetry)
        elapsed = time.perf_counter() - start
        models[backend] = model
        results[f"{backend}_seconds"] = round(elapsed, 4)
        results[f"{backend}_final_loss"] = round(float(loss), 4)
        if backend == "batched":
            results["tokens_per_sec"] = round(
                telemetry.rate("w2v_tokens", "w2v-train"), 1)
            results["pairs_per_sec"] = round(
                telemetry.rate("w2v_pairs", "w2v-train"), 1)
    results["speedup"] = round(
        results["pairwise_seconds"] / max(results["batched_seconds"],
                                          1e-9), 2)
    results["neighborhood_overlap"] = round(_neighborhood_overlap(
        models["pairwise"], models["batched"], corpora), 3)
    return results


def bench_fit(cases, epochs: int, seed: int) -> dict:
    """Time end-to-end SEVulDet.fit under each word2vec backend."""
    results: dict[str, object] = {}
    previous = os.environ.get("REPRO_W2V_BACKEND")
    try:
        for backend in ("pairwise", "batched"):
            os.environ["REPRO_W2V_BACKEND"] = backend
            detector = SEVulDet(seed=seed)
            start = time.perf_counter()
            report = detector.fit(cases, epochs=epochs)
            elapsed = time.perf_counter() - start
            results[f"{backend}_seconds"] = round(elapsed, 4)
            results[f"{backend}_final_loss"] = round(
                float(report.losses[-1]), 4)
            if backend == "batched":
                telemetry = detector.telemetry
                results["batches_per_sec"] = round(
                    telemetry.rate("train_batches", "train"), 1)
                results["samples_per_sec"] = round(
                    telemetry.rate("train_samples", "train"), 1)
    finally:
        if previous is None:
            os.environ.pop("REPRO_W2V_BACKEND", None)
        else:
            os.environ["REPRO_W2V_BACKEND"] = previous
    results["speedup"] = round(
        results["pairwise_seconds"] / max(results["batched_seconds"],
                                          1e-9), 2)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny corpus, no perf gate")
    parser.add_argument("--cases", type=int, default=None,
                        help="corpus programs (default 60, smoke 10)")
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_train.json")
    args = parser.parse_args(argv)

    cases_n = args.cases or (10 if args.smoke else 60)
    w2v_epochs = 1 if args.smoke else 3
    fit_epochs = 2 if args.smoke else 8
    seed = 7

    cases = generate_sard_corpus(cases_n, seed=31)
    vocab, corpora = _build_corpora(cases)
    tokens = sum(len(c) for c in corpora)
    print(f"corpus: {cases_n} cases, {len(corpora)} gadgets, "
          f"{tokens} tokens, vocab {len(vocab)}")

    w2v = bench_word2vec(vocab, corpora, dim=16, epochs=w2v_epochs,
                         seed=seed)
    print(f"word2vec: pairwise {w2v['pairwise_seconds']}s, batched "
          f"{w2v['batched_seconds']}s -> {w2v['speedup']}x "
          f"(overlap {w2v['neighborhood_overlap']})")

    fit = bench_fit(cases, epochs=fit_epochs, seed=seed)
    print(f"fit: pairwise {fit['pairwise_seconds']}s, batched "
          f"{fit['batched_seconds']}s -> {fit['speedup']}x")

    report = {
        "benchmark": "train",
        "mode": "smoke" if args.smoke else "full",
        "dtype": os.environ.get("REPRO_DTYPE", "float32"),
        "corpus": {"cases": cases_n, "gadgets": len(corpora),
                   "tokens": tokens, "vocab": len(vocab)},
        "word2vec": w2v,
        "fit": fit,
        "targets": {"word2vec_speedup": TARGET_W2V_SPEEDUP,
                    "fit_speedup": TARGET_FIT_SPEEDUP},
        "targets_met": {
            "word2vec": w2v["speedup"] >= TARGET_W2V_SPEEDUP,
            "fit": fit["speedup"] >= TARGET_FIT_SPEEDUP,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.smoke and not all(report["targets_met"].values()):
        print("warning: speedup targets not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
