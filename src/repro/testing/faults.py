"""Deterministic fault injection for the resilience layer.

Production code calls :func:`fire` at a handful of *fault sites* (one
per case extracted, one per training batch, one per cache shard
written).  When the ``REPRO_FAULTS`` environment variable is unset —
the normal state — every hook is a dictionary lookup and an early
return.  When it holds a fault spec, matching sites raise, hang, crash
the worker process, or corrupt the file being written, so the tests in
``tests/core/test_resilience.py`` can exercise every recovery path of
:mod:`repro.core.resilience` without flaky timing tricks or
monkeypatching internals across process boundaries (the environment is
inherited by pool workers, which is exactly why an env var carries the
plan).

Spec grammar (semicolon-separated rules)::

    action@site:match[:arg]

    raise@case:case_003.c:RecursionError   # raise at that case
    hang@case:case_005.c:30                # sleep 30s (interruptible)
    crash@case:case_007.c                  # os._exit, workers only
    raise@train-batch:2.0                  # raise at epoch 2, batch 0
    corrupt@shard:*                        # garbage every cache shard
    crash@score-batch:3                    # kill the scorer worker
                                           # holding pool job 3
    hang@score-batch:2:1.5                 # slow-worker: 1.5s stall
    drop@server-conn:#5                    # server hangs up after its
                                           # 5th parsed message
    drop@server-admit:#2-6                 # shed storm: admissions
                                           # 2..6 are refused

``match`` is an exact key, ``*`` (any key), ``#N`` (the Nth visit to
that site in this process, 1-based), or ``#N-M`` (every visit in that
inclusive range).  ``arg`` names a builtin exception for ``raise``
(default ``RuntimeError``) and a sleep budget in seconds for ``hang``
(default 10, bounded so a broken timeout costs seconds, not a wedged
CI job).

Serving-layer sites: ``score-batch`` fires in every scorer pool
worker once per batch, keyed by pool job id (``crash`` = worker-kill,
``hang`` = slow-worker); ``server-conn`` and ``server-admit`` are
boolean :func:`should_drop` sites the scan server consults to sever a
client connection mid-stream (conn-drop) or refuse an admission as if
overloaded (shed-storm).

Faults fire every time their rule matches: a resumed run must clear
the spec (or scope it with :func:`injected`) to get past the fault,
mirroring how a real poison case keeps failing until quarantined.
"""

from __future__ import annotations

import builtins
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["ENV_VAR", "FaultRule", "FaultPlan", "plan", "fire",
           "corrupt_file", "should_drop", "injected", "reset_visits"]

ENV_VAR = "REPRO_FAULTS"

#: Exit status used by ``crash`` rules, distinctive in worker logs.
CRASH_EXIT_CODE = 70

_DEFAULT_HANG_SECONDS = 10.0


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``action@site:match[:arg]`` clause."""

    action: str  # 'raise' | 'hang' | 'crash' | 'corrupt'
    site: str
    match: str
    arg: str = ""

    def matches(self, key: str, visit: int) -> bool:
        if self.match == "*":
            return True
        if self.match.startswith("#"):
            spec = self.match[1:]
            if "-" in spec:
                low, _, high = spec.partition("-")
                return int(low) <= visit <= int(high)
            return visit == int(spec)
        return self.match == key


@dataclass(frozen=True)
class FaultPlan:
    """All rules parsed from one spec string."""

    rules: tuple[FaultRule, ...]

    def for_site(self, site: str) -> tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.site == site)


_ACTIONS = frozenset({"raise", "hang", "crash", "corrupt", "drop"})

# Parsed-plan cache keyed on the raw spec string so fire() costs one
# os.environ lookup + one comparison when nothing changed.
_cached_spec: str | None = None
_cached_plan: FaultPlan | None = None

# Per-process visit counters, one per site, for '#N' matches.
_visits: dict[str, int] = {}


def _parse(spec: str) -> FaultPlan:
    rules = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        try:
            action, rest = clause.split("@", 1)
            site, _, match_arg = rest.partition(":")
            match, _, arg = match_arg.partition(":")
        except ValueError:
            raise ValueError(f"bad fault clause {clause!r}; expected "
                             f"'action@site:match[:arg]'") from None
        if action not in _ACTIONS:
            raise ValueError(f"unknown fault action {action!r} in "
                             f"{clause!r}; choose from "
                             f"{sorted(_ACTIONS)}")
        if not site or not match:
            raise ValueError(f"fault clause {clause!r} needs both a "
                             f"site and a match key")
        rules.append(FaultRule(action=action, site=site, match=match,
                               arg=arg))
    return FaultPlan(tuple(rules))


def plan() -> FaultPlan | None:
    """The active plan, or None when ``REPRO_FAULTS`` is unset."""
    global _cached_spec, _cached_plan
    spec = os.environ.get(ENV_VAR)
    if spec != _cached_spec:
        _cached_spec = spec
        _cached_plan = _parse(spec) if spec else None
    return _cached_plan


def reset_visits() -> None:
    """Forget the per-site visit counters ('#N' matches restart)."""
    _visits.clear()


def _in_worker_process() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def _apply(rule: FaultRule) -> None:
    if rule.action == "raise":
        exc = getattr(builtins, rule.arg or "RuntimeError", None)
        if not (isinstance(exc, type) and issubclass(exc, BaseException)):
            exc = RuntimeError
        raise exc(f"injected fault: {rule.action}@{rule.site}:"
                  f"{rule.match}")
    if rule.action == "hang":
        seconds = float(rule.arg) if rule.arg else _DEFAULT_HANG_SECONDS
        # bounded: an escaped hang should cost seconds, never wedge CI
        time.sleep(min(seconds, 120.0))
        return
    if rule.action == "crash":
        # Only kill worker processes: the inline (fallback) retry of a
        # crashed case must be able to succeed, exactly like a case
        # that only breaks a worker's address space, not the parent's.
        if _in_worker_process():
            os._exit(CRASH_EXIT_CODE)
        return
    # 'corrupt' rules only act at corrupt_file() sites and 'drop'
    # rules only at should_drop() sites


def fire(site: str, key: str) -> None:
    """Fault hook: no-op unless an active rule matches (site, key)."""
    active = plan()
    if active is None:
        return
    visit = _visits[site] = _visits.get(site, 0) + 1
    for rule in active.for_site(site):
        if rule.action not in ("corrupt", "drop") \
                and rule.matches(key, visit):
            _apply(rule)


def corrupt_file(site: str, key: str, path: str | Path) -> bool:
    """Corruption hook: garbage ``path`` if a corrupt rule matches."""
    active = plan()
    if active is None:
        return False
    visit = _visits[site] = _visits.get(site, 0) + 1
    for rule in active.for_site(site):
        if rule.action == "corrupt" and rule.matches(key, visit):
            Path(path).write_bytes(b"\x00injected shard corruption\x00")
            return True
    return False


def should_drop(site: str, key: str) -> bool:
    """Boolean hook for refusal-style faults: True when a ``drop``
    rule matches (site, key).  The caller decides what dropping means
    — the scan server severs the connection at ``server-conn`` sites
    and sheds the admission at ``server-admit`` sites."""
    active = plan()
    if active is None:
        return False
    visit = _visits[site] = _visits.get(site, 0) + 1
    for rule in active.for_site(site):
        if rule.action == "drop" and rule.matches(key, visit):
            return True
    return False


@contextmanager
def injected(spec: str) -> Iterator[None]:
    """Scope a fault spec: sets ``REPRO_FAULTS`` (inherited by pool
    workers forked inside the block) and restores the previous value
    and visit counters on exit."""
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = spec
    reset_visits()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        reset_visits()
