"""Gadget encoding (paper Step IV's input side).

Builds the lossless vocabulary, pretrains word2vec, and encodes the
labeled gadgets into :class:`~repro.nn.data.Sample` token-id streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..embedding.vocab import Vocabulary
from ..embedding.word2vec import Word2Vec
from ..nn import Sample
from .extract import LabeledGadget
from .telemetry import Telemetry

__all__ = ["EncodedDataset", "encode_gadgets"]


@dataclass
class EncodedDataset:
    """Vocabulary + pretrained embeddings + encoded samples.

    ``id_aliases`` carries the embedding-level min_count trimming: an
    identity id map except rare token ids point at UNK.  Samples keep
    their lossless full-vocabulary ids; models that should treat rare
    constants as UNK attach the alias table to their embedding layer
    (see :meth:`bind_embedding_aliases`).
    """

    samples: list[Sample]
    vocab: Vocabulary
    word2vec: Word2Vec
    gadgets: list[LabeledGadget] = field(default_factory=list)
    id_aliases: np.ndarray | None = None

    @property
    def labels(self) -> np.ndarray:
        return np.array([sample.label for sample in self.samples])

    def subset(self, indices: Sequence[int]) -> list[Sample]:
        return [self.samples[i] for i in indices]

    def bind_embedding_aliases(self, model) -> None:
        """Attach the rare-token alias table to ``model.embedding``."""
        embedding = getattr(model, "embedding", None)
        if embedding is not None and self.id_aliases is not None:
            embedding.id_aliases = self.id_aliases


def encode_gadgets(gadgets: Sequence[LabeledGadget], dim: int = 30,
                   w2v_epochs: int = 2, seed: int = 13,
                   vocab: Vocabulary | None = None,
                   word2vec: Word2Vec | None = None,
                   min_count: int = 2,
                   telemetry: Telemetry | None = None) -> EncodedDataset:
    """Step IV input side: build vocab, pretrain word2vec, encode.

    The vocabulary keeps *every* token so id<->token roundtrips are
    exact.  ``min_count`` trims tokens (mostly rare numeric constants)
    seen fewer times at the *embedding* level, exactly where gensim's
    word2vec (min_count=5 by default) applied it in the paper's
    toolchain: rare tokens train as UNK in word2vec and the returned
    ``id_aliases`` table lets classifier embeddings route them to
    UNK's row too.  That embedding-level rare-constant generalization
    is what lets patterns learned on one instantiation of a CWE
    template transfer to instantiations with different buffer sizes
    and thresholds — without ever losing the literal token.
    """
    if vocab is None:
        vocab = Vocabulary.build([list(g.tokens) for g in gadgets])
    corpora = [vocab.encode(list(g.tokens)) for g in gadgets]
    id_aliases = np.arange(len(vocab), dtype=np.int64)
    if min_count > 1:
        counts: dict[int, int] = {}
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] = counts.get(token_id, 0) + 1
        for token_id, count in counts.items():
            if token_id >= 2 and count < min_count:
                id_aliases[token_id] = 1
    if word2vec is None:
        word2vec = Word2Vec(vocab, dim=dim, seed=seed)
        word2vec.train(corpora, epochs=w2v_epochs,
                       min_count=min_count, telemetry=telemetry)
    samples = [g.sample(vocab) for g in gadgets]
    return EncodedDataset(samples, vocab, word2vec, list(gadgets),
                          id_aliases=id_aliases)
