"""BGRU baseline (SySeVR's preferred network, paper Table IV column 2).

Same fixed-length contract as the BLSTM; gated recurrent units instead
of LSTM cells.
"""

from __future__ import annotations

import numpy as np

from ..nn import (Bidirectional, Dropout, Embedding, Linear, Module,
                  Tensor, stable_sigmoid)

__all__ = ["BGRUNet"]


class BGRUNet(Module):
    """Bidirectional-GRU gadget classifier.

    Args:
        vocab_size: embedding rows.
        dim: embedding width (SySeVR uses 30).
        hidden: GRU hidden size per direction.
        time_steps: the fixed token length tau.
        dropout: dropout before the dense head (SySeVR: 0.2).
    """

    def __init__(self, vocab_size: int, dim: int = 30, hidden: int = 32,
                 time_steps: int = 50, dropout: float = 0.2,
                 pretrained: np.ndarray | None = None, seed: int = 7):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fixed_length = time_steps
        self.embedding = Embedding(vocab_size, dim, rng,
                                   weights=pretrained)
        self.rnn = Bidirectional(dim, hidden, rng, kind="gru")
        self.dropout = Dropout(dropout, rng)
        self.head = Linear(2 * hidden, 1, rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """(batch, time_steps) int ids -> (batch,) logits."""
        if token_ids.shape[1] != self.fixed_length:
            raise ValueError(
                f"BGRU requires exactly {self.fixed_length} tokens, got "
                f"{token_ids.shape[1]}; apply pad_or_truncate first")
        embedded = self.embedding(token_ids)
        _, final = self.rnn(embedded)
        return self.head(self.dropout(final)).reshape(-1)

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        logits = self.forward(token_ids).data
        return stable_sigmoid(logits)
