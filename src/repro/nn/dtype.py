"""Global floating-point dtype policy for the numpy framework.

Training and inference default to float32: every Tensor, gradient,
optimizer moment buffer, and batch of labels is created in the default
dtype, halving the memory bandwidth of every kernel relative to
numpy's float64 default.  Numerical-gradient tests pin float64 (central
differences with eps=1e-6 need ~15 significant digits) via
:func:`set_default_dtype`, and ``REPRO_DTYPE=float64`` in the
environment restores the old behavior process-wide.

Persisted archives are dtype-agnostic: ``load_state_dict`` casts
whatever was saved into the active default, so a float64-trained model
loads cleanly into a float32 session and vice versa.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np
from contextlib import contextmanager

__all__ = ["get_default_dtype", "set_default_dtype", "default_dtype"]

_ALLOWED = (np.float32, np.float64)


def _coerce(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in [np.dtype(d) for d in _ALLOWED]:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; choose float32 or "
            f"float64")
    return resolved


_DEFAULT_DTYPE = _coerce(os.environ.get("REPRO_DTYPE", "float32"))


def get_default_dtype() -> np.dtype:
    """The dtype new tensors/gradients/buffers are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the global compute dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _coerce(dtype)
    return previous


@contextmanager
def default_dtype(dtype) -> Iterator[np.dtype]:
    """Context manager scoping :func:`set_default_dtype`."""
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)
