"""Attention blocks: token attention (paper Step IV) and the 1-D CBAM
channel/spatial attention pair (paper Step V, Eq. 5-8).

Token attention re-weights embedded tokens by their similarity to a
learned context query ``u_w`` (Eq. 1-4).  Channel attention answers
*what* feature channels matter; spatial attention answers *where* along
the sequence — applied sequentially, channel first, as the paper notes
sequential beats parallel composition.
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .layers import Linear, Module, Parameter
from .ops import conv1d
from .tensor import Tensor

__all__ = ["TokenAttention", "ChannelAttention", "SpatialAttention",
           "CBAM"]


class TokenAttention(Module):
    """Importance-weighted token embedding (Eq. 1-4).

    Given embeddings ``x_i``, computes ``u_i = tanh(W x_i + b)``,
    attention ``alpha_i = softmax(u_i . u_w)``, and returns
    ``alpha_i * x_i`` (the colored feature map of Fig 4) plus the
    weights themselves, which RQ4's visualization hooks read.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.proj = Linear(dim, dim, rng)
        self.context = Parameter(
            initializers.xavier_uniform((dim,), rng), name="token.u_w")
        self.last_weights: np.ndarray | None = None

    #: Importance-gate bias at initialization: sigmoid(2) ~ 0.88, so
    #: the block starts close to the identity and learns to suppress
    #: genuinely-unimportant tokens (open-gate initialization).
    GATE_BIAS = 2.0

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, tokens, dim) -> weighted (batch, tokens, dim).

        Eq. 3's softmax normalization couples all T tokens and makes
        the per-token weight scale like 1/T, which destabilises the
        flexible-length training at laptop scale; the multiplicative
        weighting therefore uses a per-token sigmoid importance gate
        over the same ``u_i . u_w`` scores (open-gate initialised, so
        the block starts as the identity).  The softmax alphas are
        still computed and stored in ``last_weights`` — they are what
        Eq. 3 defines and what the RQ4 visualization hooks read.
        """
        u = self.proj(x).tanh()                       # (B, T, D)
        scores = u @ self.context                     # (B, T)
        alpha = scores.softmax(axis=-1)               # (B, T) Eq. 3
        self.last_weights = alpha.data.copy()
        gate = (scores + self.GATE_BIAS).sigmoid()    # (B, T)
        batch, tokens = gate.shape
        return x * gate.reshape(batch, tokens, 1)


class ChannelAttention(Module):
    """CBAM channel attention, Eq. 5 (shared MLP over avg+max pools)."""

    #: Gate bias at initialization: sigmoid(2) ~ 0.88, so the block
    #: starts close to a pass-through and learns to close gates where
    #: useful — stabilising short training runs (open-gate init).
    GATE_BIAS = 2.0

    def __init__(self, channels: int, rng: np.random.Generator,
                 reduction: int = 4):
        super().__init__()
        hidden = max(channels // reduction, 1)
        self.fc1 = Linear(channels, hidden, rng, bias=False)
        self.fc2 = Linear(hidden, channels, rng, bias=False)
        self.fc2.weight.data[:] = 0.0  # open-gate initialization
        self.gate_bias = Parameter(
            np.full(channels, self.GATE_BIAS), name="channel.gate_bias")
        self.last_weights: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, channels, length) -> channel-weighted x."""
        avg = x.mean(axis=2)             # (B, C)
        mx = x.max(axis=2)               # (B, C)
        attention = (self.fc2(self.fc1(avg).relu())
                     + self.fc2(self.fc1(mx).relu())
                     + self.gate_bias).sigmoid()          # (B, C)
        self.last_weights = attention.data.copy()
        batch, channels = attention.shape
        return x * attention.reshape(batch, channels, 1)


class SpatialAttention(Module):
    """CBAM spatial attention, Eq. 6 (conv over pooled channel maps).

    The paper's 7x7 2-D kernel becomes a length-7 1-D kernel on the
    sequence axis.
    """

    def __init__(self, rng: np.random.Generator, kernel: int = 7):
        super().__init__()
        if kernel % 2 == 0:
            raise ValueError("spatial attention kernel must be odd")
        self.kernel = kernel
        # Open-gate initialization: zero kernel + positive bias makes
        # the gate start at sigmoid(2) ~ 0.88 everywhere.
        self.weight = Parameter(np.zeros((1, 2, kernel)),
                                name="spatial.conv")
        self.bias = Parameter(np.full(1, 2.0), name="spatial.bias")
        self.last_weights: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, channels, length) -> position-weighted x."""
        avg = x.mean(axis=1, keepdims=True)   # (B, 1, L)
        mx = x.max(axis=1, keepdims=True)     # (B, 1, L)
        pooled = Tensor.concat([avg, mx], axis=1)  # (B, 2, L)
        attention = conv1d(pooled, self.weight, self.bias,
                           padding=self.kernel // 2).sigmoid()  # (B,1,L)
        self.last_weights = attention.data.copy()
        return x * attention


class CBAM(Module):
    """Sequential channel-then-spatial attention (Eq. 7-8)."""

    def __init__(self, channels: int, rng: np.random.Generator,
                 reduction: int = 4, kernel: int = 7):
        super().__init__()
        self.channel = ChannelAttention(channels, rng, reduction)
        self.spatial = SpatialAttention(rng, kernel)

    def forward(self, x: Tensor) -> Tensor:
        refined = self.channel(x)   # F'  = Mc(F) (x) F
        return self.spatial(refined)  # F'' = Ms(F') (x) F'
