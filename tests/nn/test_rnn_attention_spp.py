"""Tests for RNN cells, attention blocks, and spatial pyramid pooling."""

import numpy as np
import pytest

from repro.nn import (CBAM, Adam, Bidirectional, ChannelAttention,
                      GRUCell, LSTMCell, RNNLayer, SpatialAttention,
                      SpatialPyramidPooling1d, Tensor, TokenAttention,
                      bce_with_logits, Linear)

from .conftest import assert_grad_close, numerical_gradient


class TestCells:
    def test_lstm_cell_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(rng.normal(size=(3, 4))), h, c)
        assert h2.shape == (3, 6) and c2.shape == (3, 6)

    def test_lstm_forget_bias_initialised(self, rng):
        cell = LSTMCell(4, 6, rng)
        assert np.allclose(cell.b.data[6:12], 1.0)

    def test_gru_cell_shapes(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell.initial_state(3)
        h2 = cell(Tensor(rng.normal(size=(3, 4))), h)
        assert h2.shape == (3, 6)

    def test_gru_zero_update_gate_keeps_state(self, rng):
        cell = GRUCell(2, 3, rng)
        # Force update gate to ~0 by driving its logit very negative.
        cell.w_zr.data[:, :3] = 0.0
        cell.b_zr.data[:3] = -50.0
        h = Tensor(rng.normal(size=(1, 3)))
        h2 = cell(Tensor(rng.normal(size=(1, 2))), h)
        assert np.allclose(h2.data, h.data, atol=1e-8)


class TestRNNLayers:
    def test_unidirectional_output_shapes(self, rng):
        layer = RNNLayer(4, 6, rng, kind="lstm")
        outputs, final = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert outputs.shape == (2, 5, 6)
        assert final.shape == (2, 6)

    def test_reverse_processes_backwards(self, rng):
        fwd = RNNLayer(2, 3, rng, kind="gru")
        bwd = RNNLayer(2, 3, np.random.default_rng(1), kind="gru",
                       reverse=True)
        x = Tensor(rng.normal(size=(1, 4, 2)))
        fwd_out, fwd_final = fwd(x)
        bwd_out, bwd_final = bwd(x)
        # the backward layer's final state is its t=0 output
        assert np.allclose(bwd_out.data[:, 0, :], bwd_final.data)
        assert np.allclose(fwd_out.data[:, -1, :], fwd_final.data)

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ValueError):
            RNNLayer(2, 3, rng, kind="transformer")

    def test_bidirectional_concatenates(self, rng):
        layer = Bidirectional(4, 6, rng, kind="lstm")
        outputs, final = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert outputs.shape == (2, 5, 12)
        assert final.shape == (2, 12)

    def test_lstm_learns_sign_task(self, rng):
        layer = Bidirectional(3, 8, rng, kind="lstm")
        head = Linear(16, 1, rng)
        opt = Adam(list(layer.parameters()) + list(head.parameters()),
                   lr=0.02)
        x = rng.normal(size=(48, 5, 3))
        y = (x.mean(axis=(1, 2)) > 0).astype(float)
        for _ in range(25):
            opt.zero_grad()
            _, final = layer(Tensor(x))
            loss = bce_with_logits(head(final).reshape(-1), y)
            loss.backward()
            opt.step()
        _, final = layer(Tensor(x))
        accuracy = (((head(final).data.reshape(-1)) > 0) == y).mean()
        assert accuracy > 0.9


class TestTokenAttention:
    def test_weights_sum_to_one(self, rng):
        attention = TokenAttention(6, rng)
        attention(Tensor(rng.normal(size=(3, 7, 6))))
        assert np.allclose(attention.last_weights.sum(axis=1), 1.0)

    def test_output_shape_preserved(self, rng):
        attention = TokenAttention(6, rng)
        out = attention(Tensor(rng.normal(size=(3, 7, 6))))
        assert out.shape == (3, 7, 6)

    def test_gradient_flows_to_input(self, rng):
        attention = TokenAttention(4, rng)
        x = Tensor(rng.normal(size=(2, 5, 4)), requires_grad=True)
        attention(x).sum().backward()
        numeric = numerical_gradient(
            lambda: float(attention(Tensor(x.data)).data.sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)

    def test_attention_prefers_matching_token(self, rng):
        """A token aligned with the context vector gets more weight."""
        attention = TokenAttention(4, rng)
        x = np.zeros((1, 3, 4))
        # craft embeddings: token 1 aligned with u_w through tanh(proj)
        attention.proj.weight.data = np.eye(4)
        attention.proj.bias.data = np.zeros(4)
        attention.context.data = np.array([10.0, 0, 0, 0])
        x[0, 1, 0] = 3.0
        attention(Tensor(x))
        weights = attention.last_weights[0]
        assert weights[1] > weights[0]
        assert weights[1] > weights[2]


class TestCBAM:
    def test_channel_attention_shape(self, rng):
        attention = ChannelAttention(8, rng)
        out = attention(Tensor(rng.normal(size=(2, 8, 11))))
        assert out.shape == (2, 8, 11)
        assert attention.last_weights.shape == (2, 8)

    def test_channel_weights_in_01(self, rng):
        attention = ChannelAttention(8, rng)
        attention(Tensor(rng.normal(size=(2, 8, 11))))
        assert ((attention.last_weights >= 0)
                & (attention.last_weights <= 1)).all()

    def test_spatial_attention_shape(self, rng):
        attention = SpatialAttention(rng)
        out = attention(Tensor(rng.normal(size=(2, 8, 11))))
        assert out.shape == (2, 8, 11)
        assert attention.last_weights.shape == (2, 1, 11)

    def test_spatial_kernel_must_be_odd(self, rng):
        with pytest.raises(ValueError):
            SpatialAttention(rng, kernel=4)

    def test_cbam_sequential_composition(self, rng):
        cbam = CBAM(8, rng)
        x = Tensor(rng.normal(size=(2, 8, 9)), requires_grad=True)
        out = cbam(x)
        assert out.shape == x.shape
        out.sum().backward()
        assert x.grad is not None

    def test_cbam_gradient_check(self, rng):
        cbam = CBAM(4, rng, reduction=2, kernel=3)
        x = Tensor(rng.normal(size=(1, 4, 6)), requires_grad=True)
        cbam(x).sum().backward()
        numeric = numerical_gradient(
            lambda: float(cbam(Tensor(x.data)).data.sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)


class TestSPP:
    def test_fixed_output_width(self, rng):
        spp = SpatialPyramidPooling1d(bins=(4, 2, 1))
        for length in (1, 3, 7, 50, 333):
            out = spp(Tensor(rng.normal(size=(2, 8, length))))
            assert out.shape == (2, 7 * 8)

    def test_output_features_helper(self):
        spp = SpatialPyramidPooling1d(bins=(4, 2, 1))
        assert spp.output_features(16) == 112

    def test_avg_mode(self, rng):
        spp = SpatialPyramidPooling1d(bins=(2, 1), mode="avg")
        x = Tensor(rng.normal(size=(1, 3, 10)))
        out = spp(x)
        assert np.allclose(out.data[0, 6:9],
                           x.data[0].mean(axis=1))

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            SpatialPyramidPooling1d(bins=())
        with pytest.raises(ValueError):
            SpatialPyramidPooling1d(mode="median")

    def test_gradient_check(self, rng):
        spp = SpatialPyramidPooling1d()
        x = Tensor(rng.normal(size=(2, 3, 9)), requires_grad=True)
        (spp(x) ** 2).sum().backward()
        numeric = numerical_gradient(
            lambda: float((spp(Tensor(x.data)).data ** 2).sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)

    def test_pyramid_layout(self):
        """Layout is [level-4 block | level-2 block | level-1 block];
        the final block holds the per-channel global max."""
        channels = 2
        x = Tensor(np.arange(24.0).reshape(1, channels, 12))
        spp = SpatialPyramidPooling1d(bins=(4, 2, 1))
        out = spp(x).data[0]
        level1_block = out[4 * channels + 2 * channels:]
        assert np.allclose(level1_block, x.data.max(axis=2)[0])
