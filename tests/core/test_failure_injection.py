"""Failure-injection tests: the pipeline must degrade gracefully.

Corrupted inputs, degenerate corpora, unknown tokens, and hostile
sources must produce clean errors or empty results — never crashes or
silent wrong answers.
"""

import numpy as np
import pytest

from repro.core.detector import SEVulDet
from repro.core.config import Scale
from repro.core.pipeline import (encode_gadgets, extract_gadgets,
                                 predict_proba, train_classifier)
from repro.datasets.manifest import TestCase
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet
from repro.nn import Sample

TINY = Scale("tiny", cases_per_experiment=10, dim=8, channels=8,
             hidden=8, epochs=2, batch_size=8, time_steps=16,
             w2v_epochs=1)


def garbage_case(name: str, source: str) -> TestCase:
    return TestCase(name=name, source=source, vulnerable=False,
                    vulnerable_lines=frozenset(), cwe="", category="",
                    origin="garbage")


class TestHostileSources:
    @pytest.mark.parametrize("source", [
        "",                                  # empty
        "%%%%",                              # pure garbage
        "int f( {",                          # truncated
        "\x00\x01\x02",                      # binary
        "a" * 5000,                          # one giant token
        "int x = ((((((((((1))))))))));",    # deep nesting
    ])
    def test_extract_never_crashes(self, source):
        gadgets = extract_gadgets([garbage_case("g.c", source)])
        assert isinstance(gadgets, list)

    def test_mixed_corpus_skips_only_bad_cases(self):
        good = generate_sard_corpus(4, seed=5)
        bad = [garbage_case("bad.c", "not C {{{")]
        gadgets = extract_gadgets(good + bad)
        names = {g.case_name for g in gadgets}
        assert "bad.c" not in names
        assert len(names) >= 3

    def test_detector_on_unparseable_source(self):
        detector = SEVulDet(scale=TINY, seed=1)
        detector.fit(generate_sard_corpus(10, seed=5))
        assert detector.detect("garbage {{{", path="x.c") == []

    def test_detector_on_criterion_free_source(self):
        detector = SEVulDet(scale=TINY, seed=1)
        detector.fit(generate_sard_corpus(10, seed=5))
        assert detector.detect("int f() { return 1; }") == []


class TestDegenerateTraining:
    def test_single_class_corpus_trains(self):
        """All-benign training data must not crash (oversampling has
        nothing to balance)."""
        cases = generate_sard_corpus(8, seed=5,
                                     vulnerable_fraction=0.0)
        # force: filter any stratification-induced vulnerable cases
        cases = [c for c in cases if not c.vulnerable][:6]
        gadgets = extract_gadgets(cases)
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        report = train_classifier(model, dataset.samples, epochs=1)
        assert len(report.losses) == 1

    def test_unknown_tokens_at_inference(self):
        """A gadget whose tokens are all out-of-vocabulary must score
        without crashing (everything encodes to UNK)."""
        gadgets = extract_gadgets(generate_sard_corpus(8, seed=5))
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        alien = Sample(tuple(dataset.vocab.encode(
            ["zzz_unknown"] * 30)), 0)
        scores = predict_proba(model, [alien])
        assert scores.shape == (1,)
        assert np.isfinite(scores).all()

    def test_minimum_length_sample(self):
        gadgets = extract_gadgets(generate_sard_corpus(8, seed=5))
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        short = Sample((2,), 1)  # single token
        scores = predict_proba(model, [short])
        assert np.isfinite(scores).all()

    def test_scores_always_finite_after_training(self):
        gadgets = extract_gadgets(generate_sard_corpus(12, seed=5))
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=1)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        report = train_classifier(model, dataset.samples, epochs=3,
                                  lr=5e-3)
        assert all(np.isfinite(loss) for loss in report.losses)
        scores = predict_proba(model, dataset.samples)
        assert np.isfinite(scores).all()


class TestPersistenceFailures:
    def test_loading_garbage_model_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"definitely not an npz archive")
        detector = SEVulDet(scale=TINY)
        with pytest.raises((ValueError, OSError)):
            detector.load(path)

    def test_loading_missing_file_fails_cleanly(self, tmp_path):
        detector = SEVulDet(scale=TINY)
        with pytest.raises(FileNotFoundError):
            detector.load(tmp_path / "missing.npz")
