"""Always-on scan server: the batched scan service behind a socket.

:class:`~repro.core.serve.ScanService` amortizes model load and
batches scoring *within one process*; this module keeps that process
alive and shares it between any number of clients, so editor
integrations and CI gates pay the model load exactly once per model,
not once per invocation:

* **Front door** — a listener thread accepts unix-domain or TCP
  connections; one reader thread per connection parses JSONL requests
  (:mod:`repro.core.ipc`).  Non-scan ops (``ping``, ``stats``,
  ``reload``, ``shutdown``) are answered inline.
* **Admission control** — each connection gets a bounded in-flight
  budget (``max_pending``).  A scan arriving over budget is answered
  immediately with a ``shed`` status instead of queueing without
  bound: the client learns *now* that it should back off, and one
  greedy client cannot wedge the server for everyone else.
* **Fairness** — admitted scans wait in per-client queues; the
  scheduler drains clients round-robin, one request per turn, so a
  client pipelining 500 files and a client scanning one file both
  make progress.
* **Scoring** — dispatcher threads collect up to ``dispatch_batch``
  admitted requests and hand them to the service as one
  ``scan_cases`` call, which extracts across the batch and feeds the
  shared micro-batching scorer — this is where the one-file-per-
  process CLI's ~4%-full batches become full ones.  The default
  scorer backend is :class:`~repro.core.serve.ProcessScorer`: worker
  *processes* score against model weights mapped once into shared
  memory, so forwards do not contend on the GIL.
* **Hot reload** — ``reload`` builds a completely new service (new
  detector, new shared-memory weights, new workers) and atomically
  swaps it in.  In-flight scans finish on the service that admitted
  them; requests dispatched after the swap score on the new one.
  Every scan response carries the ``config_token`` of the service
  that actually scored it, and the verdict cache is keyed by that
  token, so a reload can neither drop a request nor serve a verdict
  computed under a different configuration than the one it reports.
* **Verdict cache** — one :class:`~repro.core.serve.
  ShardedResultCache` owned by the *server* and passed to every
  service generation, so verdicts survive reloads (token-keyed) and
  dispatcher threads don't serialize on a single cache lock.
* **Self-healing** — the process pool behind the default scorer
  respawns dead workers and resubmits their batches
  (:class:`~repro.core.scorer_pool.RestartPolicy`); if the pool breaks
  anyway the service demotes ``process → thread → inline`` and keeps
  answering, slower but byte-identical.  A ``health`` op reports
  ``ready`` / ``degraded`` / ``draining``; shed responses carry a
  ``retry_after_ms`` hint; scans may carry a ``deadline_ms`` budget
  and are answered ``expired`` instead of scored late; ``stop()``
  answers queued scans with ``shed`` so retrying clients resubmit to
  the server's successor instead of failing.

Verdict payloads are exactly ``CaseVerdict.as_record()`` — the same
bytes the offline ``scan`` command writes to ``--jsonl`` — and are
byte-identical to serial ``detector.detect_case`` results, a property
pinned end-to-end by ``tests/core/test_server.py``.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from pathlib import Path

from ..datasets.manifest import TestCase
from ..testing import faults
from .detector import SEVulDet
from .ipc import (ProtocolError, encode_message, read_message)
from .scorer_pool import RestartPolicy
from .serve import ScanService, ShardedResultCache
from .telemetry import Telemetry

__all__ = ["ScanServer", "DEFAULT_SOCKET"]

#: Default unix socket path segment (under the user's tmp dir).
DEFAULT_SOCKET = "repro-scan.sock"


class _ServiceHandle:
    """Refcounted wrapper so hot reload can retire a service safely.

    Dispatchers ``acquire()`` before scanning and ``release()`` after;
    ``retire()`` marks the generation dead and the last release closes
    the underlying service (joining scorer workers, unlinking shared
    memory).  In-flight scans therefore always finish on the weights
    they started with.
    """

    def __init__(self, service: ScanService):
        self.service = service
        self._lock = threading.Lock()
        self._refs = 0
        self._retired = False

    def acquire(self) -> ScanService:
        with self._lock:
            self._refs += 1
            return self.service

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            close_now = self._retired and self._refs == 0
        if close_now:
            self.service.close()

    def retire(self) -> None:
        with self._lock:
            self._retired = True
            close_now = self._refs == 0
        if close_now:
            self.service.close()


class _Client:
    """One connection's state: socket, write lock, fair-share queue."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, conn: socket.socket):
        self.conn = conn
        self.id = next(self._ids)
        self.wlock = threading.Lock()
        self.queue: deque[_Request] = deque()
        self.queued = False  # present in the scheduler's ready ring
        self.inflight = 0  # admitted scans not yet answered
        self.closed = False

    def send(self, message: dict) -> bool:
        try:
            with self.wlock:
                self.conn.sendall(encode_message(message))
            return True
        except OSError:
            self.closed = True
            return False


class _Request:
    __slots__ = ("client", "request_id", "case", "admitted_at",
                 "deadline_s")

    def __init__(self, client: _Client, request_id: str,
                 case: TestCase, deadline_s: float | None = None):
        self.client = client
        self.request_id = request_id
        self.case = case
        self.admitted_at = time.monotonic()
        #: absolute monotonic deadline, or None for no limit
        self.deadline_s = deadline_s

    def expired(self, now: float) -> bool:
        return self.deadline_s is not None and now > self.deadline_s


class ScanServer:
    """Long-lived, multi-client scan daemon over a trained detector.

    Usage (in-process; the CLI wraps this in ``repro serve``)::

        server = ScanServer(model="detector.npz",
                            socket_path="/tmp/scan.sock")
        server.start()
        ...
        server.stop()

    Exactly one of ``socket_path`` (unix domain) or ``host``/``port``
    (TCP, ``port=0`` picks a free port) selects the transport;
    :attr:`address` is the dialable address after :meth:`start`.
    """

    def __init__(self, model: str | Path | None = None, *,
                 detector: SEVulDet | None = None,
                 scale=None, threshold: float | None = None,
                 socket_path: str | Path | None = None,
                 host: str | None = None, port: int = 0,
                 workers: int = 2, batch_size: int = 64,
                 scorer: str = "process",
                 max_pending: int = 64, dispatchers: int = 2,
                 dispatch_batch: int = 16,
                 cache_capacity: int = 4096, cache_shards: int = 8,
                 telemetry: Telemetry | None = None,
                 restart_policy: RestartPolicy | None = None):
        if model is None and detector is None:
            raise ValueError("need a model path or a detector")
        if socket_path is not None and host is not None:
            raise ValueError("choose unix socket_path OR tcp host")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        self.model_path = None if model is None else Path(model)
        self._initial_detector = detector
        self._scale = scale
        self._threshold = threshold
        self._socket_path = (None if socket_path is None
                             else Path(socket_path))
        self._host = host
        self._port = port
        self.workers = workers
        self.batch_size = batch_size
        self.scorer = scorer
        self.restart_policy = restart_policy
        self.max_pending = max_pending
        self.dispatch_batch = max(1, dispatch_batch)
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.results = ShardedResultCache(capacity=cache_capacity,
                                          shards=cache_shards)
        self._handle: _ServiceHandle | None = None
        self._service_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        # Scheduler state: every queue/ready/inflight mutation happens
        # under this condition's lock.
        self._cond = threading.Condition()
        self._ready: deque[_Client] = deque()
        self._clients: set[_Client] = set()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._dispatcher_count = dispatchers
        self._stopping = False
        self._started = False
        self._stopped = threading.Event()
        self.address: str | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ScanServer":
        """Load the model, bind the socket, spin up the threads."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        detector = (self._initial_detector
                    if self._initial_detector is not None
                    else self._load_detector(self.model_path))
        self._handle = _ServiceHandle(self._build_service(detector))
        self._listener = self._bind()
        self._threads = [
            threading.Thread(target=self._accept_loop, daemon=True,
                             name="scan-server-accept"),
            *[threading.Thread(target=self._dispatch_loop,
                               daemon=True,
                               name=f"scan-server-dispatch-{i}")
              for i in range(self._dispatcher_count)],
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, fail queued scans, close the service."""
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            pending = []
            while self._ready:
                client = self._ready.popleft()
                client.queued = False
                pending.extend(client.queue)
                client.queue.clear()
            clients = list(self._clients)
            self._cond.notify_all()
        for request in pending:  # answer, never silently drop
            # shed (not error): a retrying client treats this as
            # backpressure and resubmits — to this server's successor
            # after a restart, or elsewhere — instead of failing the
            # scan outright
            request.client.send({"id": request.request_id,
                                 "status": "shed",
                                 "error": "server shutting down",
                                 "retry_after_ms": 200})
        if self._listener is not None:
            # shutdown() before close(): closing a listener does not
            # wake a thread blocked in accept() on Linux, so without
            # it every stop() stalls for the full join timeout and
            # leaks the accept thread
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for client in clients:
            self._drop_client(client)
        for thread in self._threads:
            thread.join(timeout=10.0)
        with self._service_lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.retire()
        if self._socket_path is not None:
            try:
                self._socket_path.unlink()
            except OSError:
                pass
        self._stopped.set()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` runs (CLI foreground mode)."""
        self._stopped.wait()

    def __enter__(self) -> "ScanServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- setup ---------------------------------------------------------------

    def _load_detector(self, model: Path | None) -> SEVulDet:
        if model is None:
            raise ValueError("no model path to (re)load from")
        detector = SEVulDet(scale=self._scale)
        detector.load(model)
        if self._threshold is not None:
            detector.threshold = self._threshold
        return detector

    def _build_service(self, detector: SEVulDet) -> ScanService:
        return ScanService(detector, workers=self.workers,
                           batch_size=self.batch_size,
                           scorer=self.scorer,
                           result_cache=self.results,
                           telemetry=self.telemetry,
                           restart_policy=self.restart_policy)

    def _bind(self) -> socket.socket:
        if self._socket_path is not None:
            path = self._socket_path
            if path.exists():
                # a previous server's leftover; connecting would have
                # succeeded if it were alive, so reclaim the name
                path.unlink()
            listener = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
            listener.bind(str(path))
            self.address = str(path)
        else:
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((self._host or "127.0.0.1", self._port))
            host, port = listener.getsockname()[:2]
            self.address = f"{host}:{port}"
        listener.listen(128)
        return listener

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed by stop()
                return
            client = _Client(conn)
            with self._cond:
                if self._stopping:
                    self._drop_client(client)
                    return
                self._clients.add(client)
            thread = threading.Thread(
                target=self._reader_loop, args=(client,), daemon=True,
                name=f"scan-server-client-{client.id}")
            thread.start()

    def _reader_loop(self, client: _Client) -> None:
        reader = client.conn.makefile("rb")
        try:
            while not self._stopping:
                try:
                    message = read_message(reader)
                except (ProtocolError, OSError) as error:
                    if isinstance(error, ProtocolError):
                        client.send({"status": "error",
                                     "error": str(error)})
                    return
                if message is None:  # client hung up
                    return
                # chaos site: sever this connection as if the network
                # (or a proxy) dropped it mid-stream
                if faults.should_drop("server-conn", str(client.id)):
                    self.telemetry.count("server_conn_drops")
                    return
                self.telemetry.count("server_requests")
                self._handle_message(client, message)
        finally:
            reader.close()
            self._drop_client(client)

    def _drop_client(self, client: _Client) -> None:
        with self._cond:
            client.closed = True
            self._clients.discard(client)
            if client.queued:
                try:
                    self._ready.remove(client)
                except ValueError:  # pragma: no cover
                    pass
                client.queued = False
            client.queue.clear()
        # shutdown() does the actual severing: close() alone is
        # deferred while the reader thread's makefile() still holds a
        # reference to the socket, so a "dropped" client would keep
        # receiving responses and its blocked reader would never wake
        try:
            client.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            client.conn.close()
        except OSError:  # pragma: no cover
            pass

    # -- request handling ----------------------------------------------------

    def _handle_message(self, client: _Client,
                        message: dict) -> None:
        op = message.get("op")
        if op == "scan":
            self._admit_scan(client, message)
        elif op == "ping":
            client.send({"op": "ping", "status": "ok",
                         "config_token": self._config_token()})
        elif op == "health":
            client.send({"op": "health", "status": "ok",
                         **self.health()})
        elif op == "stats":
            client.send({"op": "stats", "status": "ok",
                         **self.stats()})
        elif op == "reload":
            self._handle_reload(client, message)
        elif op == "shutdown":
            client.send({"op": "shutdown", "status": "ok"})
            self.telemetry.count("server_shutdowns")
            # stop() joins the reader threads; run it elsewhere
            threading.Thread(target=self.stop, daemon=True,
                             name="scan-server-stop").start()
        else:
            self.telemetry.count("server_errors")
            client.send({"id": message.get("id"), "status": "error",
                         "error": f"unknown op {op!r}"})

    def _admit_scan(self, client: _Client, message: dict) -> None:
        request_id = str(message.get("id", ""))
        name = message.get("name")
        source = message.get("source")
        if not isinstance(name, str) or not isinstance(source, str):
            self.telemetry.count("server_errors")
            client.send({"id": request_id, "status": "error",
                         "error": "scan needs string 'name' and "
                                  "'source' fields"})
            return
        case = TestCase(name=name, source=source, vulnerable=False,
                        vulnerable_lines=frozenset(), cwe="",
                        category="", origin="serve")
        deadline_s = None
        deadline_ms = message.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and deadline_ms > 0:
            deadline_s = time.monotonic() + deadline_ms / 1000.0
        request = _Request(client, request_id, case,
                           deadline_s=deadline_s)
        # chaos site: refuse this admission as if the server were
        # saturated (shed storm)
        forced_shed = faults.should_drop("server-admit", name)
        with self._cond:
            if self._stopping:
                shed_reason = "server shutting down"
            elif forced_shed:
                shed_reason = "server overloaded; back off and retry"
            elif client.inflight >= self.max_pending:
                shed_reason = (f"client over its in-flight budget "
                               f"({self.max_pending}); back off and "
                               f"retry")
            else:
                shed_reason = None
                client.inflight += 1
                client.queue.append(request)
                if not client.queued:
                    client.queued = True
                    self._ready.append(client)
                self._cond.notify()
            inflight = client.inflight
        if shed_reason is not None:
            self.telemetry.count("server_shed")
            client.send({"id": request_id, "status": "shed",
                         "error": shed_reason,
                         "retry_after_ms": self._retry_after_ms(
                             inflight)})

    def _retry_after_ms(self, inflight: int) -> int:
        """Backpressure hint for shed responses: grows with how far
        over budget the client is, so retry waves spread out instead
        of slamming the server again in lockstep."""
        pressure = min(2.0, inflight / max(1, self.max_pending))
        return int(50 + 200 * pressure)

    # -- scheduling + scoring ------------------------------------------------

    def _next_batch(self) -> list[_Request] | None:
        """Round-robin batch: one request per ready client per turn,
        up to ``dispatch_batch``; None when the server is stopping."""
        with self._cond:
            while not self._ready:
                if self._stopping:
                    return None
                self._cond.wait(timeout=0.2)
            batch: list[_Request] = []
            while self._ready and len(batch) < self.dispatch_batch:
                client = self._ready.popleft()
                batch.append(client.queue.popleft())
                if client.queue:
                    self._ready.append(client)  # back of the ring
                else:
                    client.queued = False
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            now = time.monotonic()
            expired = [r for r in batch if r.expired(now)]
            if expired:
                # answer, never silently drop: the client asked for a
                # bounded wait and gets a definitive non-verdict
                self.telemetry.count("server_deadline_expired",
                                     len(expired))
                for request in expired:
                    self._finish(request, {
                        "id": request.request_id,
                        "status": "expired",
                        "error": "deadline expired before dispatch"})
                batch = [r for r in batch if not r.expired(now)]
                if not batch:
                    continue
            started = time.perf_counter()
            with self._service_lock:
                handle = self._handle
                service = handle.acquire()
            try:
                token = service.config_token
                try:
                    verdicts = service.scan_cases(
                        [request.case for request in batch])
                    failure = None
                except Exception as error:
                    verdicts = []
                    failure = f"{type(error).__name__}: {error}"
            finally:
                handle.release()
            self.telemetry.observe("server_batch_cases", len(batch))
            self.telemetry.add_stage(
                "server_dispatch", time.perf_counter() - started)
            if failure is not None:
                self.telemetry.count("server_errors", len(batch))
                for request in batch:
                    self._finish(request, {
                        "id": request.request_id, "status": "error",
                        "error": failure})
                continue
            self.telemetry.count("server_scans", len(batch))
            for request, verdict in zip(batch, verdicts):
                self._finish(request, {
                    "id": request.request_id, "status": "ok",
                    "config_token": token,
                    "cached": verdict.cached,
                    "verdict": verdict.as_record()})

    def _finish(self, request: _Request, response: dict) -> None:
        request.client.send(response)
        with self._cond:
            request.client.inflight -= 1

    # -- reload + introspection ----------------------------------------------

    def _config_token(self) -> str | None:
        with self._service_lock:
            handle = self._handle
        return None if handle is None else handle.service.config_token

    def _handle_reload(self, client: _Client, message: dict) -> None:
        model = message.get("model")
        try:
            token = self.reload(model)
        except Exception as error:
            self.telemetry.count("server_errors")
            client.send({"op": "reload", "status": "error",
                         "error": f"{type(error).__name__}: {error}"})
            return
        client.send({"op": "reload", "status": "ok",
                     "config_token": token})

    def reload(self, model: str | Path | None = None) -> str:
        """Swap in a freshly loaded model; returns its config token.

        The new service (detector, shared-memory weights, scorer
        workers) is fully built *before* the swap, so the scan path
        never waits on a model load; the old service keeps scoring
        its in-flight batches and is closed by the last dispatcher to
        release it.  Requests still queued at swap time score on the
        new service — nothing is dropped, and every response names
        the token that scored it.
        """
        with self._reload_lock:  # serialize concurrent reloads only
            if model is not None:
                self.model_path = Path(model)
            detector = self._load_detector(self.model_path)
            fresh = _ServiceHandle(self._build_service(detector))
            with self._service_lock:
                old, self._handle = self._handle, fresh
            if old is not None:
                old.retire()
            self.telemetry.count("server_reloads")
            return fresh.service.config_token

    def health(self) -> dict:
        """The ``health`` op's payload: ``ready`` / ``degraded`` /
        ``draining`` plus the scoring backend actually in use.

        ``draining`` while stopping; otherwise the service's own
        health (``degraded`` = serving on a fallback scorer or with
        lost pool workers — slower, verdicts unaffected).
        """
        with self._service_lock:
            handle = self._handle
        if self._stopping or handle is None:
            return {"health": "draining", "scorer": self.scorer,
                    "degraded_reason": None}
        service_health = handle.service.health()
        return {
            "health": service_health["status"],
            "scorer": service_health["scorer"],
            "scorer_health": service_health["scorer_health"],
            "degraded_reason": service_health["degraded_reason"],
        }

    def stats(self) -> dict:
        """Server- and service-level statistics (the ``stats`` op)."""
        with self._service_lock:
            handle = self._handle
        with self._cond:
            clients = len(self._clients)
            queued = sum(len(c.queue) for c in self._clients)
        return {
            "server": {
                "address": self.address,
                "clients": clients,
                "queued": queued,
                "scorer": self.scorer,
                "health": self.health()["health"],
                "config_token": (None if handle is None
                                 else handle.service.config_token),
                "requests": self.telemetry.get("server_requests"),
                "scans": self.telemetry.get("server_scans"),
                "shed": self.telemetry.get("server_shed"),
                "errors": self.telemetry.get("server_errors"),
                "reloads": self.telemetry.get("server_reloads"),
                "deadline_expired":
                    self.telemetry.get("server_deadline_expired"),
                "conn_drops":
                    self.telemetry.get("server_conn_drops"),
                "batch_cases": self.telemetry.observation_stats(
                    "server_batch_cases"),
            },
            "service": (None if handle is None
                        else handle.service.stats()),
        }
