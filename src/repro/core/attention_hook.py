"""Attention-weight inspection (paper RQ4 / Fig 6).

Hooks the token-attention weights out of a trained SEVulDet model for
one gadget and ranks tokens by (regularised) weight, reproducing the
Fig 6 visualization: the top-weighted tokens should cluster on the
lines where the vulnerability forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedding.vocab import Vocabulary
from ..models.sevuldet import SEVulDetNet
from ..nn import no_grad
from .extract import LabeledGadget

__all__ = ["TokenWeight", "attention_report", "weights_by_line"]


@dataclass(frozen=True)
class TokenWeight:
    """One token's attention mass.

    ``percent`` is regularised against the maximum weight, exactly how
    Fig 6 presents its bar chart.
    """

    token: str
    position: int
    weight: float
    percent: float


def attention_report(model: SEVulDetNet, vocab: Vocabulary,
                     gadget: LabeledGadget,
                     top_k: int = 10) -> list[TokenWeight]:
    """Top-k attention-weighted tokens of one gadget."""
    ids = np.array([vocab.encode(list(gadget.tokens))], dtype=np.int64)
    with no_grad():
        weights = model.attention_weights(ids)[0]
    if len(weights) != len(gadget.tokens):
        raise RuntimeError("attention length mismatch")
    order = np.argsort(-weights)[:top_k]
    peak = float(weights[order[0]]) if len(order) else 1.0
    return [
        TokenWeight(token=gadget.tokens[position],
                    position=int(position),
                    weight=float(weights[position]),
                    percent=round(100.0 * float(weights[position])
                                  / max(peak, 1e-12), 1))
        for position in order
    ]


def weights_by_line(model: SEVulDetNet, vocab: Vocabulary,
                    gadget: LabeledGadget) -> dict[int, float]:
    """Total attention mass per source line of the gadget.

    Requires the gadget to have been extracted with
    ``keep_gadget=True`` so token positions can be mapped back to
    gadget lines.
    """
    if gadget.gadget is None:
        raise ValueError("gadget was extracted without keep_gadget=True")
    ids = np.array([vocab.encode(list(gadget.tokens))], dtype=np.int64)
    with no_grad():
        weights = model.attention_weights(ids)[0]
    # Recreate the per-line token spans by re-normalizing line by line.
    from ..slicing.normalize import Normalizer
    normalizer = Normalizer()
    spans: list[tuple[int, int, int]] = []  # (line, start, end)
    cursor = 0
    for line in gadget.gadget.lines:
        tokens = normalizer.normalize_text(line.text)
        spans.append((line.line, cursor, cursor + len(tokens)))
        cursor += len(tokens)
    if cursor != len(gadget.tokens):
        raise RuntimeError("token span reconstruction diverged")
    by_line: dict[int, float] = {}
    for line_no, start, end in spans:
        by_line[line_no] = by_line.get(line_no, 0.0) \
            + float(weights[start:end].sum())
    return by_line
