"""Tests for gadget-dataset persistence."""

import logging

import pytest

from repro.core.pipeline import extract_gadgets
from repro.core.store import iter_gadgets, load_gadgets, save_gadgets
from repro.datasets.sard import generate_sard_corpus


@pytest.fixture(scope="module")
def gadgets():
    return extract_gadgets(generate_sard_corpus(15, seed=91))


class TestStore:
    def test_roundtrip(self, gadgets, tmp_path):
        path = tmp_path / "gadgets.jsonl"
        count = save_gadgets(gadgets, path)
        assert count == len(gadgets)
        restored = load_gadgets(path)
        assert len(restored) == len(gadgets)
        for original, loaded in zip(gadgets, restored):
            assert loaded.tokens == original.tokens
            assert loaded.label == original.label
            assert loaded.category == original.category
            assert loaded.cwe == original.cwe
            assert loaded.criterion == original.criterion
            assert loaded.kind == original.kind

    def test_streaming_matches_bulk(self, gadgets, tmp_path):
        path = tmp_path / "gadgets.jsonl"
        save_gadgets(gadgets, path)
        streamed = [g.tokens for g in iter_gadgets(path)]
        assert streamed == [g.tokens for g in load_gadgets(path)]

    def test_restored_gadgets_encode(self, gadgets, tmp_path):
        from repro.core.pipeline import encode_gadgets
        path = tmp_path / "gadgets.jsonl"
        save_gadgets(gadgets, path)
        dataset = encode_gadgets(load_gadgets(path), dim=8,
                                 w2v_epochs=0)
        assert len(dataset.samples) == len(gadgets)

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("\nnot json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_gadgets(path)

    def test_truncated_final_line_skipped_with_warning(
            self, gadgets, tmp_path, caplog):
        # the partial write of a process killed mid-append: every
        # complete record before it is served, the torn tail is not
        path = tmp_path / "torn.jsonl"
        save_gadgets(gadgets, path)
        with path.open("a") as handle:
            handle.write('{"v": 1, "tokens": ["tr')
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.store"):
            restored = load_gadgets(path)
        assert len(restored) == len(gadgets)
        assert "truncated final line" in caplog.text

    def test_corruption_before_eof_still_raises(self, gadgets,
                                                tmp_path):
        # only the *final* line gets the torn-tail forgiveness
        path = tmp_path / "mid.jsonl"
        save_gadgets(gadgets, path)
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(1, "{torn\n")
        path.write_text("".join(lines))
        with pytest.raises(ValueError, match="mid.jsonl:2"):
            load_gadgets(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"v": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_gadgets(path)

    def test_atomic_write_matches_plain(self, gadgets, tmp_path):
        plain = tmp_path / "plain.jsonl"
        atomic = tmp_path / "atomic.jsonl"
        save_gadgets(gadgets, plain)
        save_gadgets(gadgets, atomic, atomic=True)
        assert atomic.read_text() == plain.read_text()
        assert not list(tmp_path.glob("*.tmp"))

    def test_atomic_replaces_existing(self, gadgets, tmp_path):
        path = tmp_path / "gadgets.jsonl"
        path.write_text("stale\n")
        save_gadgets(gadgets[:2], path, atomic=True)
        assert len(load_gadgets(path)) == 2

    def test_blank_lines_skipped(self, gadgets, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_gadgets(gadgets[:2], path)
        padded = path.read_text().replace("\n", "\n\n")
        path.write_text(padded)
        assert len(load_gadgets(path)) == 2
