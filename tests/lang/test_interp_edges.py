"""Edge-case interpreter tests: formatting, pointers, struct misc."""

from repro.lang.interp import ViolationKind, run_program


def run(body: str, stdin: bytes = b"", **kwargs):
    return run_program(f"int main() {{\n{body}\nreturn 0;\n}}",
                       stdin=stdin, **kwargs)


class TestFormatting:
    def test_percent_literal(self):
        assert run('printf("100%%");').output == "100%"

    def test_char_spec(self):
        assert run('printf("%c%c", 72, 105);').output == "Hi"

    def test_width_flags_skipped(self):
        assert run('printf("%02d", 7);').output == "7"

    def test_float_spec(self):
        result = run('printf("%f", 1);')
        assert result.output.startswith("1")

    def test_pointer_spec(self):
        result = run('char b[4];\nprintf("%p", b);')
        assert result.output.startswith("0x")

    def test_unknown_spec_passthrough(self):
        assert run('printf("%q", 1);').output == "q"

    def test_extra_args_ignored(self):
        assert run('printf("%d", 1, 2, 3);').output == "1"

    def test_missing_int_arg_is_zero(self):
        assert run('printf("%d");').output == "0"


class TestPointerEdges:
    def test_null_comparisons(self):
        result = run('char *p = NULL;\nchar b[2];\nchar *q = b;\n'
                     'printf("%d%d%d", p == NULL, q == NULL, '
                     "q != NULL);")
        assert result.output == "101"

    def test_pointer_ordering_same_block(self):
        result = run("char b[8];\nchar *lo = b + 1;\nchar *hi = b + 5;"
                     '\nprintf("%d%d", lo < hi, hi <= lo);')
        assert result.output == "10"

    def test_negative_pointer_offset_read_caught(self):
        result = run("char b[4];\nchar *p = b;\np = p - 2;\n"
                     "char c = *p;")
        assert result.violation is not None
        assert result.violation.kind is ViolationKind.OUT_OF_BOUNDS_READ

    def test_string_literal_is_readonly_block_readable(self):
        result = run('char *s = "abc";\nprintf("%c%d", s[1], s[3]);')
        assert result.output == "b0"  # NUL terminator readable

    def test_string_literal_oob(self):
        result = run('char *s = "abc";\nchar c = s[10];')
        assert result.violation is not None

    def test_prefix_vs_postfix_increment(self):
        result = run("int i = 5;\nint a = i++;\nint b = ++i;\n"
                     'printf("%d %d %d", a, b, i);')
        assert result.output == "5 7 7"

    def test_pointer_increment_walks_buffer(self):
        result = run('char b[4] = "xyz";\nchar *p = b;\np++;\n'
                     'printf("%c", *p);')
        assert result.output == "y"


class TestStructsAndScopes:
    def test_nested_struct_pointer_fields(self):
        source = """
struct inner { int depth; };
struct outer { int id; };
int main() {
    struct outer o;
    struct outer *po = &o;
    po->id = 3;
    struct inner i;
    struct inner *pi = &i;
    pi->depth = po->id * 2;
    printf("%d", pi->depth);
    return 0;
}
"""
        assert run_program(source).output == "6"

    def test_struct_field_defaults_to_zero(self):
        source = """
struct s { int x; };
int main() {
    struct s v;
    struct s *p = &v;
    printf("%d", p->x);
    return 0;
}
"""
        assert run_program(source).output == "0"

    def test_global_variable_read_write(self):
        source = """
int counter = 10;
void bump() { counter = counter + 5; }
int main() { bump(); bump(); printf("%d", counter); return 0; }
"""
        assert run_program(source).output == "20"

    def test_goto_inside_nested_block(self):
        result = run('int n = 0;\nif (1) {\ngoto out;\n}\nn = 9;\n'
                     'out: printf("%d", n);')
        assert result.output == "0"

    def test_switch_on_expression(self):
        result = run('int n = 7;\nswitch (n % 3) {\ncase 0: '
                     'printf("a"); break;\ncase 1: printf("b"); '
                     'break;\ndefault: printf("c");\n}')
        assert result.output == "b"


class TestBudgets:
    def test_steps_budget_configurable(self):
        slow = run("int i = 0;\nwhile (i < 1000) { i++; }",
                   max_steps=100)
        assert slow.hung
        fast = run("int i = 0;\nwhile (i < 10) { i++; }",
                   max_steps=100)
        assert fast.ok

    def test_deep_recursion_reported_as_hang(self):
        source = ("int f(int n) { return f(n + 1); }\n"
                  "int main() { return f(0); }")
        result = run_program(source, max_steps=100_000)
        assert result.hung or result.crashed
