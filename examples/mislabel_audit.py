#!/usr/bin/env python3
"""Step II in action: k-fold cross-validation mislabel auditing.

The paper labels gadgets heuristically (a gadget covering a flagged
line inherits label 1) and notes this mislabels some of them; its
remedy is k-fold cross-validation to narrow down the check range,
followed by manual judgment.  This script plants label flips into a
gadget dataset, runs the auditor, and shows its precision/recall on the
planted corruption — with the execution oracle standing in for the
paper's human reviewer.
"""

import numpy as np

from repro.core.pipeline import extract_gadgets
from repro.datasets.sard import generate_sard_corpus
from repro.slicing.labeling import MislabelAuditor


def token_jaccard_classifier(train_x, train_y, test_x):
    """1-NN on token-set Jaccard similarity — a cheap, fast probe."""
    train_sets = [frozenset(tokens) for tokens in train_x]
    out = []
    for tokens in test_x:
        probe = frozenset(tokens)
        best, label = -1.0, 0
        for candidate, candidate_label in zip(train_sets, train_y):
            union = len(probe | candidate)
            score = len(probe & candidate) / union if union else 0.0
            if score > best:
                best, label = score, candidate_label
        out.append(label)
    return out


def main() -> None:
    print("=== Step II: k-fold mislabel audit ===\n")

    cases = generate_sard_corpus(120, seed=33)
    gadgets = extract_gadgets(cases)
    samples = [list(g.tokens) for g in gadgets]
    labels = [g.label for g in gadgets]
    print(f"dataset: {len(gadgets)} gadgets, "
          f"{sum(labels)} labelled vulnerable")

    rng = np.random.default_rng(4)
    flip_count = max(len(labels) // 20, 5)
    flipped = set(rng.choice(len(labels), size=flip_count,
                             replace=False).tolist())
    noisy = [1 - label if index in flipped else label
             for index, label in enumerate(labels)]
    print(f"planted {flip_count} label flips\n")

    auditor = MislabelAuditor(k=5, threshold=2)
    suspicious = auditor.audit(samples, noisy,
                               token_jaccard_classifier, rounds=2)
    caught = set(suspicious) & flipped
    print(f"audit flagged {len(suspicious)} gadgets for review")
    print(f"recall on planted flips : "
          f"{len(caught)}/{flip_count} "
          f"({len(caught) / flip_count:.0%})")
    print(f"review precision        : "
          f"{len(caught)}/{len(suspicious)} "
          f"({len(caught) / max(len(suspicious), 1):.0%})")

    # The oracle (here: the original labels, which came from the
    # execution-validated manifests) plays the paper's human reviewer.
    repaired = auditor.relabel(noisy, suspicious,
                               oracle=lambda index: labels[index])
    remaining = sum(1 for a, b in zip(repaired, labels) if a != b)
    print(f"\nafter oracle-backed relabeling: {remaining} corrupted "
          f"labels remain (was {flip_count})")


if __name__ == "__main__":
    main()
