"""Interval (value-range) abstract interpretation over the CFG.

A classic forward dataflow with widening: every integer variable maps
to a ``[lo, hi]`` interval; branch edges refine the state by their
condition (``n < 10`` narrows ``n`` on the true edge).  The analysis
gives the repository a second static-precision tier — the Checkmarx
baseline's ``interval`` mode uses it to discharge taint findings whose
sink length is provably within the buffer bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import ast_nodes as A
from .cfg import CFG, CFGEdge, NodeKind

__all__ = ["Interval", "IntervalState", "analyze_intervals",
           "interval_of_expr"]

_INF = float("inf")
_WIDEN_AFTER = 3  # joins at a node before widening kicks in


@dataclass(frozen=True)
class Interval:
    """A closed integer interval (bounds may be ±inf)."""

    lo: float
    hi: float

    @staticmethod
    def top() -> "Interval":
        return Interval(-_INF, _INF)

    @staticmethod
    def const(value: float) -> "Interval":
        return Interval(value, value)

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi and abs(self.lo) != _INF

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard widening: unstable bounds jump to infinity."""
        if self.is_empty:
            return other
        lo = self.lo if other.lo >= self.lo else -_INF
        hi = self.hi if other.hi <= self.hi else _INF
        return Interval(lo, hi)

    # -- arithmetic -----------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return self
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return self
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return self
        products = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if abs(a) == _INF and b == 0:
                    products.append(0.0)
                elif abs(b) == _INF and a == 0:
                    products.append(0.0)
                else:
                    products.append(a * b)
        return Interval(min(products), max(products))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo}, {self.hi}]"


IntervalState = dict[str, Interval]


def _join_states(a: IntervalState, b: IntervalState) -> IntervalState:
    """Pointwise join; variables missing on one side become top."""
    result: IntervalState = {}
    for name in set(a) | set(b):
        left = a.get(name, Interval.top())
        right = b.get(name, Interval.top())
        result[name] = left.join(right)
    return result


def _states_equal(a: IntervalState, b: IntervalState) -> bool:
    return a == b


def interval_of_expr(expr: A.Expr, state: IntervalState) -> Interval:
    """Abstract evaluation of an expression under ``state``."""
    if isinstance(expr, A.Number):
        try:
            return Interval.const(float(expr.value))
        except (ValueError, OverflowError):  # pragma: no cover
            return Interval.top()
    if isinstance(expr, A.CharLit):
        return Interval.const(float(expr.value))
    if isinstance(expr, A.Ident):
        if expr.name in ("true",):
            return Interval.const(1)
        if expr.name in ("false", "NULL"):
            return Interval.const(0)
        return state.get(expr.name, Interval.top())
    if isinstance(expr, A.Unary):
        if expr.op == "-":
            return interval_of_expr(expr.operand, state).neg()
        if expr.op == "+":
            return interval_of_expr(expr.operand, state)
        return Interval.top()
    if isinstance(expr, A.Binary):
        left = interval_of_expr(expr.left, state)
        right = interval_of_expr(expr.right, state)
        if expr.op == "+":
            return left.add(right)
        if expr.op == "-":
            return left.sub(right)
        if expr.op == "*":
            return left.mul(right)
        if expr.op == "%":
            if right.is_constant and right.lo > 0:
                bound = right.lo - 1
                if left.lo >= 0:
                    return Interval(0, bound)
                return Interval(-bound, bound)
            return Interval.top()
        if expr.op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||"):
            return Interval(0, 1)
        return Interval.top()
    if isinstance(expr, A.Ternary):
        return interval_of_expr(expr.then, state).join(
            interval_of_expr(expr.otherwise, state))
    if isinstance(expr, A.Cast):
        return interval_of_expr(expr.expr, state)
    if isinstance(expr, A.Assign):
        return interval_of_expr(expr.value, state)
    if isinstance(expr, A.Call):
        if expr.callee_name == "strlen":
            return Interval(0, _INF)
        return Interval.top()
    return Interval.top()


def _refine_by_condition(state: IntervalState, cond: A.Expr,
                         branch_true: bool) -> IntervalState:
    """Narrow ``state`` assuming ``cond`` evaluated to the branch."""
    refined = dict(state)

    def narrow(name: str, bound: Interval) -> None:
        current = refined.get(name, Interval.top())
        met = current.meet(bound)
        if not met.is_empty:
            refined[name] = met

    if isinstance(cond, A.Binary):
        op = cond.op
        if not branch_true:
            flip = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                    "==": "!=", "!=": "=="}
            if op in flip:
                op = flip[op]
            elif op == "&&":
                return refined  # !(a && b) gives no per-var fact
        if op == "&&" and branch_true:
            refined = _refine_by_condition(refined, cond.left, True)
            return _refine_by_condition(refined, cond.right, True)
        left, right = cond.left, cond.right
        # Normalise: variable on the left, constant-ish on the right.
        if isinstance(right, A.Ident) and not isinstance(left, A.Ident):
            mirror = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
                      "==": "==", "!=": "!="}
            left, right = right, left
            op = mirror.get(op, op)
        if isinstance(left, A.Ident):
            bound = interval_of_expr(right, state)
            has_finite_side = (bound.lo != -_INF or bound.hi != _INF)
            if not bound.is_empty and has_finite_side:
                if op == "<":
                    narrow(left.name, Interval(-_INF, bound.hi - 1))
                elif op == "<=":
                    narrow(left.name, Interval(-_INF, bound.hi))
                elif op == ">":
                    narrow(left.name, Interval(bound.lo + 1, _INF))
                elif op == ">=":
                    narrow(left.name, Interval(bound.lo, _INF))
                elif op == "==" and bound.is_constant:
                    narrow(left.name, bound)
    elif isinstance(cond, A.Ident):
        if not branch_true:
            narrow(cond.name, Interval.const(0))
    elif isinstance(cond, A.Unary) and cond.op == "!":
        return _refine_by_condition(state, cond.operand,
                                    not branch_true)
    return refined


def _transfer(node_ast: Optional[A.Node],
              state: IntervalState) -> IntervalState:
    """Abstract effect of one statement node."""
    if node_ast is None:
        return state
    out = dict(state)
    if isinstance(node_ast, A.Decl):
        for decl in node_ast.declarators:
            if decl.init is not None and not decl.is_array:
                out[decl.name] = interval_of_expr(decl.init, state)
            elif not decl.is_array and not decl.is_pointer:
                out[decl.name] = Interval.top()
    elif isinstance(node_ast, A.ExprStmt):
        _transfer_expr(node_ast.expr, out)
    return out


def _transfer_expr(expr: A.Expr, out: IntervalState) -> None:
    if isinstance(expr, A.Assign):
        if isinstance(expr.value, A.Assign):
            _transfer_expr(expr.value, out)
        if isinstance(expr.target, A.Ident):
            name = expr.target.name
            if expr.op == "=":
                out[name] = interval_of_expr(expr.value, out)
            else:
                current = out.get(name, Interval.top())
                delta = interval_of_expr(expr.value, out)
                if expr.op == "+=":
                    out[name] = current.add(delta)
                elif expr.op == "-=":
                    out[name] = current.sub(delta)
                elif expr.op == "*=":
                    out[name] = current.mul(delta)
                else:
                    out[name] = Interval.top()
    elif isinstance(expr, A.Unary) and expr.op in ("++", "--"):
        if isinstance(expr.operand, A.Ident):
            name = expr.operand.name
            current = out.get(name, Interval.top())
            step = Interval.const(1 if expr.op == "++" else -1)
            out[name] = current.add(step)
    elif isinstance(expr, A.Comma):
        _transfer_expr(expr.left, out)
        _transfer_expr(expr.right, out)


def _condition_of(node_ast: Optional[A.Node]) -> Optional[A.Expr]:
    if isinstance(node_ast, (A.If, A.While)):
        return node_ast.cond
    if isinstance(node_ast, A.DoWhile):
        return node_ast.cond
    if isinstance(node_ast, A.For):
        return node_ast.cond
    return None


def analyze_intervals(cfg: CFG) -> dict[int, IntervalState]:
    """Interval state at the *entry* of every CFG node.

    Parameters start at top; the worklist iterates to a fixed point
    with widening after a few joins per node, so loops terminate.
    """
    entry_state: IntervalState = {
        p.name: Interval.top() for p in cfg.function.params if p.name
    }
    in_states: dict[int, IntervalState] = {cfg.entry.id: entry_state}
    join_counts: dict[int, int] = {}
    worklist = [cfg.entry]
    while worklist:
        node = worklist.pop(0)
        state_in = in_states.get(node.id, {})
        state_out = _transfer(node.ast, state_in)
        condition = _condition_of(node.ast) \
            if node.kind is NodeKind.CONDITION else None
        for edge in cfg.out_edges(node):
            succ_state = state_out
            if condition is not None and edge.label in ("true",
                                                        "false"):
                succ_state = _refine_by_condition(
                    state_out, condition, edge.label == "true")
            previous = in_states.get(edge.dst)
            if previous is None:
                merged = dict(succ_state)
            else:
                merged = _join_states(previous, succ_state)
                join_counts[edge.dst] = join_counts.get(edge.dst, 0) + 1
                successor_kind = cfg.nodes[edge.dst].kind
                # Widen at loop heads (condition/switch nodes) so loops
                # converge while branch refinement downstream stays
                # precise; the high fallback bound catches goto cycles
                # that bypass any condition node.
                should_widen = (
                    join_counts[edge.dst] > _WIDEN_AFTER
                    and successor_kind in (NodeKind.CONDITION,
                                           NodeKind.SWITCH)
                ) or join_counts[edge.dst] > _WIDEN_AFTER * 8
                if should_widen:
                    merged = {
                        name: previous.get(name, Interval.top()).widen(
                            merged[name])
                        for name in merged
                    }
            if previous is None or not _states_equal(previous, merged):
                in_states[edge.dst] = merged
                successor = cfg.nodes[edge.dst]
                if successor not in worklist:
                    worklist.append(successor)
    return in_states
