"""Unit tests for the C lexer."""

from repro.lang.lexer import KEYWORDS, Lexer, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "hello"

    def test_keyword_recognised(self):
        (tok,) = tokenize("while")[:-1]
        assert tok.kind is TokenKind.KEYWORD

    def test_underscore_identifier(self):
        (tok,) = tokenize("_my_var2")[:-1]
        assert tok.kind is TokenKind.IDENT

    def test_all_keywords_lex_as_keywords(self):
        for keyword in KEYWORDS:
            (tok,) = tokenize(keyword)[:-1]
            assert tok.kind is TokenKind.KEYWORD, keyword

    def test_decimal_number(self):
        (tok,) = tokenize("12345")[:-1]
        assert tok.kind is TokenKind.NUMBER
        assert tok.text == "12345"

    def test_hex_number(self):
        (tok,) = tokenize("0xDEADbeef")[:-1]
        assert tok.text == "0xDEADbeef"

    def test_float_number(self):
        (tok,) = tokenize("3.25")[:-1]
        assert tok.kind is TokenKind.NUMBER

    def test_float_with_exponent(self):
        (tok,) = tokenize("1.5e-3")[:-1]
        assert tok.text == "1.5e-3"

    def test_number_suffixes(self):
        (tok,) = tokenize("42UL")[:-1]
        assert tok.text == "42UL"

    def test_string_literal(self):
        (tok,) = tokenize('"hi there"')[:-1]
        assert tok.kind is TokenKind.STRING
        assert tok.text == '"hi there"'

    def test_string_with_escapes(self):
        (tok,) = tokenize(r'"a\"b\n"')[:-1]
        assert tok.kind is TokenKind.STRING

    def test_char_literal(self):
        (tok,) = tokenize("'x'")[:-1]
        assert tok.kind is TokenKind.CHAR

    def test_unterminated_string_stops_at_newline(self):
        toks = tokenize('"oops\nint')
        assert toks[0].kind is TokenKind.STRING
        assert any(t.text == "int" for t in toks)


class TestPunctuators:
    def test_maximal_munch_arrow(self):
        assert texts("a->b") == ["a", "->", "b"]

    def test_maximal_munch_shift_assign(self):
        assert texts("a <<= 2") == ["a", "<<=", "2"]

    def test_increment_vs_plus(self):
        assert texts("a++ + b") == ["a", "++", "+", "b"]

    def test_ellipsis(self):
        assert texts("...") == ["..."]

    def test_comparison_operators(self):
        assert texts("a<=b>=c==d!=e") == \
            ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e"]


class TestComments:
    def test_line_comment_dropped_by_default(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_dropped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_keep_comments_flag(self):
        toks = tokenize("a // hi", keep_comments=True)
        assert any(t.kind is TokenKind.COMMENT for t in toks)

    def test_multiline_block_comment(self):
        assert texts("a /* line1\nline2 */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        toks = tokenize("a /* never ends", keep_comments=True)
        assert toks[0].text == "a"
        assert toks[1].kind is TokenKind.COMMENT


class TestPositions:
    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [(t.text, t.line) for t in toks[:-1]] == \
            [("a", 1), ("b", 2), ("c", 3)]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].col == 1
        assert toks[1].col == 4

    def test_columns_reset_after_newline(self):
        toks = tokenize("aa\nbb")
        assert toks[1].col == 1


class TestErrorTokens:
    def test_unknown_byte_becomes_error_token(self):
        toks = tokenize("a @ b")
        assert toks[1].kind is TokenKind.ERROR

    def test_lexer_never_raises_on_binary_garbage(self):
        tokenize("\x00\xff\x01 int \x7f")


class TestHelpers:
    def test_is_keyword_helper(self):
        tok = Token(TokenKind.KEYWORD, "if", 1, 1)
        assert tok.is_keyword("if", "else")
        assert not tok.is_keyword("while")

    def test_is_punct_helper(self):
        tok = Token(TokenKind.PUNCT, "{", 1, 1)
        assert tok.is_punct("{")
        assert not tok.is_punct("}")

    def test_lexer_streaming_matches_tokenize(self):
        source = "int main() { return 0; }"
        streamed = [t for t in Lexer(source).tokens()]
        assert [t.text for t in streamed] == \
            [t.text for t in tokenize(source)]
