"""Tests for gadget labeling and the k-fold mislabel audit."""

from repro.lang.callgraph import analyze
from repro.slicing.gadget import classic_gadget
from repro.slicing.labeling import (MislabelAuditor, VulnerabilityManifest,
                                    label_gadget, label_gadgets)
from repro.slicing.special_tokens import find_special_tokens

SOURCE = """\
void f(char *data, int n) {
    char dest[8];
    strncpy(dest, data, n);
}
"""


def make_gadget():
    program = analyze(SOURCE, path="case.c")
    criterion = [c for c in find_special_tokens(program)
                 if c.token == "strncpy"][0]
    return classic_gadget(program, criterion)


class TestLabeling:
    def test_vulnerable_line_labels_one(self):
        manifest = VulnerabilityManifest("case.c", frozenset({3}))
        assert label_gadget(make_gadget(), manifest) == 1

    def test_untouched_line_labels_zero(self):
        manifest = VulnerabilityManifest("case.c", frozenset({99}))
        assert label_gadget(make_gadget(), manifest) == 0

    def test_missing_manifest_labels_zero(self):
        assert label_gadget(make_gadget(), None) == 0

    def test_label_gadgets_by_path(self):
        gadget = make_gadget()
        manifests = {"case.c": VulnerabilityManifest("case.c",
                                                     frozenset({3}))}
        (labeled,) = label_gadgets([gadget], manifests)
        assert labeled.label == 1

    def test_manifest_covers(self):
        manifest = VulnerabilityManifest("case.c", frozenset({2}))
        assert manifest.covers(make_gadget())


class TestMislabelAudit:
    def test_flipped_labels_detected(self):
        # Feature = the true label; classifier = majority vote of
        # identical features. Flip two labels; audit must find them.
        samples = [0] * 10 + [1] * 10
        labels = list(samples)
        labels[3] = 1   # mislabeled
        labels[15] = 0  # mislabeled

        def classify(train_x, train_y, test_x):
            return list(test_x)  # a perfect classifier on features

        auditor = MislabelAuditor(k=5, threshold=1)
        suspicious = auditor.audit(samples, labels, classify)
        assert 3 in suspicious and 15 in suspicious
        clean = set(range(20)) - {3, 15}
        assert not (set(suspicious) & clean)

    def test_relabel_applies_oracle(self):
        auditor = MislabelAuditor()
        labels = [0, 1, 0]
        updated = auditor.relabel(labels, [1], lambda i: 0)
        assert updated == [0, 0, 0]
        assert labels == [0, 1, 0]  # original untouched

    def test_too_few_samples_returns_empty(self):
        auditor = MislabelAuditor(k=5)
        assert auditor.audit([1, 2], [0, 1],
                             lambda a, b, c: [0] * len(c)) == []
