"""Paired bootstrap significance testing for detector comparisons.

The paper reports single-run metric tables; at reproduction scale the
differences are small enough that significance matters.  This module
implements the standard paired bootstrap over the *shared* evaluation
set: resample gadget indices with replacement, recompute both systems'
F1 on each resample, and report how often system A beats system B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .metrics import confusion_from, metrics_from

__all__ = ["BootstrapComparison", "paired_bootstrap"]


@dataclass(frozen=True)
class BootstrapComparison:
    """Outcome of a paired bootstrap between two systems.

    Attributes:
        f1_a / f1_b: point estimates on the full evaluation set.
        delta: f1_a - f1_b.
        p_value: two-sided bootstrap p-value for delta == 0.
        wins: fraction of resamples where A strictly beat B.
        ci_low / ci_high: 95% bootstrap CI of the delta.
    """

    f1_a: float
    f1_b: float
    delta: float
    p_value: float
    wins: float
    ci_low: float
    ci_high: float

    @property
    def significant(self) -> bool:
        """True when the 95% CI excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def _f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    return metrics_from(
        confusion_from(predictions.tolist(), labels.tolist())).f1


def paired_bootstrap(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    labels: Sequence[int],
    *,
    threshold: float = 0.5,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapComparison:
    """Compare two score vectors over the same labelled samples.

    Args:
        scores_a / scores_b: per-sample scores from the two systems,
            aligned with ``labels``.
        threshold: decision threshold applied to both.
        resamples: bootstrap iterations.

    Raises:
        ValueError: on length mismatch or empty input.
    """
    a = np.asarray(scores_a, dtype=float)
    b = np.asarray(scores_b, dtype=float)
    y = np.asarray(labels, dtype=int)
    if not (len(a) == len(b) == len(y)):
        raise ValueError("scores and labels must be aligned")
    if len(y) == 0:
        raise ValueError("empty evaluation set")

    pred_a = (a >= threshold).astype(int)
    pred_b = (b >= threshold).astype(int)
    point_a = _f1(pred_a, y)
    point_b = _f1(pred_b, y)
    observed = point_a - point_b

    if resamples <= 0:
        # No resampling evidence: the point deltas stand, but nothing
        # can be called significant (the CI is pinned to include 0 and
        # the p-value to 1), instead of crashing on empty percentiles.
        return BootstrapComparison(
            f1_a=point_a, f1_b=point_b, delta=observed,
            p_value=1.0, wins=0.0,
            ci_low=min(observed, 0.0), ci_high=max(observed, 0.0))

    rng = np.random.default_rng(seed)
    deltas = np.empty(resamples)
    wins = 0
    for i in range(resamples):
        idx = rng.integers(0, len(y), size=len(y))
        fa = _f1(pred_a[idx], y[idx])
        fb = _f1(pred_b[idx], y[idx])
        deltas[i] = fa - fb
        if fa > fb:
            wins += 1
    ci_low, ci_high = np.percentile(deltas, [2.5, 97.5])
    # Two-sided p-value: how often the centred bootstrap distribution
    # is at least as extreme as the observed delta.
    centred = deltas - deltas.mean()
    p_value = float(
        (np.abs(centred) >= abs(observed)).mean())
    return BootstrapComparison(
        f1_a=point_a, f1_b=point_b, delta=observed,
        p_value=p_value, wins=wins / resamples,
        ci_low=float(ci_low), ci_high=float(ci_high))
