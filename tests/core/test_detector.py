"""Tests for the SEVulDet public detector facade (train + detect +
persistence) and the attention hooks."""

import numpy as np
import pytest

from repro.core.attention_hook import attention_report, weights_by_line
from repro.core.config import SCALE_PRESETS
from repro.core.detector import SEVulDet
from repro.core.pipeline import encode_gadgets, extract_gadgets
from repro.datasets.cwe_templates import TEMPLATES, generate_case
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet


@pytest.fixture(scope="module")
def trained():
    detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
    detector.fit(generate_sard_corpus(80, seed=31))
    return detector


class TestDetector:
    def test_untrained_detect_raises(self):
        with pytest.raises(RuntimeError):
            SEVulDet().detect("int main() { return 0; }")

    def test_fit_returns_report(self):
        detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
        report = detector.fit(generate_sard_corpus(12, seed=5),
                              epochs=2)
        assert len(report.losses) == 2

    def test_fit_empty_corpus_raises(self):
        detector = SEVulDet(scale=SCALE_PRESETS["small"])
        with pytest.raises(ValueError):
            detector.fit([])

    def test_detect_vulnerable_case(self, trained):
        template = next(t for t in TEMPLATES
                        if t.name == "strcpy_stack_overflow")
        case = generate_case(template, vulnerable=True, seed=999)
        findings = trained.detect_case(case)
        assert findings, "known-vulnerable program not flagged"
        assert findings[0].score >= trained.threshold

    def test_findings_sorted_by_score(self, trained):
        case = generate_case(TEMPLATES[0], vulnerable=True, seed=999)
        findings = trained.detect_case(case)
        scores = [f.score for f in findings]
        assert scores == sorted(scores, reverse=True)

    def test_finding_locations_plausible(self, trained):
        template = next(t for t in TEMPLATES
                        if t.name == "strcpy_stack_overflow")
        case = generate_case(template, vulnerable=True, seed=998)
        findings = trained.detect_case(case)
        lines = case.source.split("\n")
        assert any("strcpy" in lines[f.line - 1] for f in findings)

    def test_detect_raw_source(self, trained):
        findings = trained.detect(
            "void f(char *d) {\nchar b[4];\nstrcpy(b, d);\n}\n"
            "int main() {\nchar l[64];\nfgets(l, 64, 0);\nf(l);\n"
            "return 0;\n}", path="probe.c")
        assert all(f.path == "probe.c" for f in findings)

    def test_flags_case_boolean(self, trained):
        case = generate_case(TEMPLATES[0], vulnerable=True, seed=997)
        assert trained.flags_case(case) == bool(
            trained.detect_case(case))

    def test_save_load_roundtrip(self, trained, tmp_path):
        path = tmp_path / "detector.npz"
        trained.save(path)
        restored = SEVulDet(scale=trained.scale)
        restored.load(path)
        case = generate_case(TEMPLATES[0], vulnerable=True, seed=996)
        original = {(f.line, round(f.score, 6))
                    for f in trained.detect_case(case)}
        loaded = {(f.line, round(f.score, 6))
                  for f in restored.detect_case(case)}
        assert original == loaded


class TestAttentionHooks:
    @pytest.fixture(scope="class")
    def setup(self):
        corpus = generate_sard_corpus(20, seed=41)
        gadgets = extract_gadgets(corpus, keep_gadget=True)
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=1)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8,
                            pretrained=dataset.word2vec.vectors)
        return model, dataset

    def test_report_top_k(self, setup):
        model, dataset = setup
        report = attention_report(model, dataset.vocab,
                                  dataset.gadgets[0], top_k=5)
        assert len(report) == min(5, len(dataset.gadgets[0].tokens))
        weights = [t.weight for t in report]
        assert weights == sorted(weights, reverse=True)

    def test_percent_regularised_to_peak(self, setup):
        model, dataset = setup
        report = attention_report(model, dataset.vocab,
                                  dataset.gadgets[0], top_k=5)
        assert report[0].percent == 100.0
        assert all(0 < t.percent <= 100.0 for t in report)

    def test_weights_by_line_sums_to_one(self, setup):
        model, dataset = setup
        by_line = weights_by_line(model, dataset.vocab,
                                  dataset.gadgets[0])
        assert abs(sum(by_line.values()) - 1.0) < 1e-6

    def test_weights_by_line_requires_kept_gadget(self, setup):
        model, dataset = setup
        gadget = dataset.gadgets[0]
        bare = type(gadget)(tokens=gadget.tokens, label=gadget.label,
                            category=gadget.category,
                            case_name=gadget.case_name,
                            criterion=gadget.criterion,
                            kind=gadget.kind, gadget=None)
        with pytest.raises(ValueError):
            weights_by_line(model, dataset.vocab, bare)


class TestAttentionHookConsistency:
    def test_span_reconstruction_over_many_gadgets(self):
        """weights_by_line rebuilds per-line token spans with a fresh
        Normalizer; the reconstruction must agree with the stored token
        stream for every gadget, not just the case-study one."""
        from repro.core.attention_hook import weights_by_line
        from repro.core.pipeline import encode_gadgets, extract_gadgets
        corpus = generate_sard_corpus(15, seed=47)
        gadgets = extract_gadgets(corpus, keep_gadget=True,
                                  deduplicate=False)
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        for gadget in gadgets[:25]:
            by_line = weights_by_line(model, dataset.vocab, gadget)
            assert abs(sum(by_line.values()) - 1.0) < 1e-6


class TestQuantization:
    """Reduced-precision detector weights (quantize/save/load/token)."""

    @pytest.fixture()
    def fresh(self, trained, tmp_path):
        """A private float32 copy of the trained detector — the module
        fixture is shared, so quantization must not mutate it."""
        path = tmp_path / "detector.npz"
        trained.save(path)
        detector = SEVulDet(scale=trained.scale)
        detector.load(path)
        return detector

    def test_float16_guardband_is_measured_and_small(self, fresh):
        calibration = generate_sard_corpus(10, seed=9091)
        report = fresh.quantize("float16", calibration)
        assert fresh.inference_dtype == "float16"
        assert report.calibration_samples > 0
        assert report.max_abs_delta < 5e-3
        assert report.flips == 0
        assert all(p.data.dtype == np.float16
                   for p in fresh.model.parameters())
        assert (report.weights_nbytes_after * 2
                == report.weights_nbytes_before)

    def test_int8_dequantizes_to_float32_grid(self, fresh):
        report = fresh.quantize("int8",
                                generate_sard_corpus(10, seed=9091))
        assert fresh.inference_dtype == "int8"
        assert report.per_tensor  # every weight matrix recorded
        assert report.payload_nbytes < report.weights_nbytes_before
        # per-tensor int8 is coarse (the embedding matrix dominates):
        # individual probabilities can move visibly, but the verdict
        # contract — no flips at the operating threshold — must hold
        assert report.mean_abs_delta < 2e-2
        assert report.flips == 0
        assert all(p.data.dtype == np.float32
                   for p in fresh.model.parameters())

    def test_config_token_depends_on_inference_dtype(self, fresh):
        before = fresh.config_token()
        fresh.inference_dtype = "int8"  # tag alone must miss caches
        assert fresh.config_token() != before

    def test_double_quantization_raises(self, fresh):
        fresh.quantize("float16")
        with pytest.raises(ValueError, match="already float16"):
            fresh.quantize("int8")
        # re-applying the same dtype is allowed (idempotent)
        fresh.quantize("float16")

    def test_unknown_dtype_rejected(self, fresh):
        with pytest.raises(ValueError):
            fresh.quantize("bfloat16")

    def test_quantized_save_load_roundtrip(self, fresh, tmp_path):
        fresh.quantize("float16")
        saved_state = {k: v.copy()
                       for k, v in fresh.model.state_dict().items()}
        path = tmp_path / "f16.npz"
        fresh.save(path)
        restored = SEVulDet(scale=fresh.scale)
        restored.load(path)
        assert restored.inference_dtype == "float16"
        for key, value in restored.model.state_dict().items():
            assert value.dtype == saved_state[key].dtype, key
            assert np.array_equal(value, saved_state[key]), key
        case = generate_case(TEMPLATES[0], vulnerable=True, seed=995)
        original = [(f.line, f.score) for f in fresh.detect_case(case)]
        loaded = [(f.line, f.score)
                  for f in restored.detect_case(case)]
        assert original == loaded

    def test_scan_service_quantizes_and_keys_cache(self, fresh,
                                                   trained):
        from repro.core.serve import ScanService

        calibration = generate_sard_corpus(6, seed=9091)
        with ScanService(fresh, workers=1, dtype="float16",
                         calibration=calibration) as service:
            assert fresh.inference_dtype == "float16"
            assert fresh.quantization_report is not None
            assert service.config_token != trained.config_token()
            case = generate_case(TEMPLATES[0], vulnerable=True,
                                 seed=994)
            verdict = service.scan_case(case)
            assert verdict.status in ("flagged", "clean")
