"""The paper's evaluation protocol: gadget-level five-fold CV.

Section IV-B: "For each category in our prepared dataset, we randomly
select 30,000 path-sensitive code gadgets and divide them into five
equal parts for five-fold cross-validation."  This module runs that
protocol at any scale: sample gadgets, stratified k-fold split, train a
fresh model per fold, aggregate the fold metrics.

The driver is built on the stage engine: pass ``cases`` (plus an
optional shared :class:`~repro.core.engine.RunContext`) and extraction
runs through the context's gadget cache — repeated protocol runs over
the same corpus (ablations, threshold sweeps) skip the frontend
entirely.  Each fold trains through its own
:class:`~repro.core.engine.TrainStage` with a private
:class:`~repro.core.telemetry.Telemetry`, surfaced per fold on
:class:`FoldResult` and aggregated by
:meth:`CrossValidationReport.summary`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..core.engine import (EncodeStage, Engine, ExtractStage,
                           RunContext, TrainStage)
from ..core.extract import LabeledGadget
from ..core.score import evaluate_classifier
from ..core.telemetry import Telemetry
from ..datasets.manifest import TestCase
from .crossval import stratified_kfold_indices
from .metrics import Metrics

__all__ = ["FoldResult", "CrossValidationReport", "cross_validate"]


@dataclass(frozen=True)
class FoldResult:
    """One fold's held-out metrics (plus its private telemetry)."""

    fold: int
    metrics: Metrics
    train_size: int
    test_size: int
    telemetry: Telemetry | None = None


@dataclass
class CrossValidationReport:
    """Aggregated k-fold outcome."""

    folds: list[FoldResult]

    def _values(self, pick: Callable[[Metrics], float]) -> np.ndarray:
        return np.array([pick(fold.metrics) for fold in self.folds])

    @property
    def mean_f1(self) -> float:
        return float(self._values(lambda m: m.f1).mean())

    @property
    def std_f1(self) -> float:
        return float(self._values(lambda m: m.f1).std())

    @property
    def mean_accuracy(self) -> float:
        return float(self._values(lambda m: m.accuracy).mean())

    @property
    def mean_precision(self) -> float:
        return float(self._values(lambda m: m.precision).mean())

    @property
    def mean_fpr(self) -> float:
        return float(self._values(lambda m: m.fpr).mean())

    @property
    def mean_fnr(self) -> float:
        return float(self._values(lambda m: m.fnr).mean())

    def summary(self) -> dict[str, float]:
        """Paper-style percentage summary across folds, plus mean
        per-fold train/evaluate wall-clock when telemetry is present."""
        summary = {
            "FPR(%)": round(self.mean_fpr * 100, 1),
            "FNR(%)": round(self.mean_fnr * 100, 1),
            "A(%)": round(self.mean_accuracy * 100, 1),
            "P(%)": round(self.mean_precision * 100, 1),
            "F1(%)": round(self.mean_f1 * 100, 1),
            "F1 std(%)": round(self.std_f1 * 100, 1),
        }
        timings = [fold.telemetry for fold in self.folds
                   if fold.telemetry is not None]
        if timings:
            summary["train(s)"] = round(float(np.mean(
                [t.seconds("train") for t in timings])), 2)
            summary["eval(s)"] = round(float(np.mean(
                [t.seconds("evaluate") for t in timings])), 2)
        return summary


def cross_validate(
    gadgets: Sequence[LabeledGadget] | None,
    model_builder: Callable[[int, np.ndarray | None], object],
    *,
    cases: Sequence[TestCase] | None = None,
    ctx: RunContext | None = None,
    kind: str = "path-sensitive",
    categories: tuple[str, ...] | None = None,
    k: int = 5,
    sample: int | None = None,
    dim: int = 16,
    w2v_epochs: int = 2,
    epochs: int = 16,
    batch_size: int = 16,
    lr: float = 3e-3,
    threshold: float = 0.5,
    seed: int = 0,
) -> CrossValidationReport:
    """Run the paper's k-fold protocol.

    Args:
        gadgets: the labelled gadget pool (pass this *or* ``cases``).
        model_builder: callable ``(vocab_size, pretrained) -> model``;
            called fresh for every fold.
        cases: corpus programs to extract the pool from, through the
            engine — with a cache-bearing ``ctx``, repeated runs hit
            the gadget cache instead of re-slicing.
        ctx: shared :class:`~repro.core.engine.RunContext` (cache,
            quarantine, telemetry, fault budget); a fresh default
            context is made when omitted.
        kind, categories: extraction settings for ``cases``.
        k: number of folds (paper: 5).
        sample: randomly subsample this many gadgets first (paper:
            30,000 per category); None keeps everything.
        threshold: decision threshold for the fold metrics.
    """
    if (gadgets is None) == (cases is None):
        raise ValueError("pass exactly one of gadgets or cases")
    if ctx is None:
        ctx = RunContext.create()
    rng = np.random.default_rng(seed)
    if cases is not None:
        chunks = Engine(ExtractStage(kind, categories),
                        ctx=ctx).run(cases)
        pool = [gadget for chunk in chunks for gadget in chunk]
    else:
        pool = list(gadgets)
    if sample is not None and sample < len(pool):
        picks = rng.choice(len(pool), size=sample, replace=False)
        pool = [pool[int(i)] for i in picks]
    if len(pool) < k:
        raise ValueError(f"cannot {k}-fold split {len(pool)} gadgets")

    # One vocabulary + embedding per run (training folds dominate the
    # corpus, so vocabulary leakage across folds is negligible and the
    # paper pre-trains word2vec on the full corpus the same way).
    dataset = Engine(EncodeStage(dim=dim, w2v_epochs=w2v_epochs,
                                 seed=seed), ctx=ctx).run(pool)
    labels = [g.label for g in pool]

    def build(encoded):
        model = model_builder(len(encoded.vocab),
                              encoded.word2vec.vectors)
        encoded.bind_embedding_aliases(model)
        return model

    folds: list[FoldResult] = []
    for fold_index, (train_idx, test_idx) in enumerate(
            stratified_kfold_indices(labels, k, rng)):
        fold_telemetry = Telemetry()
        # private telemetry; never resume fold training from a shared
        # checkpoint directory — folds have different sample sets
        fold_ctx = replace(ctx, telemetry=fold_telemetry,
                           checkpoint_dir=None, resume=False,
                           failures=[])
        stage = TrainStage(
            build, epochs=epochs, batch_size=batch_size, lr=lr,
            seed=seed + fold_index,
            samples_of=lambda encoded, idx=train_idx:
                [encoded.samples[i] for i in idx])
        result = next(iter(stage.pipe(iter([dataset]), fold_ctx)))
        test_samples = [dataset.samples[i] for i in test_idx]
        with fold_telemetry.stage("evaluate"):
            metrics = evaluate_classifier(result.model, test_samples,
                                          threshold=threshold)
        folds.append(FoldResult(fold_index, metrics,
                                len(train_idx), len(test_idx),
                                fold_telemetry))
    return CrossValidationReport(folds)
