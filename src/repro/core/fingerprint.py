"""Function-level fingerprints for diff-aware incremental scanning.

The case-level :class:`~repro.core.cache.GadgetCache` makes re-scans of
*unchanged files* free, but the CI workload the ROADMAP targets is a
commit touching a handful of functions inside large files — and a
whole-case key re-slices all of them.  This module provides the
function granularity underneath :mod:`repro.core.diffscan`:

* :func:`lexer_function_spans` — function spans (signature line to
  closing brace) recovered from the raw token stream, without parsing.
* :func:`function_fingerprints` — one sha256 per function over its
  ``(kind, text, line)`` token triples.  Comment and whitespace edits
  that keep token lines stable leave the fingerprint unchanged; a
  line-shifting edit invalidates every following function — correct,
  because findings carry absolute line numbers.
* :func:`changed_functions` — fingerprint diff between two versions of
  a file.
* :func:`invalidation_frontier` — edited functions plus transitive
  callers up to a bounded depth, the *reported* re-slice plan.
* :func:`component_digests` — one digest per weakly-connected
  call-graph component.  Cache keys fold this in rather than the bare
  function fingerprint: interprocedural slices (backward through
  callers, forward into callees, under a visitation-order-sensitive
  ``max_functions`` cap) can read any function in the component, so
  keying on the component is what makes cached per-function gadgets
  byte-identical to a cold re-slice.  It only ever *over*-invalidates.

Call edges come from :func:`repro.lang.callgraph.ast_call_edges` — a
superset of the PDG-derived graph, computable without building a PDG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..lang.lexer import Token, TokenKind, tokenize

__all__ = ["FINGERPRINT_VERSION", "DEFAULT_FRONTIER_DEPTH",
           "FunctionSpan", "lexer_function_spans",
           "function_fingerprints", "changed_functions",
           "invalidation_frontier", "weak_components",
           "component_digests"]

#: Bump when span recovery or fingerprint content changes — folded
#: into function-level cache keys so stale entries are never served.
FINGERPRINT_VERSION = 1

#: Default bound on the caller-expansion depth of the reported
#: invalidation frontier.  Cache-key *correctness* never depends on
#: this (keys cover the whole call component); the bound only shapes
#: the re-slice plan surfaced in diff reports and watch deltas.
DEFAULT_FRONTIER_DEPTH = 3


@dataclass(frozen=True)
class FunctionSpan:
    """One function's lexical extent.

    ``start_line``/``start_col`` point at the first token of the
    declaration (the return type), matching the parser's
    ``FunctionDef.line``; ``end_line``/``end_col`` point at the
    closing brace.  Adjacent functions may share a boundary *line*
    but never overlap in ``(line, col)`` space.
    """

    name: str
    start_line: int
    start_col: int
    end_line: int
    end_col: int

    def covers_line(self, line: int) -> bool:
        return self.start_line <= line <= self.end_line


def _match_forward(tokens: Sequence[Token], index: int,
                   open_text: str, close_text: str) -> int:
    """Index of the punctuator closing the one at ``index`` (or the
    last token when unbalanced — callers treat that as 'spans to
    EOF', which is the forgiving-lexer contract)."""
    depth = 0
    i = index
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind is TokenKind.PUNCT:
            if tok.text == open_text:
                depth += 1
            elif tok.text == close_text:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return len(tokens) - 1


def _declaration_start(tokens: Sequence[Token], name_index: int) -> int:
    """Walk back from a function's name over its type tokens.

    Every file-scope construct before a definition ends with ``;`` or
    ``}``, so the declaration run is the maximal preceding stretch of
    keywords, identifiers (typedef names), and ``*``.
    """
    start = name_index
    while start > 0:
        prev = tokens[start - 1]
        if prev.kind in (TokenKind.KEYWORD, TokenKind.IDENT) or \
                (prev.kind is TokenKind.PUNCT and prev.text == "*"):
            start -= 1
        else:
            break
    return start


def _function_token_runs(tokens: Sequence[Token]
                         ) -> list[tuple[str, int, int]]:
    """``(name, first_token_index, last_token_index)`` per function
    definition found by a depth-0 scan of the token stream."""
    runs: list[tuple[str, int, int]] = []
    depth = 0
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind is TokenKind.PUNCT and tok.text == "{":
            depth += 1
            i += 1
            continue
        if tok.kind is TokenKind.PUNCT and tok.text == "}":
            depth = max(0, depth - 1)
            i += 1
            continue
        if (depth == 0 and tok.kind is TokenKind.IDENT and i + 1 < n
                and tokens[i + 1].kind is TokenKind.PUNCT
                and tokens[i + 1].text == "("):
            close_paren = _match_forward(tokens, i + 1, "(", ")")
            after = close_paren + 1
            if (after < n and tokens[after].kind is TokenKind.PUNCT
                    and tokens[after].text == "{"):
                close_brace = _match_forward(tokens, after, "{", "}")
                runs.append((tok.text,
                             _declaration_start(tokens, i),
                             close_brace))
                i = close_brace + 1
                continue
            i = after  # prototype / macro-ish: keep scanning after ')'
            continue
        i += 1
    return runs


def lexer_function_spans(source: str) -> list[FunctionSpan]:
    """Function spans recovered from the token stream alone.

    Tolerant by construction (any byte sequence lexes): unparseable
    input yields whatever plausible spans the depth-0 scan finds,
    never an exception.  For parseable input the spans agree with the
    parser's ``FunctionDef.line`` / ``Block.end_line`` — the property
    ``tests/lang`` pins against generated programs.
    """
    tokens = tokenize(source)
    spans: list[FunctionSpan] = []
    for name, first, last in _function_token_runs(tokens):
        head, tail = tokens[first], tokens[last]
        spans.append(FunctionSpan(name, head.line, head.col,
                                  tail.line, tail.col))
    return spans


def function_fingerprints(source: str) -> dict[str, str]:
    """sha256 per function over its ``(kind, text, line)`` triples.

    Comments never participate (the lexer drops them), so a comment
    edit that keeps following tokens on their lines leaves every
    fingerprint unchanged.  Absolute line numbers *do* participate:
    findings and slicing criteria carry absolute lines, so an edit
    that shifts a function must invalidate it.  Duplicate definitions
    of one name fold into a single digest covering all of them.
    """
    tokens = tokenize(source)
    digests: dict[str, "hashlib._Hash"] = {}
    for name, first, last in _function_token_runs(tokens):
        digest = digests.get(name)
        if digest is None:
            digest = hashlib.sha256()
            digests[name] = digest
        for tok in tokens[first:last + 1]:
            digest.update(f"{tok.kind.name}\x1f{tok.text}\x1f"
                          f"{tok.line}\x1e".encode("utf-8"))
    return {name: digest.hexdigest()
            for name, digest in digests.items()}


def changed_functions(base_source: str, target_source: str) -> set[str]:
    """Function names whose fingerprint differs between two versions
    of a file (added and removed functions included)."""
    base = function_fingerprints(base_source)
    target = function_fingerprints(target_source)
    return {name for name in base.keys() | target.keys()
            if base.get(name) != target.get(name)}


def invalidation_frontier(edges: Mapping[str, Sequence[str]],
                          changed: Iterable[str],
                          depth: int = DEFAULT_FRONTIER_DEPTH
                          ) -> set[str]:
    """Edited functions plus transitive callers within ``depth`` hops.

    ``edges`` maps caller -> callees (:func:`~repro.lang.callgraph.
    ast_call_edges` output).  An edited callee can change any caller's
    interprocedural slice, so callers re-slice too; the depth bound
    keeps the reported plan proportional to the edit, while cache-key
    correctness rests on :func:`component_digests`.
    """
    callers: dict[str, set[str]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            callers.setdefault(callee, set()).add(caller)
    result = set(changed)
    frontier = set(result)
    for _ in range(max(0, depth)):
        grown: set[str] = set()
        for name in frontier:
            grown |= callers.get(name, set())
        grown -= result
        if not grown:
            break
        result |= grown
        frontier = grown
    return result


def weak_components(edges: Mapping[str, Sequence[str]]
                    ) -> dict[str, tuple[str, ...]]:
    """Weakly-connected call-graph components, one sorted member
    tuple per function name."""
    neighbours: dict[str, set[str]] = {name: set() for name in edges}
    for caller, callees in edges.items():
        for callee in callees:
            neighbours.setdefault(caller, set()).add(callee)
            neighbours.setdefault(callee, set()).add(caller)
    components: dict[str, tuple[str, ...]] = {}
    seen: set[str] = set()
    for name in neighbours:
        if name in seen:
            continue
        stack = [name]
        members: set[str] = set()
        while stack:
            current = stack.pop()
            if current in members:
                continue
            members.add(current)
            stack.extend(neighbours.get(current, ()))
        seen |= members
        frozen = tuple(sorted(members))
        for member in members:
            components[member] = frozen
    return components


def component_digests(fingerprints: Mapping[str, str],
                      edges: Mapping[str, Sequence[str]]
                      ) -> dict[str, str]:
    """One digest per function covering its whole call component.

    A function's digest folds in the fingerprint of every function it
    is weakly connected to: any edit inside the component changes the
    digest of every member, so cached per-function gadgets can never
    survive an edit that could have altered their interprocedural
    slice.  A function missing a lexer fingerprint (a span the
    depth-0 scan could not recover) hashes as the empty string, which
    simply ties its entry to the component's other members.
    """
    digests: dict[str, str] = {}
    component_cache: dict[tuple[str, ...], str] = {}
    for name, members in weak_components(edges).items():
        digest = component_cache.get(members)
        if digest is None:
            payload = hashlib.sha256()
            payload.update(f"fpv={FINGERPRINT_VERSION}".encode())
            for member in members:
                payload.update(
                    f"|{member}={fingerprints.get(member, '')}".encode())
            digest = payload.hexdigest()
            component_cache[members] = digest
        digests[name] = digest
    return digests
