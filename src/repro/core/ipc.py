"""Wire protocol for the scan server: JSON lines over a stream socket.

One request or response per line, UTF-8 JSON with sorted keys, ``\\n``
terminated — greppable with shell tools, diffable across runs, and
framed without any length-prefix bookkeeping.  The same bytes travel
over a unix-domain socket (the default for same-host clients: no port
to pick, filesystem permissions for free) or TCP.

Requests carry an ``op`` plus op-specific fields; every ``scan``
request carries a client-chosen ``id`` that its response echoes, so a
client may pipeline many scans on one connection and match responses
arriving out of submission order (the server's dispatcher pool makes
no ordering promise across requests).

:class:`ScanClient` is the blocking client used by ``scan --connect``,
the benchmark harness, and the tests.  The wire format stays dumb —
a socket, a line buffer, and JSON — but the client self-heals under a
:class:`RetryPolicy` (the default): a dropped connection triggers
transparent reconnect with jittered exponential backoff and
resubmission of every still-unanswered id (idempotent: verdicts are
cached server-side by fingerprint + config token, so a re-scored
duplicate is byte-identical and cheap), and a ``shed`` response is
retried after the server's ``retry_after_ms`` hint instead of being
surfaced as a dead end.  ``retry=None`` restores the fail-fast
pre-PR-8 behavior the admission-control tests pin.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["MAX_LINE_BYTES", "ProtocolError", "RetryPolicy",
           "encode_message", "decode_message", "read_message",
           "connect", "ScanClient"]

#: Upper bound on one message line. Scan requests embed whole source
#: files, so this is generous — but a peer that streams an unbounded
#: line is broken or hostile, and the reader must not buffer forever.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, oversized, or truncated protocol message."""


def encode_message(message: dict) -> bytes:
    """One message as a complete wire line (bytes include the LF)."""
    line = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit")
    return line


def decode_message(line: bytes) -> dict:
    """Parse one wire line back into a message dict."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}")
    return message


def read_message(reader) -> dict | None:
    """Read one message from a buffered binary reader; None on EOF.

    ``reader`` is anything with ``readline(limit)`` semantics
    (``socket.makefile('rb')``, an ``io.BufferedReader``, ...).
    """
    line = reader.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("peer sent an oversized message line")
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-message")
    return decode_message(line)


def connect(address: str, timeout: float | None = None
            ) -> socket.socket:
    """Open a stream socket to ``address``.

    ``host:port`` (or ``[v6::addr]:port``) dials TCP; anything else is
    a unix-domain socket path.
    """
    host, port = _split_hostport(address)
    if host is not None:
        sock = socket.create_connection((host, port), timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    return sock


def _split_hostport(address: str) -> tuple[str | None, int]:
    """``('host', port)`` for TCP addresses, ``(None, 0)`` for paths.

    A path is anything without a ``:`` or whose final segment is not
    an integer port — ``./sock:dir/x`` stays a path.
    """
    if address.startswith(("/", ".")) or ":" not in address:
        return None, 0
    host, _, port = address.rpartition(":")
    try:
        number = int(port)
    except ValueError:
        return None, 0
    return host.strip("[]") or "127.0.0.1", number


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side self-healing knobs.

    ``attempts`` bounds connect/reconnect tries per disruption, spaced
    ``base_delay * 2**attempt`` seconds (capped at ``max_delay``) with
    ``±jitter`` fractional randomization so a fleet of clients does
    not reconnect in lockstep.  ``shed_retries`` bounds how many times
    one request is resubmitted after ``shed`` responses before the
    shed is surfaced to the caller.  ``max_disruptions`` bounds total
    connection losses absorbed inside one :meth:`ScanClient.scan_batch`
    call — a flapping server eventually errors out instead of looping
    forever.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    shed_retries: int = 4
    max_disruptions: int = 64


class ScanClient:
    """Blocking JSONL client for one scan-server connection.

    Not thread-safe: use one client per thread (the server handles any
    number of connections).  Supports pipelining via
    :meth:`scan_batch`: all requests are written before any response
    is read, which is what actually exercises the server's batching
    and admission control.

    With the default ``retry`` policy the client is self-healing (see
    the module docstring); pass ``retry=None`` for the fail-fast
    single-connection behavior.  :attr:`reconnects`,
    :attr:`shed_retried`, and :attr:`backoff_seconds` count what the
    healing cost.
    """

    def __init__(self, address: str, timeout: float | None = 60.0,
                 retry: RetryPolicy | None = RetryPolicy()):
        self.address = address
        self.retry = retry
        self.reconnects = 0
        self.shed_retried = 0
        self.backoff_seconds = 0.0
        self._timeout = timeout
        self._rng = random.Random()
        attempt = 0
        while True:
            try:
                self._open()
                return
            except OSError:
                if retry is None or attempt >= retry.attempts - 1:
                    raise
                self._sleep(self._delay(attempt))
                attempt += 1

    # -- plumbing ------------------------------------------------------------

    def _open(self) -> None:
        self._sock = connect(self.address, timeout=self._timeout)
        self._reader = self._sock.makefile("rb")

    def _delay(self, attempt: int) -> float:
        delay = min(self.retry.max_delay,
                    self.retry.base_delay * (2 ** attempt))
        if self.retry.jitter:
            delay *= 1 + self.retry.jitter * (
                self._rng.random() * 2 - 1)
        return delay

    def _sleep(self, seconds: float) -> None:
        self.backoff_seconds += seconds
        time.sleep(seconds)

    def _reconnect(self) -> None:
        """Close the dead socket and dial again under the policy."""
        self.close()
        last: OSError | None = None
        for attempt in range(self.retry.attempts):
            self._sleep(self._delay(attempt))
            try:
                self._open()
                self.reconnects += 1
                return
            except OSError as error:
                last = error
        raise ProtocolError(
            f"could not reconnect to {self.address} after "
            f"{self.retry.attempts} attempts: {last}") from last

    def send(self, message: dict) -> None:
        self._sock.sendall(encode_message(message))

    def receive(self) -> dict:
        message = read_message(self._reader)
        if message is None:
            raise ProtocolError("server closed the connection")
        return message

    def request(self, message: dict) -> dict:
        """One synchronous round trip (one reconnect+resend cycle
        under the retry policy — safe because every op here is
        idempotent or answered before it acts)."""
        try:
            self.send(message)
            return self.receive()
        except (ProtocolError, OSError):
            if self.retry is None:
                raise
            self._reconnect()
            self.send(message)
            return self.receive()

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:  # pragma: no cover - already dead
            pass
        finally:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def health(self) -> dict:
        return self.request({"op": "health"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def reload(self, model: str | Path | None = None) -> dict:
        message: dict = {"op": "reload"}
        if model is not None:
            message["model"] = str(model)
        return self.request(message)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def scan_source(self, name: str, source: str,
                    request_id: str = "0") -> dict:
        """Scan one in-memory source file (single round trip)."""
        return self.request({"op": "scan", "id": request_id,
                             "name": name, "source": source})

    def scan_batch(self, requests: list[dict],
                   deadline_ms: int | None = None) -> list[dict]:
        """Pipeline many scan requests; responses in request order.

        Each request dict needs ``name`` and ``source``; ids are
        assigned positionally.  All requests are written up front, the
        responses (which may arrive in any order) are matched back by
        id — including ``shed`` rejections, which the server sends
        immediately while earlier requests are still in flight.

        Under the retry policy no verdict is lost to a disruption: a
        dropped connection reconnects (jittered exponential backoff)
        and resubmits every still-unanswered id — idempotent, because
        the server caches verdicts by fingerprint + config token — and
        ``shed`` responses are retried after the server's
        ``retry_after_ms`` hint, up to ``shed_retries`` times each
        before the shed is returned as the answer.
        """
        payloads = {}
        for index, request in enumerate(requests):
            payload = {"op": "scan", "id": str(index),
                       "name": request["name"],
                       "source": request["source"]}
            if deadline_ms is not None:
                payload["deadline_ms"] = deadline_ms
            payloads[str(index)] = payload
        if self.retry is None:
            return self._scan_batch_once(payloads)
        return self._scan_batch_retrying(payloads)

    def _scan_batch_once(self, payloads: dict[str, dict]
                         ) -> list[dict]:
        """Fail-fast pipelining: one connection, no resubmission."""
        for payload in payloads.values():
            self.send(payload)
        by_id: dict[str, dict] = {}
        for _ in payloads:
            response = self.receive()
            by_id[str(response.get("id"))] = response
        missing = [rid for rid in payloads if rid not in by_id]
        if missing:
            raise ProtocolError(
                f"server never answered request id(s) {missing}")
        return [by_id[str(i)] for i in range(len(payloads))]

    def _scan_batch_retrying(self, payloads: dict[str, dict]
                             ) -> list[dict]:
        answered: dict[str, dict] = {}
        unanswered = dict(payloads)
        shed_counts: dict[str, int] = {}
        to_send = sorted(unanswered, key=int)
        disruptions = 0
        while unanswered:
            try:
                while to_send:
                    self.send(unanswered[to_send[0]])
                    to_send.pop(0)
                response = self.receive()
            except (ProtocolError, OSError):
                disruptions += 1
                if disruptions > self.retry.max_disruptions:
                    raise
                # answers in flight on the dead connection are gone;
                # reconnect and resubmit every unanswered id (the
                # server's verdict cache makes duplicates cheap and
                # byte-identical)
                self._reconnect()
                to_send = sorted(unanswered, key=int)
                continue
            rid = str(response.get("id"))
            if rid not in unanswered:
                continue  # stale duplicate from a resubmission
            if response.get("status") == "shed" and \
                    shed_counts.get(rid, 0) < self.retry.shed_retries:
                shed_counts[rid] = shed_counts.get(rid, 0) + 1
                self.shed_retried += 1
                hint = response.get("retry_after_ms")
                seconds = (float(hint) / 1000.0
                           if isinstance(hint, (int, float))
                           else 0.1)
                self._sleep(min(max(seconds, 0.0), 1.0))
                to_send.append(rid)
                continue
            answered[rid] = response
            del unanswered[rid]
        return [answered[str(i)] for i in range(len(payloads))]

    def scan_paths(self, paths: list[str | Path]) -> list[dict]:
        """Read local files and scan them remotely (order preserved)."""
        requests = [
            {"name": str(path),
             "source": Path(path).read_text(encoding="utf-8",
                                            errors="replace")}
            for path in paths
        ]
        return self.scan_batch(requests) if requests else []
