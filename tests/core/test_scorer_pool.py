"""ScorerPool: the shared process-pool scoring substrate.

One pool implementation backs both the scan server's process backend
and ``ScoreStage(workers=N)``; the contract here is byte-identity with
the serial :func:`~repro.core.score.predict_proba` path plus fail-fast
behavior when workers die.
"""

import numpy as np
import pytest

from repro.core.encode import encode_gadgets
from repro.core.engine import Engine, ScoreStage
from repro.core.extract import extract_gadgets
from repro.core.score import predict_proba
from repro.core.scorer_pool import (PoolBroken, RestartPolicy,
                                    ScorerPool, net_spec)
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet


@pytest.fixture(scope="module")
def dataset():
    corpus = generate_sard_corpus(20, seed=23)
    return encode_gadgets(extract_gadgets(corpus), dim=8,
                          w2v_epochs=0, seed=11)


@pytest.fixture(scope="module")
def model(dataset):
    net = SEVulDetNet(len(dataset.vocab), dim=8, channels=8,
                      pretrained=dataset.word2vec.vectors, seed=3)
    dataset.bind_embedding_aliases(net)
    net.eval()
    return net


@pytest.fixture(scope="module")
def samples(dataset):
    return [g.sample(dataset.vocab) for g in dataset.gadgets]


def test_net_spec_rebuilds_architecture(model):
    spec = net_spec(model)
    clone = SEVulDetNet(spec.pop("vocab_size"), **spec)
    assert sorted(clone.state_dict()) == sorted(model.state_dict())
    for key, value in clone.state_dict().items():
        assert value.shape == model.state_dict()[key].shape, key


class TestScoreSamples:
    def test_byte_identical_to_serial_path(self, model, samples):
        expected = predict_proba(model, samples)
        with ScorerPool(model, workers=2) as pool:
            scores = pool.score_samples(samples)
            assert scores.dtype == expected.dtype
            assert np.array_equal(scores, expected)
            # a second round reuses the same workers
            assert np.array_equal(pool.score_samples(samples),
                                  expected)

    def test_empty_input_returns_empty(self, model):
        with ScorerPool(model, workers=1) as pool:
            scores = pool.score_samples([])
            assert scores.shape == (0,)

    def test_rejects_invalid_worker_count(self, model):
        with pytest.raises(ValueError, match="workers"):
            ScorerPool(model, workers=0)


class TestFailureModes:
    def test_worker_death_fails_instead_of_hanging(self, model,
                                                   samples):
        # max_restarts=0 pins the fail-fast contract: with
        # self-healing disabled, total worker loss must raise a clear
        # PoolBroken instead of hanging (or silently respawning).
        pool = ScorerPool(model, workers=1,
                          restart_policy=RestartPolicy(max_restarts=0))
        try:
            for proc in pool._procs:
                proc.terminate()
                proc.join(timeout=10.0)
            with pytest.raises(PoolBroken,
                               match="process scoring failed"):
                pool.score_samples(samples)
            assert pool.broken is not None
            assert pool.health()["status"] == "broken"
            with pytest.raises(PoolBroken,
                               match="scorer workers died"):
                pool.submit(np.zeros((1, 4), dtype=np.int64), None,
                            lambda *args: None)
        finally:
            pool.close()

    def test_submit_after_close_raises(self, model):
        pool = ScorerPool(model, workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(np.zeros((1, 4), dtype=np.int64), None,
                        lambda *args: None)


class TestScoreStageWorkers:
    def test_workers_mode_matches_serial_stage(self, dataset, model):
        gadgets = dataset.gadgets
        serial = Engine(ScoreStage(model, dataset.vocab),
                        chunk_size=7).run(gadgets)
        pooled = Engine(ScoreStage(model, dataset.vocab, workers=1),
                        chunk_size=7).run(gadgets)
        assert len(serial) == len(pooled)
        for (left_g, left_s), (right_g, right_s) in zip(serial,
                                                        pooled):
            assert left_g == right_g
            assert np.array_equal(left_s, right_s)

    def test_pool_is_released_on_close(self, dataset, model):
        stage = ScoreStage(model, dataset.vocab, workers=1)
        Engine(stage, chunk_size=7).run(dataset.gadgets)
        assert stage._pool is None
