"""Unit tests for the deterministic fault-injection harness."""

import os
import time

import pytest

from repro.testing import faults


class TestSpecParsing:
    def test_parse_rules(self):
        plan = faults._parse(
            "raise@case:x.c:RecursionError; hang@case:y.c:5;"
            "crash@case:z.c; corrupt@shard:*")
        actions = [rule.action for rule in plan.rules]
        assert actions == ["raise", "hang", "crash", "corrupt"]
        assert plan.rules[0].arg == "RecursionError"
        assert plan.for_site("shard") == (plan.rules[3],)

    @pytest.mark.parametrize("spec", [
        "explode@case:x.c",   # unknown action
        "raise@case",         # no match key
        "raise@:x.c",         # no site
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            faults._parse(spec)

    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.plan() is None
        faults.fire("case", "anything.c")  # must be a no-op


class TestFiring:
    def test_raise_matches_exact_key_only(self):
        with faults.injected("raise@case:x.c:RecursionError"):
            faults.fire("case", "other.c")
            with pytest.raises(RecursionError):
                faults.fire("case", "x.c")

    def test_unknown_exception_falls_back_to_runtime_error(self):
        with faults.injected("raise@case:x.c:NoSuchException"):
            with pytest.raises(RuntimeError):
                faults.fire("case", "x.c")

    def test_wildcard_matches_everything(self):
        with faults.injected("raise@case:*"):
            with pytest.raises(RuntimeError):
                faults.fire("case", "whatever.c")

    def test_nth_visit_matching(self):
        with faults.injected("raise@case:#3"):
            faults.fire("case", "a.c")
            faults.fire("case", "b.c")
            with pytest.raises(RuntimeError):
                faults.fire("case", "c.c")
            faults.fire("case", "d.c")  # past the Nth visit: quiet

    def test_visit_range_matching(self):
        with faults.injected("raise@case:#2-3"):
            faults.fire("case", "a.c")
            with pytest.raises(RuntimeError):
                faults.fire("case", "b.c")
            with pytest.raises(RuntimeError):
                faults.fire("case", "c.c")
            faults.fire("case", "d.c")  # past the range: quiet

    def test_sites_are_independent(self):
        with faults.injected("raise@train-batch:0.0"):
            faults.fire("case", "0.0")  # same key, different site
            with pytest.raises(RuntimeError):
                faults.fire("train-batch", "0.0")

    def test_hang_sleeps_for_its_argument(self):
        with faults.injected("hang@case:slow.c:0.05"):
            start = time.perf_counter()
            faults.fire("case", "slow.c")
            assert 0.04 <= time.perf_counter() - start < 2.0

    def test_crash_is_inert_in_the_parent_process(self):
        # os._exit here would kill pytest itself; the rule must only
        # fire inside pool workers
        with faults.injected("crash@case:x.c"):
            faults.fire("case", "x.c")


class TestDrop:
    def test_should_drop_counts_visits(self):
        with faults.injected("drop@server-conn:#2"):
            assert not faults.should_drop("server-conn", "1")
            assert faults.should_drop("server-conn", "1")
            assert not faults.should_drop("server-conn", "1")

    def test_fire_ignores_drop_rules(self):
        # drop is a boolean site queried via should_drop, never an
        # exception raised out of fire()
        with faults.injected("drop@case:*"):
            faults.fire("case", "x.c")

    def test_no_plan_never_drops(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert not faults.should_drop("server-conn", "1")


class TestCorruptFile:
    def test_matching_rule_garbles_the_file(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text('{"ok": 1}\n')
        with faults.injected("corrupt@shard:*"):
            assert faults.corrupt_file("shard", "key", shard)
        assert b"corruption" in shard.read_bytes()

    def test_no_rule_leaves_the_file_alone(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text('{"ok": 1}\n')
        with faults.injected("raise@case:x.c"):
            assert not faults.corrupt_file("shard", "key", shard)
        assert shard.read_text() == '{"ok": 1}\n'


class TestInjectedScope:
    def test_env_restored_and_visits_reset(self):
        before = os.environ.get(faults.ENV_VAR)
        with faults.injected("raise@case:#1"):
            with pytest.raises(RuntimeError):
                faults.fire("case", "a.c")
        assert os.environ.get(faults.ENV_VAR) == before
        with faults.injected("raise@case:#1"):
            # visit counter restarted: '#1' fires again
            with pytest.raises(RuntimeError):
                faults.fire("case", "b.c")

    def test_nesting_restores_outer_spec(self):
        with faults.injected("raise@case:outer.c"):
            with faults.injected("raise@case:inner.c"):
                faults.fire("case", "outer.c")  # inner spec active
            with pytest.raises(RuntimeError):
                faults.fire("case", "outer.c")
