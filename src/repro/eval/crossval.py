"""k-fold cross-validation splits (paper Section IV-B uses five-fold)."""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

__all__ = ["kfold_indices", "kfold_split", "stratified_kfold_indices"]

T = TypeVar("T")


def kfold_indices(count: int, k: int,
                  rng: np.random.Generator | None = None
                  ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs over ``count`` samples."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if count < k:
        raise ValueError(f"cannot {k}-fold split {count} samples")
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    folds = np.array_split(order, k)
    for index in range(k):
        test = folds[index]
        train = np.concatenate([folds[j] for j in range(k) if j != index])
        yield train, test


def stratified_kfold_indices(labels: Sequence[int], k: int,
                             rng: np.random.Generator | None = None
                             ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """k-fold that preserves the label ratio per fold."""
    labels_arr = np.asarray(labels)
    positives = np.flatnonzero(labels_arr == 1)
    negatives = np.flatnonzero(labels_arr == 0)
    if rng is not None:
        rng.shuffle(positives)
        rng.shuffle(negatives)
    pos_folds = np.array_split(positives, k)
    neg_folds = np.array_split(negatives, k)
    for index in range(k):
        test = np.concatenate([pos_folds[index], neg_folds[index]])
        train = np.concatenate(
            [pos_folds[j] for j in range(k) if j != index]
            + [neg_folds[j] for j in range(k) if j != index])
        yield train, test


def kfold_split(items: Sequence[T], k: int,
                rng: np.random.Generator | None = None
                ) -> Iterator[tuple[list[T], list[T]]]:
    """Like :func:`kfold_indices` but yields the items themselves."""
    for train_idx, test_idx in kfold_indices(len(items), k, rng):
        yield ([items[i] for i in train_idx],
               [items[i] for i in test_idx])
