"""RATS (Rough Auditing Tool for Security) simulacrum.

Like Flawfinder, RATS is a lexical pattern scanner; its database and
severity model differ (three severity tiers, extra allocation and TOCTOU
patterns), which in practice yields a different — but similarly rough —
FPR/FNR trade-off (paper Fig 5 plots both in the same quadrant).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.lexer import TokenKind, tokenize

__all__ = ["RatsFinding", "RATS_RULES", "RatsScanner"]


@dataclass(frozen=True)
class RatsFinding:
    line: int
    function: str
    severity: str  # 'High' | 'Medium' | 'Low'
    message: str


RATS_RULES: dict[str, tuple[str, str]] = {
    "gets": ("High", "gets is unsafe in all uses"),
    "strcpy": ("High", "check buffer boundaries"),
    "strcat": ("High", "check buffer boundaries"),
    "sprintf": ("High", "check format and buffer"),
    "vsprintf": ("High", "check format and buffer"),
    "printf": ("Medium", "format string risk"),
    "fprintf": ("Medium", "format string risk"),
    "scanf": ("High", "check field widths"),
    "sscanf": ("Medium", "check field widths"),
    "memcpy": ("Medium", "verify length computation"),
    "strncpy": ("Low", "verify NUL termination"),
    "strncat": ("Low", "verify remaining space"),
    "malloc": ("Low", "check return value"),
    "calloc": ("Low", "check return value"),
    "realloc": ("Medium", "verify aliasing on failure"),
    "free": ("Medium", "possible double free"),
    "alloca": ("Medium", "stack exhaustion"),
    "system": ("High", "shell metacharacter injection"),
    "popen": ("High", "shell metacharacter injection"),
    "getenv": ("Medium", "environment not trustworthy"),
    "rand": ("Medium", "not cryptographically strong"),
    "atoi": ("Low", "undefined on overflow"),
}


class RatsScanner:
    """Severity-thresholded lexical scanner.

    Args:
        min_severity: 'Low', 'Medium' or 'High'; verdict is vulnerable
            when any finding at/above this tier exists (RATS defaults
            to Medium).
    """

    name = "RATS"
    _ORDER = {"Low": 0, "Medium": 1, "High": 2}

    def __init__(self, min_severity: str = "Medium"):
        if min_severity not in self._ORDER:
            raise ValueError(f"unknown severity {min_severity!r}")
        self.min_severity = min_severity

    def scan(self, source: str) -> list[RatsFinding]:
        tokens = tokenize(source)
        threshold = self._ORDER[self.min_severity]
        findings: list[RatsFinding] = []
        for index, token in enumerate(tokens):
            if token.kind is not TokenKind.IDENT:
                continue
            rule = RATS_RULES.get(token.text)
            if rule is None:
                continue
            if not (index + 1 < len(tokens)
                    and tokens[index + 1].is_punct("(")):
                continue
            severity, message = rule
            if token.text in ("printf", "fprintf", "scanf", "sscanf"):
                fmt_index = index + 2 + (2 if token.text == "fprintf"
                                         else 0)
                if fmt_index < len(tokens) and \
                        tokens[fmt_index].kind is TokenKind.STRING:
                    severity = "Low"
            if self._ORDER[severity] >= threshold:
                findings.append(
                    RatsFinding(token.line, token.text, severity,
                                message))
        return findings

    def flags(self, source: str) -> bool:
        return bool(self.scan(source))
