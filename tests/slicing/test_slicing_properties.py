"""Property-based and dataset-level invariants of the gadget machinery."""

import pytest
from hypothesis import given, settings

from repro.core.pipeline import extract_gadgets
from repro.datasets.cwe_templates import TEMPLATES, generate_case
from repro.lang.callgraph import analyze
from repro.slicing.gadget import classic_gadget
from repro.slicing.normalize import Normalizer, normalize_gadget
from repro.slicing.path_sensitive import path_sensitive_gadget
from repro.slicing.special_tokens import find_special_tokens

from ..lang.test_properties import random_programs

GUARD_TEMPLATE = next(t for t in TEMPLATES
                      if t.name == "guard_placement_strncpy")


class TestFig1DatasetProperty:
    """The Fig 1 identity must hold for every *generated* pair too:
    same-seed vulnerable/patched guard-placement cases have identical
    classic gadgets, distinct path-sensitive gadgets, and different
    labels — the contradiction that caps any classic-gadget learner at
    50% on this family."""

    @pytest.mark.parametrize("seed", range(1, 9))
    def test_generated_pairs(self, seed):
        bad = generate_case(GUARD_TEMPLATE, vulnerable=True, seed=seed)
        good = generate_case(GUARD_TEMPLATE, vulnerable=False,
                             seed=seed)

        def strncpy_gadgets(case, kind):
            gadgets = extract_gadgets([case], kind=kind,
                                      deduplicate=False)
            return [g for g in gadgets
                    if g.criterion.token == "strncpy"]

        (bad_cg,) = strncpy_gadgets(bad, "classic")
        (good_cg,) = strncpy_gadgets(good, "classic")
        assert bad_cg.tokens == good_cg.tokens, seed
        assert bad_cg.label == 1 and good_cg.label == 0

        (bad_ps,) = strncpy_gadgets(bad, "path-sensitive")
        (good_ps,) = strncpy_gadgets(good, "path-sensitive")
        assert bad_ps.tokens != good_ps.tokens, seed
        assert bad_ps.label == 1 and good_ps.label == 0


class TestStructuralInvariants:
    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_ps_lines_superset_of_classic(self, source):
        program = analyze(source)
        for criterion in find_special_tokens(program):
            classic = classic_gadget(program, criterion)
            sensitive = path_sensitive_gadget(program, criterion)
            assert set(classic.line_numbers()) <= \
                set(sensitive.line_numbers())

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_gadget_lines_sorted_within_function(self, source):
        program = analyze(source)
        for criterion in find_special_tokens(program):
            gadget = path_sensitive_gadget(program, criterion)
            by_function: dict[str, list[int]] = {}
            for line in gadget.lines:
                by_function.setdefault(line.function,
                                       []).append(line.line)
            for numbers in by_function.values():
                assert numbers == sorted(numbers)

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_criterion_line_always_present(self, source):
        program = analyze(source)
        for criterion in find_special_tokens(program):
            gadget = path_sensitive_gadget(program, criterion)
            assert criterion.line in gadget.line_numbers()

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_normalization_deterministic(self, source):
        program = analyze(source)
        for criterion in find_special_tokens(program)[:3]:
            gadget = path_sensitive_gadget(program, criterion)
            assert normalize_gadget(gadget).tokens == \
                normalize_gadget(gadget).tokens

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_normalized_symbols_dense(self, source):
        """varN symbols are issued densely from var1 upward."""
        program = analyze(source)
        for criterion in find_special_tokens(program)[:3]:
            gadget = path_sensitive_gadget(program, criterion)
            normalized = normalize_gadget(gadget)
            issued = sorted(set(normalized.var_map.values()))
            assert issued == [f"var{i + 1}"
                              for i in range(len(issued))]


class TestExtractionConsistency:
    @pytest.mark.parametrize("template", TEMPLATES[:6],
                             ids=lambda t: t.name)
    def test_extract_deterministic(self, template):
        case = generate_case(template, vulnerable=True, seed=3)
        first = extract_gadgets([case])
        second = extract_gadgets([case])
        assert [g.tokens for g in first] == [g.tokens for g in second]
        assert [g.label for g in first] == [g.label for g in second]

    def test_vulnerable_line_always_in_some_gadget(self):
        """Every marked flaw line is covered by at least one gadget —
        otherwise the flaw would be invisible to the detector."""
        for template in TEMPLATES:
            case = generate_case(template, vulnerable=True, seed=6)
            gadgets = extract_gadgets([case], deduplicate=False,
                                      keep_gadget=True)
            covered = set()
            for gadget in gadgets:
                assert gadget.gadget is not None
                covered.update(line.line for line in
                               gadget.gadget.lines)
            missing = case.vulnerable_lines - covered
            assert not missing, (template.name, missing)
