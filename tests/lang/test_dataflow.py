"""Tests for def/use extraction and reaching definitions."""

from repro.lang.cfg import build_cfg
from repro.lang.dataflow import (collect_def_use, data_dependences,
                                 reaching_definitions)
from repro.lang.parser import parse


def analyzed(body: str, params: str = "char *data, int n"):
    unit = parse(f"void f({params}) {{\n{body}\n}}")
    cfg = build_cfg(unit.functions[0])
    return cfg, collect_def_use(cfg)


def node_on_line(cfg, line):
    return next(x for x in cfg.statement_nodes() if x.line == line)


def dd_lines(cfg, def_use):
    return {(d.line, u.line, var)
            for d, u, var in data_dependences(cfg, def_use)}


class TestDefUse:
    def test_declaration_defines(self):
        cfg, du = analyzed("int a = n;")
        node = node_on_line(cfg, 2)
        assert "a" in du[node.id].strong_defs
        assert "n" in du[node.id].uses

    def test_plain_assignment_strong_def_no_use(self):
        cfg, du = analyzed("int a;\na = 5;")
        node = node_on_line(cfg, 3)
        assert "a" in du[node.id].strong_defs
        assert "a" not in du[node.id].uses

    def test_compound_assignment_reads_target(self):
        cfg, du = analyzed("int a = 0;\na += n;")
        node = node_on_line(cfg, 3)
        assert "a" in du[node.id].strong_defs
        assert "a" in du[node.id].uses

    def test_array_write_is_weak_def(self):
        cfg, du = analyzed("char buf[4];\nbuf[n] = 1;")
        node = node_on_line(cfg, 3)
        assert "buf" in du[node.id].weak_defs
        assert "buf" not in du[node.id].strong_defs
        assert "n" in du[node.id].uses

    def test_pointer_deref_write(self):
        cfg, du = analyzed("char *p = data;\n*p = 1;")
        node = node_on_line(cfg, 3)
        assert "p" in du[node.id].weak_defs

    def test_increment_defines(self):
        cfg, du = analyzed("n++;")
        node = node_on_line(cfg, 2)
        assert "n" in du[node.id].strong_defs

    def test_library_write_model_strncpy(self):
        cfg, du = analyzed("char dest[8];\nstrncpy(dest, data, n);")
        node = node_on_line(cfg, 3)
        assert "dest" in du[node.id].weak_defs
        assert {"data", "n"} <= du[node.id].uses

    def test_address_of_argument_is_weak_def(self):
        cfg, du = analyzed("int x = 0;\nscanf(\"%d\", &x);")
        node = node_on_line(cfg, 3)
        assert "x" in du[node.id].weak_defs

    def test_pointer_passed_to_user_function_weak_def(self):
        cfg, du = analyzed("char buf[8];\nfill(buf, n);")
        node = node_on_line(cfg, 3)
        assert "buf" in du[node.id].weak_defs

    def test_scalar_to_user_function_not_def(self):
        cfg, du = analyzed("helper(n);")
        node = node_on_line(cfg, 2)
        assert "n" not in du[node.id].weak_defs

    def test_entry_defines_parameters(self):
        cfg, du = analyzed("return;")
        assert {"data", "n"} <= du[cfg.entry.id].strong_defs

    def test_condition_uses(self):
        cfg, du = analyzed("if (n > 3) { return; }")
        cond = next(x for x in cfg.nodes.values() if x.label == "if")
        assert "n" in du[cond.id].uses

    def test_callee_names_recorded_not_used(self):
        cfg, du = analyzed("int a = strlen(data);")
        node = node_on_line(cfg, 2)
        assert "strlen" in du[node.id].called
        assert "strlen" not in du[node.id].uses

    def test_null_not_a_use(self):
        cfg, du = analyzed("char *p = NULL;")
        node = node_on_line(cfg, 2)
        assert "NULL" not in du[node.id].uses


class TestReachingDefinitions:
    def test_simple_chain(self):
        cfg, du = analyzed("int a = 1;\nint b = a;")
        assert (2, 3, "a") in dd_lines(cfg, du)

    def test_strong_def_kills(self):
        cfg, du = analyzed("int a = 1;\na = 2;\nint b = a;")
        deps = dd_lines(cfg, du)
        assert (3, 4, "a") in deps
        assert (2, 4, "a") not in deps

    def test_weak_def_does_not_kill(self):
        cfg, du = analyzed(
            "char buf[4];\nbuf[0] = 1;\nprintf(\"%s\", buf);")
        deps = dd_lines(cfg, du)
        assert (2, 4, "buf") in deps  # declaration still reaches
        assert (3, 4, "buf") in deps  # and so does the element write

    def test_branch_merge_both_defs_reach(self):
        cfg, du = analyzed(
            "int a;\nif (n) {\na = 1;\n} else {\na = 2;\n}\nint b = a;")
        deps = dd_lines(cfg, du)
        assert (4, 8, "a") in deps
        assert (6, 8, "a") in deps

    def test_loop_carried_dependence(self):
        cfg, du = analyzed("int s = 0;\nwhile (n) {\ns = s + 1;\n}")
        deps = dd_lines(cfg, du)
        assert (4, 4, "s") not in deps  # self-dep excluded
        assert (2, 4, "s") in deps

    def test_loop_variable_reaches_condition(self):
        cfg, du = analyzed("while (n) {\nn--;\n}")
        deps = dd_lines(cfg, du)
        assert (3, 2, "n") in deps  # decrement flows back to condition

    def test_param_def_reaches_use(self):
        cfg, du = analyzed("int a = n;")
        entry_deps = {(d.id, u.line, v)
                      for d, u, v in data_dependences(cfg, du)}
        assert (cfg.entry.id, 2, "n") in entry_deps

    def test_unreachable_code_gets_no_deps(self):
        cfg, du = analyzed("return;\nint a = n;")
        reach = reaching_definitions(cfg, du)
        dead = node_on_line(cfg, 3)
        assert reach[dead.id] == set()

    def test_no_duplicate_dependences(self):
        cfg, du = analyzed("int a = 1;\nint b = a + a;")
        triples = [(d.id, u.id, v)
                   for d, u, v in data_dependences(cfg, du)]
        assert len(triples) == len(set(triples))
