"""Hyper-parameter and scale configuration.

``FRAMEWORK_HYPERPARAMS`` reproduces paper Table IV verbatim.  Because
the offline substrate trains on numpy, experiments run at a configurable
scale: ``REPRO_SCALE`` in the environment selects ``small`` (default,
CI-sized), ``medium``, or ``paper`` presets controlling corpus sizes,
embedding width, epochs, and the BRNN time steps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["HyperParams", "FRAMEWORK_HYPERPARAMS", "Scale",
           "SCALE_PRESETS", "current_scale"]


@dataclass(frozen=True)
class HyperParams:
    """One framework's training hyper-parameters (paper Table IV)."""

    name: str
    dimension: int
    flexible_length: bool
    batch_size: int
    learning_rate: float
    dropout: float
    epochs: int

    def as_row(self) -> dict[str, object]:
        """Table IV row rendering."""
        return {
            "Parameters": self.name,
            "Dimension": self.dimension,
            "Flexible-length": "yes" if self.flexible_length else "no",
            "Batch size": self.batch_size,
            "Learning rate": self.learning_rate,
            "Dropout": self.dropout,
            "Epochs": self.epochs,
        }


#: Paper Table IV: VulDeePecker / SySeVR / SEVulDet.
FRAMEWORK_HYPERPARAMS: dict[str, HyperParams] = {
    "VulDeePecker": HyperParams("VulDeePecker", dimension=50,
                                flexible_length=False, batch_size=64,
                                learning_rate=0.001, dropout=0.5,
                                epochs=4),
    "SySeVR": HyperParams("SySeVR", dimension=30, flexible_length=False,
                          batch_size=16, learning_rate=0.002,
                          dropout=0.2, epochs=20),
    "SEVulDet": HyperParams("SEVulDet", dimension=30,
                            flexible_length=True, batch_size=16,
                            learning_rate=0.0001, dropout=0.2,
                            epochs=20),
}


@dataclass(frozen=True)
class Scale:
    """Experiment sizing preset.

    Attributes:
        name: preset identifier.
        cases_per_experiment: programs generated per corpus.
        dim: embedding width used in scaled training.
        channels: CNN channels.
        hidden: RNN hidden size per direction.
        epochs: training epochs.
        batch_size: minibatch size.
        time_steps: the BRNNs' fixed token length tau.
        w2v_epochs: word2vec pretraining epochs.
        learning_rate: scaled learning rate (higher than the paper's
            because training runs far fewer steps).
    """

    name: str
    cases_per_experiment: int
    dim: int
    channels: int
    hidden: int
    epochs: int
    batch_size: int
    time_steps: int
    w2v_epochs: int
    learning_rate: float = 0.003


SCALE_PRESETS: dict[str, Scale] = {
    "small": Scale("small", cases_per_experiment=200, dim=16,
                   channels=16, hidden=16, epochs=20, batch_size=16,
                   time_steps=80, w2v_epochs=2),
    "medium": Scale("medium", cases_per_experiment=400, dim=24,
                    channels=24, hidden=24, epochs=20, batch_size=16,
                    time_steps=120, w2v_epochs=3),
    "paper": Scale("paper", cases_per_experiment=2000, dim=30,
                   channels=32, hidden=32, epochs=20, batch_size=16,
                   time_steps=500, w2v_epochs=3, learning_rate=0.001),
}


def current_scale(default: str = "small") -> Scale:
    """The preset selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    preset = SCALE_PRESETS.get(name)
    if preset is None:
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; choose from "
            f"{sorted(SCALE_PRESETS)}")
    return preset
