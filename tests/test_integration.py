"""End-to-end integration tests spanning every subsystem.

These assert the *paper-level* behaviours: the Fig 1 identity, learning
separating vulnerable from patched programs, the static-tool ordering,
and the CVE detection matrix — each on small, CI-sized corpora.
"""

import numpy as np
import pytest

from repro.baselines.afl import AFLFuzzer
from repro.baselines.checkmarx import CheckmarxScanner
from repro.baselines.flawfinder import FlawfinderScanner
from repro.core.config import Scale
from repro.core.detector import SEVulDet
from repro.core.pipeline import extract_gadgets
from repro.datasets.sard import generate_sard_corpus
from repro.datasets.xen import CVE_CASES, generate_xen_corpus
from repro.eval.comparison import evaluate_static_tool
from repro.lang.interp import run_program

SMALLISH = Scale("smallish", cases_per_experiment=70, dim=16,
                 channels=16, hidden=16, epochs=16, batch_size=16,
                 time_steps=40, w2v_epochs=2)


@pytest.fixture(scope="module")
def detector():
    det = SEVulDet(scale=SMALLISH, seed=11)
    xen_templates = [case for case in generate_xen_corpus(50, seed=778)
                     if "cve" not in case.meta]
    det.fit(generate_sard_corpus(220, seed=61) + xen_templates)
    return det


class TestLearnedDetection:
    def test_generalises_to_unseen_programs(self, detector):
        held_out = generate_sard_corpus(30, seed=62)
        correct = 0
        for case in held_out:
            if detector.flags_case(case) == case.vulnerable:
                correct += 1
        assert correct / len(held_out) > 0.7

    def test_beats_lexical_scanner_on_program_verdicts(self, detector):
        held_out = generate_sard_corpus(30, seed=63)

        class Wrapper:
            name = "SEVulDet"

            def flags(self, source):
                findings = detector.detect(source)
                return bool(findings)

        learned = evaluate_static_tool(Wrapper(), held_out)
        lexical = evaluate_static_tool(FlawfinderScanner(), held_out)
        dataflow = evaluate_static_tool(CheckmarxScanner(), held_out)
        assert learned.f1 > lexical.f1
        assert learned.f1 > dataflow.f1


class TestGroundTruthConsistency:
    def test_labels_match_execution_oracle(self):
        """Gadget labels derive from manifests; manifests derive from
        templates; templates were validated against the interpreter.
        Spot-check the chain end to end."""
        cases = generate_sard_corpus(10, seed=64)
        gadgets = extract_gadgets(cases)
        by_case = {}
        for gadget in gadgets:
            by_case.setdefault(gadget.case_name, []).append(gadget)
        for case in cases:
            has_vulnerable_gadget = any(
                g.label == 1 for g in by_case.get(case.name, []))
            if case.vulnerable:
                assert has_vulnerable_gadget, case.name
            else:
                assert not has_vulnerable_gadget, case.name


class TestCVEMatrix:
    """Table VII's detection matrix, shrunk to CI size."""

    def test_sevuldet_detects_all_three(self, detector):
        for cve, build in CVE_CASES.items():
            case = build(vulnerable=True)
            gadgets = extract_gadgets([case], deduplicate=False)
            scores = detector.score_gadgets(gadgets)
            # the three CVE shapes exist in the training distribution
            # (infinite-loop and overflow templates), so the detector
            # should rank at least one gadget per case above 0.5
            assert scores.max() > 0.5, cve

    def test_afl_finds_two_of_three(self):
        found = {}
        for cve, build in CVE_CASES.items():
            report = AFLFuzzer(build(vulnerable=True).source,
                               max_execs=500, max_steps=4000,
                               seed=5).run()
            found[cve] = report.found_anything
        assert found["CVE-2016-9776"]
        assert found["CVE-2016-4453"]
        assert not found["CVE-2016-9104"]


class TestOracleEndToEnd:
    def test_interpreter_validates_detector_finding(self, detector):
        """Close the loop: a finding the detector reports corresponds
        to a program the interpreter can actually crash."""
        from repro.datasets.cwe_templates import TEMPLATES, generate_case
        template = next(t for t in TEMPLATES
                        if t.name == "strcpy_stack_overflow")
        case = generate_case(template, vulnerable=True, seed=777)
        assert detector.flags_case(case)
        result = run_program(case.source, stdin=b"A" * 60 + b"\n",
                             max_steps=20_000)
        assert result.crashed
