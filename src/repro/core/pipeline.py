"""End-to-end dataset preparation and training (paper Fig 2 glue).

The pipeline turns :class:`~repro.datasets.manifest.TestCase` programs
into labeled, normalized, encoded gadget samples (Steps I-IV's data
path) and provides the generic train/evaluate loops both the SEVulDet
model and the BRNN baselines share (Step V).
"""

from __future__ import annotations

import itertools
import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..datasets.manifest import TestCase
from ..embedding.vocab import Vocabulary
from ..embedding.word2vec import Word2Vec
from ..eval.metrics import Metrics, confusion_from, metrics_from
from ..lang.callgraph import analyze
from ..lang.parser import ParseError
from ..nn import (Adam, Module, Sample, bce_with_logits,
                  bucketed_batches, clip_grad_norm, fixed_length_batches,
                  no_grad, pad_or_truncate)
from ..slicing.gadget import CodeGadget, classic_gadget
from ..slicing.labeling import label_gadget
from ..slicing.normalize import NormalizedGadget, normalize_gadget
from ..slicing.path_sensitive import path_sensitive_gadget
from ..slicing.special_tokens import (SlicingCriterion, TokenCategory,
                                      find_special_tokens)
from .telemetry import Telemetry

__all__ = ["PIPELINE_VERSION", "LabeledGadget", "EncodedDataset",
           "extract_gadgets", "encode_gadgets", "train_classifier",
           "predict_proba", "evaluate_classifier", "TrainReport"]

logger = logging.getLogger(__name__)

#: Bump when extraction semantics change (slicing order, labeling,
#: gadget assembly, ...) — folded into extraction cache keys so stale
#: cached gadgets are never served across pipeline revisions.
PIPELINE_VERSION = 2

_CATEGORY_MAP = {
    "FC": TokenCategory.FUNCTION_CALL,
    "AU": TokenCategory.ARRAY_USAGE,
    "PU": TokenCategory.POINTER_USAGE,
    "AE": TokenCategory.ARITHMETIC_EXPR,
}


@dataclass
class LabeledGadget:
    """A normalized gadget with label and provenance."""

    tokens: tuple[str, ...]
    label: int
    category: str
    case_name: str
    criterion: SlicingCriterion
    kind: str  # 'classic' | 'path-sensitive'
    gadget: CodeGadget | None = None
    cwe: str = ""  # CWE id of the originating case ('' when unknown)

    def sample(self, vocab: Vocabulary) -> Sample:
        return Sample(tuple(vocab.encode(list(self.tokens))), self.label)


@dataclass(frozen=True)
class _ExtractConfig:
    """Per-run extraction knobs, picklable for worker processes."""

    kind: str
    wanted: frozenset[TokenCategory] | None
    use_control: bool
    keep_gadget: bool

    def cache_token(self) -> str:
        """Stable string folded into extraction cache keys."""
        categories = ("*" if self.wanted is None else
                      ",".join(sorted(c.value for c in self.wanted)))
        return (f"kind={self.kind};categories={categories};"
                f"control={int(self.use_control)}")


def _extract_case(case: TestCase, config: _ExtractConfig
                  ) -> tuple[list[LabeledGadget], dict]:
    """Pure per-case body of :func:`extract_gadgets`.

    Analyzes, slices, labels, and normalizes one program, returning its
    un-deduplicated gadgets in deterministic criterion order plus a
    telemetry snapshot.  Depends only on its arguments, so it runs
    identically inline or in a worker process.
    """
    local = Telemetry()
    try:
        with local.stage("analyze"):
            program = analyze(case.source, path=case.name)
    except ParseError:
        local.count("cases_skipped")
        return [], local.as_dict()
    local.count("cases_parsed")
    manifest = case.manifest()
    gadgets: list[LabeledGadget] = []
    for criterion in find_special_tokens(program, config.wanted):
        with local.stage("slice"):
            if config.kind == "path-sensitive":
                gadget = path_sensitive_gadget(program, criterion)
            else:
                gadget = classic_gadget(program, criterion,
                                        use_control=config.use_control)
        if not gadget.lines:
            continue
        gadget.label = label_gadget(gadget, manifest)
        with local.stage("normalize"):
            normalized = normalize_gadget(gadget)
        gadgets.append(
            LabeledGadget(
                tokens=tuple(normalized.tokens),
                label=gadget.label,
                category=criterion.category.value,
                case_name=case.name,
                criterion=criterion,
                kind=config.kind,
                gadget=gadget if config.keep_gadget else None,
                cwe=case.cwe))
    local.count("gadgets_extracted", len(gadgets))
    return gadgets, local.as_dict()


def _coerce_cache(cache):
    """Accept a GadgetCache, a directory path, or None."""
    if cache is None:
        return None
    if isinstance(cache, (str, Path)):
        from .cache import GadgetCache
        return GadgetCache(cache)
    return cache


def extract_gadgets(
    cases: Sequence[TestCase],
    kind: str = "path-sensitive",
    categories: tuple[str, ...] | None = None,
    *,
    use_control: bool = True,
    deduplicate: bool = True,
    keep_gadget: bool = False,
    workers: int = 0,
    cache=None,
    telemetry: Telemetry | None = None,
) -> list[LabeledGadget]:
    """Steps I-III: slice, assemble, label, and normalize every case.

    Cases are processed independently (optionally fanned out over a
    process pool and/or served from a content-addressed cache) and the
    per-case gadget lists are concatenated in corpus order before
    deduplication, so the output is byte-identical no matter how the
    work was scheduled.

    Args:
        cases: corpus programs.
        kind: 'path-sensitive' (Algorithm 1) or 'classic' (the CG
            baseline the paper compares against in Table II).
        categories: restrict criteria to these families.
        use_control: follow control-dependence edges while slicing
            (False reproduces VulDeePecker's data-only gadgets; only
            meaningful for kind='classic').
        deduplicate: drop exact (tokens, label) duplicates, as the
            paper does after merging corpora.
        keep_gadget: retain the raw gadget object (needed by the
            attention visualization, costs memory otherwise).
        workers: fan the per-case work out over this many processes
            (0 or 1 keeps the serial in-process path).
        cache: a :class:`~repro.core.cache.GadgetCache`, a cache
            directory path, or None.  Hits skip the frontend entirely;
            ignored when ``keep_gadget`` is set because the on-disk
            record format does not persist raw gadget objects.
        telemetry: optional accumulator for stage timings and counters
            (cases parsed/skipped, gadgets, dedup and cache hits).
    """
    if kind not in ("path-sensitive", "classic"):
        raise ValueError(f"unknown gadget kind {kind!r}")
    wanted = None
    if categories is not None:
        wanted = frozenset(_CATEGORY_MAP[c] for c in categories)
    config = _ExtractConfig(kind=kind, wanted=wanted,
                            use_control=use_control,
                            keep_gadget=keep_gadget)
    telemetry = telemetry if telemetry is not None else Telemetry()
    telemetry.count("cases_total", len(cases))

    gadget_cache = None if keep_gadget else _coerce_cache(cache)
    if cache is not None and keep_gadget:
        logger.warning("extract_gadgets: cache disabled because "
                       "keep_gadget=True retains raw gadget objects "
                       "the cache format does not persist")

    per_case: list[list[LabeledGadget] | None] = [None] * len(cases)
    keys: list[str | None] = [None] * len(cases)
    pending = list(range(len(cases)))
    if gadget_cache is not None:
        pending = []
        with telemetry.stage("cache-lookup"):
            for index, case in enumerate(cases):
                key = gadget_cache.key_for(case, config.cache_token())
                keys[index] = key
                hit = gadget_cache.get(key)
                if hit is None:
                    telemetry.count("cache_misses")
                    pending.append(index)
                else:
                    telemetry.count("cache_hits")
                    per_case[index] = hit

    if workers > 1 and len(pending) > 1:
        with telemetry.stage("extract"):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunksize = max(1, len(pending) // (workers * 4))
                outcomes = list(pool.map(
                    _extract_case, [cases[i] for i in pending],
                    itertools.repeat(config), chunksize=chunksize))
    else:
        with telemetry.stage("extract"):
            outcomes = [_extract_case(cases[i], config)
                        for i in pending]

    skipped_names: list[str] = []
    for index, (gadgets, stats) in zip(pending, outcomes):
        per_case[index] = gadgets
        telemetry.merge_dict(stats)
        skipped = stats.get("counters", {}).get("cases_skipped", 0)
        if skipped:
            skipped_names.append(cases[index].name)
        elif gadget_cache is not None:
            # parse failures are deliberately not cached: re-failing is
            # cheap and keeps the skip diagnostics visible on reruns
            with telemetry.stage("cache-store"):
                gadget_cache.put(keys[index], gadgets)

    results: list[LabeledGadget] = []
    seen: set[tuple[tuple[str, ...], int]] = set()
    dedup_hits = 0
    for case_gadgets in per_case:
        for labeled in case_gadgets or ():
            key = (labeled.tokens, labeled.label)
            if deduplicate:
                if key in seen:
                    dedup_hits += 1
                    continue
                seen.add(key)
            results.append(labeled)
    telemetry.count("dedup_hits", dedup_hits)
    telemetry.count("gadgets_emitted", len(results))
    if skipped_names:
        shown = ", ".join(skipped_names[:5])
        if len(skipped_names) > 5:
            shown += ", ..."
        logger.warning("extract_gadgets: skipped %d/%d unparseable "
                       "case(s): %s", len(skipped_names), len(cases),
                       shown)
    return results


@dataclass
class EncodedDataset:
    """Vocabulary + pretrained embeddings + encoded samples.

    ``id_aliases`` carries the embedding-level min_count trimming: an
    identity id map except rare token ids point at UNK.  Samples keep
    their lossless full-vocabulary ids; models that should treat rare
    constants as UNK attach the alias table to their embedding layer
    (see :meth:`bind_embedding_aliases`).
    """

    samples: list[Sample]
    vocab: Vocabulary
    word2vec: Word2Vec
    gadgets: list[LabeledGadget] = field(default_factory=list)
    id_aliases: np.ndarray | None = None

    @property
    def labels(self) -> np.ndarray:
        return np.array([sample.label for sample in self.samples])

    def subset(self, indices: Sequence[int]) -> list[Sample]:
        return [self.samples[i] for i in indices]

    def bind_embedding_aliases(self, model) -> None:
        """Attach the rare-token alias table to ``model.embedding``."""
        embedding = getattr(model, "embedding", None)
        if embedding is not None and self.id_aliases is not None:
            embedding.id_aliases = self.id_aliases


def encode_gadgets(gadgets: Sequence[LabeledGadget], dim: int = 30,
                   w2v_epochs: int = 2, seed: int = 13,
                   vocab: Vocabulary | None = None,
                   word2vec: Word2Vec | None = None,
                   min_count: int = 2,
                   telemetry: Telemetry | None = None) -> EncodedDataset:
    """Step IV input side: build vocab, pretrain word2vec, encode.

    The vocabulary keeps *every* token so id<->token roundtrips are
    exact.  ``min_count`` trims tokens (mostly rare numeric constants)
    seen fewer times at the *embedding* level, exactly where gensim's
    word2vec (min_count=5 by default) applied it in the paper's
    toolchain: rare tokens train as UNK in word2vec and the returned
    ``id_aliases`` table lets classifier embeddings route them to
    UNK's row too.  That embedding-level rare-constant generalization
    is what lets patterns learned on one instantiation of a CWE
    template transfer to instantiations with different buffer sizes
    and thresholds — without ever losing the literal token.
    """
    if vocab is None:
        vocab = Vocabulary.build([list(g.tokens) for g in gadgets])
    corpora = [vocab.encode(list(g.tokens)) for g in gadgets]
    id_aliases = np.arange(len(vocab), dtype=np.int64)
    if min_count > 1:
        counts: dict[int, int] = {}
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] = counts.get(token_id, 0) + 1
        for token_id, count in counts.items():
            if token_id >= 2 and count < min_count:
                id_aliases[token_id] = 1
    if word2vec is None:
        word2vec = Word2Vec(vocab, dim=dim, seed=seed)
        word2vec.train(corpora, epochs=w2v_epochs,
                       min_count=min_count, telemetry=telemetry)
    samples = [g.sample(vocab) for g in gadgets]
    return EncodedDataset(samples, vocab, word2vec, list(gadgets),
                          id_aliases=id_aliases)


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    val_f1: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_classifier(model: Module, samples: Sequence[Sample], *,
                     epochs: int = 8, batch_size: int = 16,
                     lr: float = 3e-3, seed: int = 0,
                     grad_clip: float = 5.0,
                     class_balance: bool = True,
                     validation: Sequence[Sample] | None = None,
                     patience: int | None = None,
                     telemetry: Telemetry | None = None) -> TrainReport:
    """Train any gadget classifier (fixed- or flexible-length).

    Models advertising ``fixed_length`` get padded/truncated batches
    (Definition 8); flexible models get length-bucketed batches with no
    padding.  With ``class_balance`` the minority class is oversampled
    to a 1:2 ratio, compensating for the gadget-level imbalance the
    paper reports (and chooses not to rebalance at the *data* level —
    we rebalance only the sampling, keeping the data unbalanced).

    With a ``validation`` set and ``patience``, training stops when
    validation F1 has not improved for ``patience`` consecutive epochs
    and the best-epoch weights are restored (early stopping).

    ``telemetry`` accumulates the ``train`` / ``train-epoch`` stage
    timings and ``train_batches`` / ``train_samples`` counters the
    throughput report is derived from.
    """
    import time

    rng = np.random.default_rng(seed)
    fixed = getattr(model, "fixed_length", None)
    train_samples = list(samples)
    if class_balance:
        train_samples = _oversample(train_samples, rng)
    params = list(model.parameters())
    optimizer = Adam(params, lr=lr)
    report = TrainReport()
    best_f1 = -1.0
    best_state: dict[str, np.ndarray] | None = None
    stale = 0
    model.train()
    train_start = time.perf_counter()
    for _ in range(epochs):
        epoch_start = time.perf_counter()
        epoch_losses: list[float] = []
        epoch_samples = 0
        if fixed is not None:
            batches = fixed_length_batches(train_samples, fixed,
                                           batch_size, rng)
        else:
            batches = bucketed_batches(train_samples, batch_size, rng,
                                       min_length=4)
        for ids, labels in batches:
            optimizer.zero_grad()
            logits = model(ids)
            loss = bce_with_logits(logits, labels)
            loss.backward()
            clip_grad_norm(params, grad_clip)
            optimizer.step()
            epoch_losses.append(float(loss.data))
            epoch_samples += len(labels)
        report.losses.append(float(np.mean(epoch_losses))
                             if epoch_losses else float("nan"))
        if telemetry is not None:
            telemetry.add_stage("train-epoch",
                                time.perf_counter() - epoch_start)
            telemetry.count("train_batches", len(epoch_losses))
            telemetry.count("train_samples", epoch_samples)
        if validation is not None:
            metrics = evaluate_classifier(model, validation)
            model.train()
            report.val_f1.append(metrics.f1)
            if metrics.f1 > best_f1:
                best_f1 = metrics.f1
                best_state = {key: value.copy() for key, value
                              in model.state_dict().items()}
                report.best_epoch = len(report.losses) - 1
                stale = 0
            else:
                stale += 1
                if patience is not None and stale >= patience:
                    report.stopped_early = True
                    break
    if telemetry is not None:
        telemetry.add_stage("train",
                            time.perf_counter() - train_start)
    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return report


def _oversample(samples: list[Sample],
                rng: np.random.Generator) -> list[Sample]:
    positives = [s for s in samples if s.label == 1]
    negatives = [s for s in samples if s.label == 0]
    if not positives or not negatives:
        return samples
    minority, majority = ((positives, negatives)
                          if len(positives) < len(negatives)
                          else (negatives, positives))
    target = max(len(majority) // 2, len(minority))
    extra = target - len(minority)
    if extra <= 0:
        return samples
    picks = rng.integers(0, len(minority), size=extra)
    return samples + [minority[int(i)] for i in picks]


def predict_proba(model: Module, samples: Sequence[Sample],
                  batch_size: int = 128) -> np.ndarray:
    """Sigmoid scores per sample (order-preserving).

    Inference runs under ``no_grad`` in large length-bucketed batches
    (reusing :func:`bucketed_batches`, whose index channel scatters the
    scores back into corpus order) — no per-length Python grouping, no
    graph bookkeeping.
    """
    fixed = getattr(model, "fixed_length", None)
    scores = np.zeros(len(samples))
    model.eval()
    with no_grad():
        if fixed is not None:
            for start in range(0, len(samples), batch_size):
                chunk = samples[start : start + batch_size]
                ids = np.array(
                    [pad_or_truncate(s.token_ids, fixed) for s in chunk],
                    dtype=np.int64)
                scores[start : start + batch_size] = \
                    model.predict_proba(ids)
        else:
            for ids, _, indices in bucketed_batches(
                    samples, batch_size, min_length=4,
                    with_indices=True):
                scores[indices] = model.predict_proba(ids)
    return scores


def evaluate_classifier(model: Module, samples: Sequence[Sample],
                        threshold: float = 0.5) -> Metrics:
    """Confusion-matrix metrics at a decision threshold."""
    scores = predict_proba(model, samples)
    predictions = (scores >= threshold).astype(int)
    labels = [sample.label for sample in samples]
    return metrics_from(confusion_from(predictions.tolist(), labels))
