"""Tests for ROC / threshold-sweep analysis."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.eval.metrics import metrics_from
from repro.eval.thresholds import (OperatingPoint, SingleClassError,
                                   best_f1_threshold,
                                   precision_recall_points, roc_auc,
                                   roc_points, sweep_thresholds,
                                   threshold_for_fpr)


def reference_sweep(scores, labels, thresholds):
    """The O(n*k) rescan-per-threshold formulation the module
    replaced; kept here as the behavioral oracle."""
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=int)
    points = []
    for threshold in thresholds:
        predicted = (scores >= threshold).astype(int)
        tp = int(np.sum((predicted == 1) & (labels == 1)))
        fp = int(np.sum((predicted == 1) & (labels == 0)))
        tn = int(np.sum((predicted == 0) & (labels == 0)))
        fn = int(np.sum((predicted == 0) & (labels == 1)))
        from repro.eval.metrics import Confusion
        points.append(OperatingPoint(
            float(threshold),
            metrics_from(Confusion(tp=tp, fp=fp, tn=tn, fn=fn))))
    return points

PERFECT_SCORES = [0.9, 0.8, 0.2, 0.1]
PERFECT_LABELS = [1, 1, 0, 0]


class TestROC:
    def test_perfect_separation_auc_one(self):
        assert roc_auc(PERFECT_SCORES, PERFECT_LABELS) == 1.0

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, size=4000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_inverted_scores_auc_zero(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_points_monotone_in_fpr(self):
        rng = np.random.default_rng(1)
        scores = rng.random(100)
        labels = rng.integers(0, 2, size=100)
        points = roc_points(scores, labels)
        fprs = [fpr for fpr, _ in points]
        assert fprs == sorted(fprs)

    def test_endpoints_present(self):
        points = roc_points(PERFECT_SCORES, PERFECT_LABELS)
        assert (0.0, 0.0) in points
        assert (1.0, 1.0) in points

    def test_mismatched_inputs_raise(self):
        with pytest.raises(ValueError):
            roc_points([0.5], [1, 0])
        with pytest.raises(ValueError):
            roc_points([], [])

    @given(st.lists(st.tuples(st.floats(0, 1), st.integers(0, 1)),
                    min_size=2, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_auc_in_unit_interval(self, pairs):
        scores = [s for s, _ in pairs]
        labels = [l for _, l in pairs]
        assume(0 < sum(labels) < len(labels))  # degenerate sets raise
        assert 0.0 <= roc_auc(scores, labels) <= 1.0


class TestSingleClass:
    def test_all_positive_raises_named_error(self):
        with pytest.raises(SingleClassError, match="positive class"):
            roc_points([0.1, 0.9], [1, 1])

    def test_all_negative_raises_named_error(self):
        with pytest.raises(SingleClassError, match="negative class"):
            roc_auc([0.1, 0.9], [0, 0])

    def test_pr_requires_a_positive(self):
        with pytest.raises(SingleClassError):
            precision_recall_points([0.1, 0.9], [0, 0])
        # All-positive PR is still well defined (recall sweeps 0..1).
        points = precision_recall_points([0.1, 0.9], [1, 1])
        assert (1.0, 1.0) in points

    def test_single_class_error_is_a_value_error(self):
        # Callers catching the old generic failure mode keep working.
        assert issubclass(SingleClassError, ValueError)

    def test_sweeps_tolerate_single_class(self):
        # Grid sweeps report raw confusion metrics; they never divide
        # by the missing class, so they deliberately do not raise.
        points = sweep_thresholds([0.1, 0.9], [1, 1])
        assert len(points) == 19


class TestSweeps:
    def test_sweep_covers_grid(self):
        points = sweep_thresholds(PERFECT_SCORES, PERFECT_LABELS)
        assert len(points) == 19
        thresholds = [p.threshold for p in points]
        assert thresholds == sorted(thresholds)

    def test_best_f1_on_separable_data(self):
        best = best_f1_threshold(PERFECT_SCORES, PERFECT_LABELS)
        assert best.metrics.f1 == 1.0
        assert 0.2 < best.threshold <= 0.8

    def test_threshold_for_fpr_budget(self):
        point = threshold_for_fpr(PERFECT_SCORES, PERFECT_LABELS,
                                  max_fpr=0.0)
        assert point.metrics.fpr == 0.0
        assert point.metrics.fnr == 0.0  # separable data

    def test_threshold_for_fpr_impossible(self):
        with pytest.raises(ValueError):
            threshold_for_fpr(PERFECT_SCORES, PERFECT_LABELS,
                              max_fpr=-0.1)

    def test_precision_recall_points(self):
        points = precision_recall_points(PERFECT_SCORES,
                                         PERFECT_LABELS)
        assert (1.0, 1.0) in points  # perfect classifier point

    def test_raising_threshold_never_raises_fpr(self):
        rng = np.random.default_rng(3)
        scores = rng.random(200)
        labels = rng.integers(0, 2, size=200)
        points = sweep_thresholds(scores, labels)
        fprs = [p.metrics.fpr for p in points]
        assert all(a >= b for a, b in zip(fprs, fprs[1:]))

    @given(st.lists(st.tuples(st.floats(0, 1), st.integers(0, 1)),
                    min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_cumsum_sweep_matches_rescan_reference(self, pairs):
        """The O(n log n) prefix-sum sweep must reproduce the naive
        per-threshold rescan exactly — including ties, duplicates, and
        thresholds falling between / outside the observed scores."""
        scores = [s for s, _ in pairs]
        labels = [l for _, l in pairs]
        grid = sorted(set(scores)
                      | {0.0, 0.3, 0.5000000001, 1.0, 1.5, -0.5})
        fast = sweep_thresholds(scores, labels, grid)
        slow = reference_sweep(scores, labels, grid)
        assert fast == slow

    def test_best_f1_matches_exhaustive_search(self):
        rng = np.random.default_rng(11)
        scores = np.round(rng.random(150), 2)  # force score ties
        labels = rng.integers(0, 2, size=150)
        best = best_f1_threshold(scores, labels)
        candidates = reference_sweep(scores, labels,
                                     sorted(set(scores.tolist())))
        exhaustive = max(candidates, key=lambda p: p.metrics.f1)
        assert best.metrics.f1 == exhaustive.metrics.f1
