"""Skip-gram word2vec with negative sampling (paper Step IV, Eq. 1).

SEVulDet embeds normalized gadget tokens with a pre-trained word2vec
model; this is the numpy reimplementation of gensim's skip-gram
negative-sampling trainer, scaled for token-level code vocabularies
(a few thousand symbols).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .vocab import Vocabulary

__all__ = ["Word2Vec"]


@dataclass
class _Config:
    dim: int = 30
    window: int = 4
    negatives: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    epochs: int = 3
    seed: int = 13


class Word2Vec:
    """Skip-gram with negative sampling over token-id corpora.

    Args:
        vocab: vocabulary the corpus is encoded against.
        dim: embedding dimensionality (the paper uses 30).
        window: max context distance.
        negatives: negative samples per positive pair.
    """

    def __init__(self, vocab: Vocabulary, dim: int = 30, window: int = 4,
                 negatives: int = 5, seed: int = 13):
        self.vocab = vocab
        self.config = _Config(dim=dim, window=window, negatives=negatives,
                              seed=seed)
        rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        self.input_vectors = rng.uniform(-scale, scale,
                                         size=(len(vocab), dim))
        self.output_vectors = np.zeros((len(vocab), dim))
        self._noise_table: np.ndarray | None = None

    # -- training -----------------------------------------------------------

    def _build_noise_table(self, corpora: Sequence[Sequence[int]],
                           table_size: int = 1 << 16) -> None:
        counts = np.ones(len(self.vocab))
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] += 1
        probabilities = counts ** 0.75
        probabilities /= probabilities.sum()
        rng = np.random.default_rng(self.config.seed + 1)
        self._noise_table = rng.choice(len(self.vocab), size=table_size,
                                       p=probabilities)

    def train(self, corpora: Sequence[Sequence[int]],
              epochs: int | None = None, min_count: int = 1) -> float:
        """Train on encoded token sequences; returns final mean loss.

        ``min_count`` reproduces gensim's rare-token trimming at the
        *training* level: token ids seen fewer than ``min_count`` times
        across the corpora train as UNK, and after training their
        embedding rows are tied to the UNK row.  The vocabulary itself
        is untouched, so id<->token roundtrips stay exact while every
        rare constant still shares one generalized embedding.
        """
        config = self.config
        epochs = epochs if epochs is not None else config.epochs
        rare_ids = self._rare_ids(corpora, min_count)
        if rare_ids:
            corpora = [[1 if token_id in rare_ids else token_id
                        for token_id in corpus] for corpus in corpora]
        self._build_noise_table(corpora)
        assert self._noise_table is not None
        rng = np.random.default_rng(config.seed + 2)
        total_pairs = max(
            sum(len(corpus) for corpus in corpora) * epochs, 1)
        seen = 0
        last_loss = 0.0
        for _ in range(epochs):
            for corpus in corpora:
                last_loss = self._train_sequence(corpus, rng, seen,
                                                 total_pairs)
                seen += len(corpus)
        if rare_ids:
            rows = sorted(rare_ids)
            self.input_vectors[rows] = self.input_vectors[1]
            self.output_vectors[rows] = self.output_vectors[1]
        return last_loss

    def _rare_ids(self, corpora: Sequence[Sequence[int]],
                  min_count: int) -> set[int]:
        """Real-token ids (>= 2) occurring fewer than min_count times."""
        if min_count <= 1:
            return set()
        counts: dict[int, int] = {}
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] = counts.get(token_id, 0) + 1
        return {token_id for token_id, count in counts.items()
                if token_id >= 2 and count < min_count}

    def _train_sequence(self, corpus: Sequence[int],
                        rng: np.random.Generator, seen: int,
                        total: int) -> float:
        config = self.config
        noise = self._noise_table
        losses: list[float] = []
        for position, center in enumerate(corpus):
            progress = min((seen + position) / total, 1.0)
            lr = max(config.lr * (1.0 - progress), config.min_lr)
            span = int(rng.integers(1, config.window + 1))
            start = max(position - span, 0)
            for context_pos in range(start,
                                     min(position + span + 1, len(corpus))):
                if context_pos == position:
                    continue
                context = corpus[context_pos]
                negatives = noise[rng.integers(0, len(noise),
                                               size=config.negatives)]
                losses.append(
                    self._sgns_update(center, context, negatives, lr))
        return float(np.mean(losses)) if losses else 0.0

    def _sgns_update(self, center: int, context: int,
                     negatives: np.ndarray, lr: float) -> float:
        v = self.input_vectors[center]
        targets = np.concatenate(([context], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outputs = self.output_vectors[targets]          # (1+neg, dim)
        scores = outputs @ v
        sigmoid = 1.0 / (1.0 + np.exp(-np.clip(scores, -10, 10)))
        gradient = (sigmoid - labels)                   # (1+neg,)
        grad_v = gradient @ outputs
        self.output_vectors[targets] -= lr * np.outer(gradient, v)
        self.input_vectors[center] -= lr * grad_v
        eps = 1e-10
        loss = -(np.log(sigmoid[0] + eps)
                 + np.log(1.0 - sigmoid[1:] + eps).sum())
        return float(loss)

    # -- queries ------------------------------------------------------------

    @property
    def vectors(self) -> np.ndarray:
        """The (vocab, dim) input embedding matrix (row 0 = PAD)."""
        return self.input_vectors

    def vector(self, token: str) -> np.ndarray:
        token_id = self.vocab.token_to_id.get(token, 1)
        return self.input_vectors[token_id]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' vectors."""
        va, vb = self.vector(a), self.vector(b)
        denom = (np.linalg.norm(va) * np.linalg.norm(vb)) + 1e-12
        return float(va @ vb / denom)

    def most_similar(self, token: str, top_k: int = 5
                     ) -> list[tuple[str, float]]:
        """Nearest tokens by cosine similarity (excludes PAD/UNK/self)."""
        target = self.vector(token)
        norms = np.linalg.norm(self.input_vectors, axis=1) + 1e-12
        scores = self.input_vectors @ target \
            / (norms * (np.linalg.norm(target) + 1e-12))
        order = np.argsort(-scores)
        results: list[tuple[str, float]] = []
        for token_id in order:
            word = self.vocab.id_to_token[token_id]
            if token_id < 2 or word == token:
                continue
            results.append((word, float(scores[token_id])))
            if len(results) >= top_k:
                break
        return results
