"""Tests for classic gadget assembly (Step III ordering rules)."""

from repro.lang.callgraph import analyze
from repro.slicing.gadget import classic_gadget, order_functions
from repro.slicing.special_tokens import find_special_tokens


def gadget_for(source, token):
    program = analyze(source)
    criterion = [c for c in find_special_tokens(program)
                 if c.token == token][0]
    return program, classic_gadget(program, criterion)


class TestAssembly:
    SOURCE = """\
void f(char *data, int n) {
    char dest[8];
    int pad = 7;
    strncpy(dest, data, n);
    printf("%s", dest);
}
"""

    def test_lines_in_source_order(self):
        _, gadget = gadget_for(self.SOURCE, "strncpy")
        numbers = gadget.line_numbers()
        assert numbers == sorted(numbers)

    def test_criterion_role_marked(self):
        _, gadget = gadget_for(self.SOURCE, "strncpy")
        criterion_lines = [l for l in gadget.lines
                           if l.role == "criterion"]
        assert len(criterion_lines) == 1
        assert criterion_lines[0].line == 4

    def test_unrelated_statement_excluded(self):
        _, gadget = gadget_for(self.SOURCE, "strncpy")
        assert 3 not in gadget.line_numbers()

    def test_text_joins_statements(self):
        _, gadget = gadget_for(self.SOURCE, "strncpy")
        assert "strncpy(dest, data, n);" in gadget.text()

    def test_len_matches_lines(self):
        _, gadget = gadget_for(self.SOURCE, "strncpy")
        assert len(gadget) == len(gadget.lines)

    def test_source_path_recorded(self):
        program, gadget = gadget_for(self.SOURCE, "strncpy")
        assert gadget.source_path == program.source.path


class TestFunctionOrdering:
    SOURCE = """\
void leaf(char *b, int n) {
    char d[4];
    memcpy(d, b, n);
}

void mid(char *b, int n) {
    leaf(b, n);
}

int main() {
    char line[8];
    fgets(line, 8, 0);
    mid(line, 3);
    return 0;
}
"""

    def test_topological_caller_first(self):
        program = analyze(self.SOURCE)
        ordered = order_functions(program, ["leaf", "main", "mid"])
        assert ordered.index("main") < ordered.index("mid") \
            < ordered.index("leaf")

    def test_unrelated_functions_keep_source_order(self):
        program = analyze("void a() {}\nvoid b() {}\nvoid c() {}")
        assert order_functions(program, ["c", "a", "b"]) == \
            ["a", "b", "c"]

    def test_recursive_cycle_falls_back_to_source_order(self):
        program = analyze(
            "int a(int n) { return b(n); }\nint b(int n) { return a(n); }")
        assert order_functions(program, ["b", "a"]) == ["a", "b"]

    def test_gadget_spans_functions(self):
        _, gadget = gadget_for(self.SOURCE, "memcpy")
        assert set(gadget.functions()) >= {"leaf", "mid", "main"}
