"""Tests for the dependent-noise generator (slice-visible distractors)."""

import numpy as np

from repro.datasets.codegen import CodeWriter, NamePool, noise_statements
from repro.lang.callgraph import analyze
from repro.slicing.slicer import compute_slice
from repro.slicing.special_tokens import find_special_tokens


def build_sink(noise_count: int, seed: int, live: str | None,
               buffer: str | None = None):
    rng = np.random.default_rng(seed)
    writer = CodeWriter()
    names = NamePool(rng)
    with writer.block("void sink(char *data, int n)"):
        writer.line("char buf[8];")
        noise_statements(writer, names, rng, noise_count, live=live,
                         buffer=buffer, buffer_size=8)
        writer.line("strncpy(buf, data, n);")
    writer.blank()
    with writer.block("int main()"):
        writer.line("char line[64];")
        writer.line("fgets(line, 64, 0);")
        writer.line("sink(line, atoi(line));")
        writer.line("return 0;")
    return writer.source()


class TestDependentNoise:
    def test_dependent_noise_parses(self):
        for seed in range(6):
            analyze(build_sink(5, seed, live="n"))

    def test_buffer_noise_enters_slice(self):
        """Buffer-targeted noise (weak defs of the criterion's buffer)
        must join the gadget slice — that is its entire purpose."""
        source = build_sink(6, seed=3, live="n", buffer="buf")
        program = analyze(source)
        criterion = [c for c in find_special_tokens(program)
                     if c.token == "strncpy"][0]
        with_noise = compute_slice(program, criterion).total_nodes()

        bare = build_sink(0, seed=3, live="n")
        bare_program = analyze(bare)
        bare_criterion = [c for c in find_special_tokens(bare_program)
                          if c.token == "strncpy"][0]
        without = compute_slice(bare_program,
                                bare_criterion).total_nodes()
        assert with_noise > without

    def test_dependent_noise_never_writes_live(self):
        """The distractors read `n` but must not redefine it, or they
        would change the flaw semantics."""
        from repro.lang.cfg import build_cfg
        from repro.lang.dataflow import collect_def_use
        from repro.lang.parser import parse
        for seed in range(8):
            source = build_sink(6, seed, live="n")
            unit = parse(source)
            sink = unit.function("sink")
            cfg = build_cfg(sink)
            def_use = collect_def_use(cfg)
            for node in cfg.statement_nodes():
                if node.line == 3:  # buf decl
                    continue
                if "strncpy" in source.split("\n")[node.line - 1]:
                    continue
                assert "n" not in def_use[node.id].strong_defs, \
                    source.split("\n")[node.line - 1]

    def test_pointer_live_uses_strlen(self):
        rng = np.random.default_rng(5)
        writer = CodeWriter()
        names = NamePool(rng)
        with writer.block("void sink(char *data)"):
            noise_statements(writer, names, rng, 6, live="data",
                             live_is_pointer=True)
        text = writer.source()
        assert "strlen(data)" in text
        analyze(text)

    def test_without_live_no_data_dependence(self):
        source = build_sink(5, seed=7, live=None)
        assert " n +" not in source.replace("data, n)", "")
