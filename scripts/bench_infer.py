#!/usr/bin/env python3
"""Benchmark the fused inference path and the reduced-precision dtypes.

Scores one extracted gadget corpus through every inference
configuration and writes machine-readable JSON to
``benchmarks/results/BENCH_infer.json``::

    PYTHONPATH=src python scripts/bench_infer.py          # full run
    PYTHONPATH=src python scripts/bench_infer.py --smoke  # CI-sized

Three measurements:

* ``fused`` — the graph ``forward`` under ``no_grad`` vs the fused
  ``forward_inference`` kernel (:mod:`repro.models.fused`), same
  float32 weights, same batches.  Outputs must be **bit-identical**
  (this is the correctness gate; the run fails if they diverge).  The
  speedup target is >= 1.15x — the kernel saves per-op Tensor
  allocation, not FLOPs, so it holds even on one CPU.
* ``dtypes`` — cases/sec plus the measured guardband (max |Δprob| vs
  float32 and the verdict-flip count at the paper's 0.8 threshold)
  for float32 / float16 / int8 weights.  float16 halves the weight
  payload; whether it also *runs* faster depends on the BLAS: numpy
  half-precision matmuls have no BLAS backing, so the kernel computes
  them through float32 casts and the throughput target (>= 1.3x) is
  reported, not gated — the JSON discloses the measured ratio either
  way.
* ``scaling`` — gadgets/sec through ``ScorerPool`` at increasing
  worker counts vs the serial path, with the machine's CPU count
  disclosed.  On a single-CPU container the curve is flat-to-negative
  (process scoring adds IPC without adding cores) and is reported
  ungated, exactly like BENCH_engine.json's compute ratio.

``--smoke`` shrinks the corpus and skips the multi-worker sweep so CI
finishes in seconds; CI asserts the JSON contract and the bit-identity
flag, never throughput ratios.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.encode import encode_gadgets  # noqa: E402
from repro.core.extract import extract_gadgets  # noqa: E402
from repro.core.score import (SCORE_MIN_LENGTH,  # noqa: E402
                              predict_proba)
from repro.core.scorer_pool import ScorerPool  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402
from repro.models.sevuldet import (DECISION_THRESHOLD,  # noqa: E402
                                   SEVulDetNet)
from repro.nn import (bucketed_batches, no_grad,  # noqa: E402
                      stable_sigmoid)
from repro.nn.quantize import apply_inference_dtype  # noqa: E402

TARGET_FUSED = 1.15
TARGET_FLOAT16 = 1.3
#: pool speedup gate; only meaningful with >= 2 CPUs (IPC
#: cannot add cores on a single-CPU runner)
TARGET_POOL = 1.2
DTYPES = ("float32", "float16", "int8")


def build_model(train_cases, dim: int, channels: int):
    """A trained-shape model + vocab (random weights: the benchmark
    measures wall-clock and numeric deltas, not accuracy)."""
    gadgets = extract_gadgets(train_cases)
    dataset = encode_gadgets(gadgets, dim=dim, w2v_epochs=0, seed=13)
    model = SEVulDetNet(len(dataset.vocab), dim=dim,
                        channels=channels,
                        pretrained=dataset.word2vec.vectors, seed=3)
    dataset.bind_embedding_aliases(model)
    model.eval()
    return model, dataset.vocab


def clone_model(model, dtype: str):
    """An independent copy of ``model`` re-represented at ``dtype``."""
    spec = {
        "dim": model.embedding.dim,
        "channels": int(model.conv.weight.data.shape[0]),
    }
    clone = SEVulDetNet(model.embedding.vocab_size, **spec)
    clone.load_state_dict({key: value.copy() for key, value
                           in model.state_dict().items()})
    if model.embedding.id_aliases is not None:
        clone.embedding.id_aliases = model.embedding.id_aliases.copy()
    clone.eval()
    report = apply_inference_dtype(clone, dtype)
    return clone, report


def predict_unfused(model, samples, batch_size: int) -> np.ndarray:
    """predict_proba's exact batching, scored through the autograd
    graph forward — the pre-fusion inference path."""
    scores = np.zeros(len(samples))
    model.eval()
    with no_grad():
        for ids, _, indices in bucketed_batches(
                samples, batch_size, min_length=SCORE_MIN_LENGTH,
                with_indices=True):
            scores[indices] = stable_sigmoid(
                model.forward(ids).data.reshape(-1))
    return scores


def best_time(fn, repeats: int):
    """Best wall-clock of ``repeats`` calls; returns (seconds, times,
    last_result)."""
    best, times, result = None, [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        times.append(round(elapsed, 4))
        if best is None or elapsed < best:
            best = elapsed
    return best, times, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny corpus, no perf gate")
    parser.add_argument("--cases", type=int, default=None,
                        help="corpus programs (default 96, smoke 10)")
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed passes per config, best kept "
                             "(default 3, smoke 1)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="largest ScorerPool size in the scaling "
                             "sweep (default: min(4, cpu count))")
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_infer.json")
    args = parser.parse_args(argv)

    n_cases = args.cases or (10 if args.smoke else 96)
    repeats = args.repeats or (1 if args.smoke else 3)
    dim, channels = (8, 8) if args.smoke else (30, 128)
    cpus = os.cpu_count() or 1

    model, vocab = build_model(generate_sard_corpus(40, seed=31),
                               dim, channels)
    corpus = generate_sard_corpus(n_cases, seed=99)
    gadgets = extract_gadgets(corpus)
    samples = [g.sample(vocab) for g in gadgets]
    print(f"scoring {len(samples)} gadgets from {n_cases} cases "
          f"({cpus} cpu(s), dim={dim}, channels={channels}, "
          f"best of {repeats})")

    # -- fused vs unfused (float32, bit-identity gated) ----------------------
    unfused_s, unfused_times, unfused_scores = best_time(
        lambda: predict_unfused(model, samples, args.batch_size),
        repeats)
    fused_s, fused_times, fused_scores = best_time(
        lambda: predict_proba(model, samples,
                              batch_size=args.batch_size), repeats)
    bit_identical = bool(np.array_equal(unfused_scores, fused_scores))
    fused_speedup = round(unfused_s / max(fused_s, 1e-9), 2)
    print(f"fused forward: graph {unfused_s:.4f}s, fused "
          f"{fused_s:.4f}s -> {fused_speedup}x "
          f"(bit-identical: {bit_identical})")

    # -- per-dtype throughput + guardband ------------------------------------
    base_scores = np.asarray(fused_scores, dtype=np.float64)
    dtype_rows = {}
    for dtype in DTYPES:
        clone, qreport = clone_model(model, dtype)
        seconds, times, scores = best_time(
            lambda m=clone: predict_proba(m, samples,
                                          batch_size=args.batch_size),
            repeats)
        delta = np.abs(np.asarray(scores, dtype=np.float64)
                       - base_scores)
        flips = int(np.sum(
            (np.asarray(scores, dtype=np.float64)
             >= DECISION_THRESHOLD)
            != (base_scores >= DECISION_THRESHOLD)))
        dtype_rows[dtype] = {
            "seconds": round(seconds, 4),
            "all_runs_seconds": times,
            "cases_per_sec": round(n_cases / seconds, 2),
            "gadgets_per_sec": round(len(samples) / seconds, 2),
            "speedup_vs_float32": None,  # filled below
            "max_abs_delta": float(delta.max()) if len(delta) else 0.0,
            "mean_abs_delta": (float(delta.mean())
                               if len(delta) else 0.0),
            "flips_at_threshold": flips,
            "flip_rate": (flips / len(samples)) if samples else 0.0,
            "weights_nbytes": qreport.weights_nbytes_after,
            "payload_nbytes": qreport.payload_nbytes,
        }
    f32_seconds = dtype_rows["float32"]["seconds"]
    for dtype, row in dtype_rows.items():
        row["speedup_vs_float32"] = round(
            f32_seconds / max(row["seconds"], 1e-9), 2)
        print(f"{dtype:8s}: {row['gadgets_per_sec']} gadgets/s "
              f"({row['speedup_vs_float32']}x vs float32), "
              f"max |dprob|={row['max_abs_delta']:.2e}, "
              f"flips={row['flips_at_threshold']}/{len(samples)}")

    # -- cores vs throughput -------------------------------------------------
    serial_gps = round(len(samples)
                       / max(dtype_rows["float32"]["seconds"], 1e-9),
                       2)
    max_workers = (args.max_workers
                   or (1 if args.smoke else min(4, max(cpus, 2))))
    curve = {"serial_gadgets_per_sec": serial_gps, "workers": {}}
    worker_counts = sorted({1, max_workers} | (
        {2} if max_workers >= 2 else set()))
    identical_across_pool = True
    for count in worker_counts:
        with ScorerPool(model, workers=count) as pool:
            pool.score_samples(samples, args.batch_size)  # warm spawn
            seconds, times, scores = best_time(
                lambda p=pool: p.score_samples(samples,
                                               args.batch_size),
                repeats)
        if not np.array_equal(np.asarray(scores), fused_scores):
            identical_across_pool = False
        curve["workers"][str(count)] = {
            "seconds": round(seconds, 4),
            "all_runs_seconds": times,
            "gadgets_per_sec": round(len(samples) / seconds, 2),
            "speedup_vs_serial": round(
                serial_gps and (len(samples) / seconds) / serial_gps,
                2),
        }
        print(f"pool x{count}: "
              f"{curve['workers'][str(count)]['gadgets_per_sec']} "
              f"gadgets/s "
              f"({curve['workers'][str(count)]['speedup_vs_serial']}x "
              f"vs serial)")
    best_pool = max(row["speedup_vs_serial"]
                    for row in curve["workers"].values())
    if cpus < 2:
        print("  [single CPU: process scoring cannot add throughput; "
              "curve reported, not gated]")

    f16_speedup = dtype_rows["float16"]["speedup_vs_float32"]
    report = {
        "benchmark": "infer",
        "mode": "smoke" if args.smoke else "full",
        "cpus": cpus,
        "cpu_count": cpus,
        "corpus": {"cases": n_cases, "gadgets": len(samples)},
        "model": {"dim": dim, "channels": channels,
                  "vocab": model.embedding.vocab_size},
        "batch_size": args.batch_size,
        "repeats": repeats,
        "threshold": DECISION_THRESHOLD,
        "fused": {
            "unfused_seconds": round(unfused_s, 4),
            "unfused_all_runs_seconds": unfused_times,
            "fused_seconds": round(fused_s, 4),
            "fused_all_runs_seconds": fused_times,
            "speedup": fused_speedup,
            "bit_identical": bit_identical,
        },
        "dtypes": dtype_rows,
        "scaling": dict(
            curve,
            identical=identical_across_pool,
            note=("process pool over shared-memory weights; on a "
                  "single-CPU machine the curve is reported, not "
                  "gated — IPC cannot add cores")),
        "targets": {"fused_speedup": TARGET_FUSED,
                    "float16_speedup": TARGET_FLOAT16,
                    "pool_speedup": TARGET_POOL},
        "targets_met": {
            "fused_speedup": fused_speedup >= TARGET_FUSED,
            "fused_bit_identical": bit_identical,
            # disclosed, not gated: numpy half matmuls fall back to
            # float32 compute, so float16 buys payload, not FLOPs
            "float16_speedup": f16_speedup >= TARGET_FLOAT16,
            "flip_rate_zero": all(
                row["flips_at_threshold"] == 0
                for row in dtype_rows.values()),
            # None = not applicable: single CPU (a process pool
            # cannot beat serial without a second core) or a smoke
            # run (the sweep stops at one worker)
            "pool_speedup": (best_pool >= TARGET_POOL
                             if cpus >= 2 and not args.smoke
                             else None),
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not bit_identical:
        print("error: fused forward diverged from the graph forward "
              "at float32", file=sys.stderr)
        return 1
    if not identical_across_pool:
        print("error: ScorerPool scores diverged from the serial "
              "path", file=sys.stderr)
        return 1
    if not args.smoke and fused_speedup < TARGET_FUSED:
        print("warning: fused speedup target not met",
              file=sys.stderr)
        return 1
    if not args.smoke and cpus >= 2 and best_pool < TARGET_POOL:
        print(f"warning: pool speedup target not met on a "
              f"{cpus}-cpu machine", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
