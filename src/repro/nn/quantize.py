"""Reduced-precision inference weights (float16 cast, int8 affine).

Two schemes, both applied to a *trained* model in place:

* ``float16`` — every parameter is cast to half precision.  The fused
  inference kernel (:mod:`repro.models.fused`) keeps matmul
  accumulation in float32 (numpy's half has no BLAS backing), so
  float16 is a storage/bandwidth dtype: weights, activations, and
  scores travel at 2 bytes/element.
* ``int8`` — per-tensor affine quantization of every weight matrix
  (``ndim >= 2``): ``q = round(w / scale) + zero_point`` over the
  int8 range, dequantized back into float32 immediately
  ("dequantize-on-load into the matmul dtype").  1-D parameters
  (biases, attention gate biases) stay float32 — they are a rounding
  error of the total payload and quantizing them costs accuracy for
  nothing, the standard practice in int8 inference runtimes.

Neither scheme touches the model architecture, so a quantized model
scores through exactly the same code paths; the accuracy cost is
measured (not assumed) by
:meth:`repro.core.detector.SEVulDet.quantize`, which reports
max |Δprob| against the float32 weights and the verdict-flip rate at
the operating threshold on a held-out calibration batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layers import Module

__all__ = ["QuantizedTensor", "quantize_tensor", "dequantize_tensor",
           "apply_inference_dtype", "weights_nbytes",
           "quantized_payload_nbytes"]

#: Symmetric-capable int8 range.  -128 is excluded so the grid stays
#: symmetric around the zero point and negation round-trips.
_QMIN, _QMAX = -127, 127


@dataclass(frozen=True)
class QuantizedTensor:
    """One tensor's per-tensor affine int8 encoding.

    ``dequantize`` reconstructs ``(data - zero_point) * scale`` in the
    requested float dtype; values land exactly on the quantization
    grid, so quantize -> dequantize -> quantize is idempotent.
    """

    data: np.ndarray  # int8
    scale: float
    zero_point: int

    @property
    def nbytes(self) -> int:
        """Stored payload size (int8 data + scale/zero-point)."""
        return self.data.nbytes + 8 + 4


def quantize_tensor(array: np.ndarray) -> QuantizedTensor:
    """Per-tensor affine int8 quantization of a float array."""
    array = np.asarray(array, dtype=np.float64)
    low = float(array.min()) if array.size else 0.0
    high = float(array.max()) if array.size else 0.0
    low, high = min(low, 0.0), max(high, 0.0)  # grid must contain 0
    span = high - low
    if span == 0.0:
        # Constant (all-zero after the clamp) tensor: any scale works.
        scale, zero_point = 1.0, 0
    else:
        scale = span / (_QMAX - _QMIN)
        zero_point = int(round(_QMIN - low / scale))
        zero_point = max(_QMIN, min(_QMAX, zero_point))
    q = np.round(array / scale) + zero_point
    q = np.clip(q, _QMIN, _QMAX).astype(np.int8)
    return QuantizedTensor(data=q, scale=scale, zero_point=zero_point)


def dequantize_tensor(q: QuantizedTensor,
                      dtype=np.float32) -> np.ndarray:
    """Reconstruct the float tensor on the quantization grid."""
    return ((q.data.astype(np.float64) - q.zero_point)
            * q.scale).astype(dtype)


@dataclass
class QuantizationReport:
    """What quantizing a model did — sizes and measured guardband.

    ``max_abs_delta`` / ``mean_abs_delta`` / ``flip_rate`` are filled
    by the caller that owns a calibration batch (the detector); the
    per-tensor stats come from :func:`apply_inference_dtype` itself.
    """

    dtype: str
    weights_nbytes_before: int = 0
    weights_nbytes_after: int = 0
    payload_nbytes: int = 0
    per_tensor: dict = field(default_factory=dict)
    calibration_samples: int = 0
    max_abs_delta: float = 0.0
    mean_abs_delta: float = 0.0
    flip_rate: float = 0.0
    flips: int = 0

    def as_record(self) -> dict:
        return {
            "dtype": self.dtype,
            "weights_nbytes_before": self.weights_nbytes_before,
            "weights_nbytes_after": self.weights_nbytes_after,
            "payload_nbytes": self.payload_nbytes,
            "calibration_samples": self.calibration_samples,
            "max_abs_delta": self.max_abs_delta,
            "mean_abs_delta": self.mean_abs_delta,
            "flip_rate": self.flip_rate,
            "flips": self.flips,
        }


def weights_nbytes(model: Module) -> int:
    """In-memory bytes across all parameters."""
    return sum(param.data.nbytes for param in model.parameters())


def quantized_payload_nbytes(model: Module) -> int:
    """Bytes an int8 archive of ``model`` would occupy (weight
    matrices as int8 + scale/zero-point, 1-D parameters as float32)."""
    total = 0
    for param in model.parameters():
        if param.data.ndim >= 2:
            total += param.data.size + 8 + 4
        else:
            total += param.data.size * 4
    return total


def apply_inference_dtype(model: Module,
                          dtype: str) -> QuantizationReport:
    """Re-represent ``model``'s weights for inference, in place.

    ``float32`` casts everything (back) to float32; ``float16`` casts
    everything to half precision; ``int8`` quantizes weight matrices
    per tensor and binds the *dequantized* float32 arrays (the matmul
    dtype), recording scale/zero-point and the worst per-tensor
    reconstruction error in the report.
    """
    from .dtype import coerce_inference_dtype

    dtype = coerce_inference_dtype(dtype)
    report = QuantizationReport(
        dtype=dtype, weights_nbytes_before=weights_nbytes(model))
    named = {}
    model._collect_params(named, prefix="")
    for name, param in named.items():
        if dtype == "float16":
            param.data = param.data.astype(np.float16)
        elif dtype == "int8" and param.data.ndim >= 2:
            q = quantize_tensor(param.data)
            restored = dequantize_tensor(q, np.float32)
            error = float(np.max(np.abs(
                restored.astype(np.float64)
                - param.data.astype(np.float64))))
            report.per_tensor[name] = {
                "scale": q.scale, "zero_point": q.zero_point,
                "max_abs_err": error,
            }
            param.data = restored
        else:  # float32, and int8's float-kept 1-D parameters
            param.data = param.data.astype(np.float32)
    report.weights_nbytes_after = weights_nbytes(model)
    report.payload_nbytes = (quantized_payload_nbytes(model)
                             if dtype == "int8"
                             else report.weights_nbytes_after)
    return report
