"""C-subset frontend: lexer, parser, CFG, dependence analysis, PDG,
call graph, and a memory-safety-checking interpreter (Joern + testbed
substitute)."""

from .lexer import Token, TokenKind, tokenize
from .parser import ParseError, parse
from .cfg import CFG, CFGNode, NodeKind, build_cfg
from .dominance import control_dependences, dominator_tree, post_dominator_tree
from .dataflow import collect_def_use, data_dependences, reaching_definitions
from .pdg import PDG, build_pdg
from .callgraph import AnalyzedProgram, CallGraph, CallSite, analyze
from .interp import (ExecutionResult, Interpreter, SafetyViolation,
                     Timeout, ViolationKind, run_program)
from .source import SourceFile, strip_preprocessor
from .intervals import Interval, analyze_intervals, interval_of_expr
from .unparse import unparse, unparse_expr, unparse_stmt

__all__ = [
    "Token", "TokenKind", "tokenize", "ParseError", "parse",
    "CFG", "CFGNode", "NodeKind", "build_cfg",
    "control_dependences", "dominator_tree", "post_dominator_tree",
    "collect_def_use", "data_dependences", "reaching_definitions",
    "PDG", "build_pdg",
    "AnalyzedProgram", "CallGraph", "CallSite", "analyze",
    "ExecutionResult", "Interpreter", "SafetyViolation", "Timeout",
    "ViolationKind", "run_program",
    "SourceFile", "strip_preprocessor",
    "Interval", "analyze_intervals", "interval_of_expr",
    "unparse", "unparse_expr", "unparse_stmt",
]
