"""Compatibility re-export of the split pipeline modules.

The original monolithic pipeline now lives in four focused modules —
:mod:`repro.core.extract` (Steps I-III data path),
:mod:`repro.core.encode` (Step IV input side),
:mod:`repro.core.train` (Step V's learning loop), and
:mod:`repro.core.score` (Step V's inference side) — composed by the
streaming stage engine in :mod:`repro.core.engine`.  This module keeps
the historical import surface alive; new code should import from the
focused modules (or drive them through the engine) directly.
"""

from __future__ import annotations

import logging

from .encode import EncodedDataset, encode_gadgets
from .extract import PIPELINE_VERSION, LabeledGadget, extract_gadgets
from .score import SCORE_MIN_LENGTH, evaluate_classifier, predict_proba
from .train import TrainReport, train_classifier

__all__ = ["PIPELINE_VERSION", "SCORE_MIN_LENGTH", "LabeledGadget",
           "EncodedDataset", "extract_gadgets", "encode_gadgets",
           "train_classifier", "predict_proba", "evaluate_classifier",
           "TrainReport"]

#: Retained so code that logged through ``repro.core.pipeline`` (and
#: tests capturing that logger) keeps working; the split modules log
#: under their own names, which propagate to the same root handlers.
logger = logging.getLogger(__name__)
