"""Fixed-width table rendering for experiment reports.

Used by the benchmark suite to persist every regenerated paper table
under ``benchmarks/results/``, and available to library users for
their own experiment scripts.  All writes are atomic (temp file +
``os.replace``) so an interrupted run can never leave a torn artifact
that a later resume-style read trusts.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["Table", "atomic_write_text"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically.

    The payload lands in a temp file in the same directory first and
    is moved into place with ``os.replace``, so readers only ever see
    the old content or the complete new content — never a torn write
    from an interrupted run.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            tmp.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


class Table:
    """Collects dict rows and renders them as an aligned text table.

    Example::

        table = Table("rq1", "Table II - RQ1")
        table.add(network="BLSTM", f1=85.2)
        print(table.render())
        table.save(Path("results"))
    """

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.rows: list[dict] = []

    def add(self, **row) -> None:
        """Append one row; column order follows the first row."""
        self.rows.append(row)

    def _headers(self) -> list[str]:
        """First-row column order, extended by later-only columns."""
        headers = list(self.rows[0])
        for row in self.rows[1:]:
            for key in row:
                if key not in headers:
                    headers.append(key)
        return headers

    def render(self) -> str:
        """The aligned table as text (title + header + rows)."""
        if not self.rows:
            return f"{self.title}\n(no rows)\n"
        headers = self._headers()
        widths = {
            header: max(len(str(header)),
                        *(len(str(row.get(header, "")))
                          for row in self.rows))
            for header in headers
        }
        lines = [
            self.title,
            " | ".join(str(h).ljust(widths[h]) for h in headers),
            "-+-".join("-" * widths[h] for h in headers),
        ]
        for row in self.rows:
            lines.append(" | ".join(
                str(row.get(h, "")).ljust(widths[h]) for h in headers))
        return "\n".join(lines) + "\n"

    def markdown(self) -> str:
        """GitHub-flavored markdown rendering (title + pipe table)."""
        if not self.rows:
            return f"## {self.title}\n\n(no rows)\n"
        headers = self._headers()
        lines = [
            f"## {self.title}",
            "",
            "| " + " | ".join(str(h) for h in headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(
                str(row.get(h, "")) for h in headers) + " |")
        return "\n".join(lines) + "\n"

    def save(self, directory: str | Path) -> Path:
        """Atomically write ``<directory>/<name>.txt``; returns the
        path.  An interrupted run leaves either the previous artifact
        or the complete new one, never a truncated file."""
        return atomic_write_text(
            Path(directory) / f"{self.name}.txt", self.render())

    def save_markdown(self, directory: str | Path) -> Path:
        """Atomically write ``<directory>/<name>.md``; returns the
        path."""
        return atomic_write_text(
            Path(directory) / f"{self.name}.md", self.markdown())
