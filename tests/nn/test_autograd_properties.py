"""Hypothesis property tests: autograd matches numerical gradients on
random shapes and random op chains."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor

from .conftest import assert_grad_close, numerical_gradient

shapes = st.tuples(st.integers(1, 4), st.integers(1, 4))


def random_array(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


SMOOTH_OPS = {
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "exp": lambda t: (t * 0.3).exp(),
    "square": lambda t: t * t,
    "affine": lambda t: t * 2.0 + 1.0,
    "softmax": lambda t: t.softmax(axis=-1),
}


class TestRandomChains:
    @given(shape=shapes, seed=st.integers(0, 10_000),
           ops=st.lists(st.sampled_from(sorted(SMOOTH_OPS)),
                        min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_chain_gradient_matches_numeric(self, shape, seed, ops):
        data = random_array(shape, seed)

        def apply_chain(tensor):
            for name in ops:
                tensor = SMOOTH_OPS[name](tensor)
            return tensor

        x = Tensor(data.copy(), requires_grad=True)
        apply_chain(x).sum().backward()
        numeric = numerical_gradient(
            lambda: float(apply_chain(Tensor(data)).data.sum()), data)
        assert_grad_close(x.grad, numeric, 1e-4)

    @given(shape=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_sum_then_broadcast_consistency(self, shape, seed):
        data = random_array(shape, seed)
        x = Tensor(data.copy(), requires_grad=True)
        (x.sum(axis=0, keepdims=True) * x).sum().backward()
        numeric = numerical_gradient(
            lambda: float((Tensor(data).sum(axis=0, keepdims=True).data
                           * data).sum()), data)
        assert_grad_close(x.grad, numeric, 1e-4)

    @given(rows=st.integers(1, 5), inner=st.integers(1, 5),
           cols=st.integers(1, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matmul_any_shape(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        a_data = rng.normal(size=(rows, inner))
        b_data = rng.normal(size=(inner, cols))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        def loss():
            return float(((Tensor(a_data) @ Tensor(b_data)).data ** 2
                          ).sum())

        assert_grad_close(a.grad, numerical_gradient(loss, a_data), 1e-4)
        assert_grad_close(b.grad, numerical_gradient(loss, b_data), 1e-4)


class TestAlgebraicIdentities:
    @given(shape=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_softmax_invariant_to_shift(self, shape, seed):
        data = random_array(shape, seed)
        a = Tensor(data).softmax(axis=-1)
        b = Tensor(data + 100.0).softmax(axis=-1)
        assert np.allclose(a.data, b.data, atol=1e-9)

    @given(shape=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_sum_axes_decompose(self, shape, seed):
        data = random_array(shape, seed)
        t = Tensor(data)
        assert np.allclose(t.sum().data,
                           t.sum(axis=0).sum().data, atol=1e-9)

    @given(shape=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_mean_equals_sum_over_count(self, shape, seed):
        data = random_array(shape, seed)
        t = Tensor(data)
        assert np.allclose(t.mean().data, t.sum().data / data.size)

    @given(shape=shapes, seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, shape, seed):
        data = random_array(shape, seed)
        t = Tensor(data)
        assert np.allclose(t.transpose().transpose().data, data)
