"""CWE-type assignment for findings (paper Fig 2(b) "vulnerability
type" output).

:class:`CWETyper` trains the multiclass head on *vulnerable* gadgets
(labelled with their originating case's CWE id) and annotates detector
findings with the most likely CWE family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..embedding.vocab import Vocabulary
from ..models.multiclass import CWETypeNet
from ..nn import Adam, clip_grad_norm, cross_entropy, no_grad
from ..nn.data import pad_or_truncate
from .extract import LabeledGadget

__all__ = ["CWETyper"]


@dataclass
class CWETyper:
    """k-way CWE classifier over vulnerable gadgets.

    Typical use, after training a binary detector::

        typer = CWETyper(vocab=detector.dataset.vocab)
        typer.fit([g for g in gadgets if g.label == 1])
        cwe = typer.classify(gadget)
    """

    vocab: Vocabulary
    dim: int = 16
    channels: int = 16
    seed: int = 7
    classes: list[str] = field(default_factory=list)
    model: CWETypeNet | None = None

    def fit(self, gadgets: Sequence[LabeledGadget], *,
            epochs: int = 12, batch_size: int = 16,
            lr: float = 3e-3,
            pretrained: np.ndarray | None = None,
            id_aliases: np.ndarray | None = None) -> list[float]:
        """Train on vulnerable gadgets; returns per-epoch losses."""
        training = [g for g in gadgets if g.label == 1 and g.cwe]
        if not training:
            raise ValueError("no labelled vulnerable gadgets with CWE "
                             "ids to train on")
        self.classes = sorted({g.cwe for g in training})
        if len(self.classes) < 2:
            raise ValueError("need gadgets from at least two CWE "
                             "families")
        class_index = {cwe: i for i, cwe in enumerate(self.classes)}
        encoded = [(self.vocab.encode(list(g.tokens)),
                    class_index[g.cwe]) for g in training]
        self.model = CWETypeNet(len(self.vocab), len(self.classes),
                                dim=self.dim, channels=self.channels,
                                pretrained=pretrained, seed=self.seed)
        if id_aliases is not None:
            self.model.embedding.id_aliases = id_aliases
        params = list(self.model.parameters())
        optimizer = Adam(params, lr=lr)
        rng = np.random.default_rng(self.seed)
        losses: list[float] = []
        self.model.train()
        for _ in range(epochs):
            epoch: list[float] = []
            buckets: dict[int, list[int]] = {}
            for index, (ids, _) in enumerate(encoded):
                buckets.setdefault(max(len(ids), 4), []).append(index)
            lengths = list(buckets)
            rng.shuffle(lengths)
            for length in lengths:
                indices = buckets[length]
                rng.shuffle(indices)
                for start in range(0, len(indices), batch_size):
                    chunk = indices[start : start + batch_size]
                    ids = np.array(
                        [pad_or_truncate(encoded[i][0], length)
                         for i in chunk], dtype=np.int64)
                    targets = np.array([encoded[i][1] for i in chunk])
                    optimizer.zero_grad()
                    loss = cross_entropy(self.model(ids), targets)
                    loss.backward()
                    clip_grad_norm(params, 5.0)
                    optimizer.step()
                    epoch.append(float(loss.data))
            losses.append(float(np.mean(epoch)) if epoch else 0.0)
        self.model.eval()
        return losses

    def _require_model(self) -> CWETypeNet:
        if self.model is None:
            raise RuntimeError("CWETyper is not trained; call fit()")
        return self.model

    def classify(self, gadget: LabeledGadget) -> str:
        """Most likely CWE id for one gadget."""
        return self.classify_tokens(list(gadget.tokens))

    def classify_tokens(self, tokens: list[str]) -> str:
        model = self._require_model()
        ids = np.array([pad_or_truncate(self.vocab.encode(tokens),
                                        max(len(tokens), 4))],
                       dtype=np.int64)
        with no_grad():
            index = int(model.predict(ids)[0])
        return self.classes[index]

    def accuracy(self, gadgets: Sequence[LabeledGadget]) -> float:
        """Type accuracy over vulnerable gadgets with known CWEs."""
        relevant = [g for g in gadgets
                    if g.label == 1 and g.cwe in set(self.classes)]
        if not relevant:
            return 0.0
        hits = sum(self.classify(g) == g.cwe for g in relevant)
        return hits / len(relevant)
