#!/usr/bin/env python3
"""Driving the greybox fuzzer directly (the AFL substrate).

Generates a vulnerable program from the CWE templates, runs a
coverage-guided campaign against it in the memory-safety interpreter,
and dissects the findings: coverage growth, queue, crash inputs, and a
confirmation run that replays the crashing input under the oracle.
"""

from repro.baselines.afl import AFLFuzzer
from repro.datasets.cwe_templates import TEMPLATES, generate_case
from repro.lang.interp import run_program


def main() -> None:
    print("=== coverage-guided fuzzing campaign ===\n")

    template = next(t for t in TEMPLATES if t.name == "double_free")
    case = generate_case(template, vulnerable=True, seed=2024)
    print(f"target: {case.name} ({case.cwe})")
    print("-" * 50)
    print(case.source)
    print("-" * 50)

    fuzzer = AFLFuzzer(case.source, max_execs=800, max_steps=10_000,
                       seed=1)
    report = fuzzer.run()

    print(f"\nexecutions      : {report.executions}")
    print(f"coverage edges  : {len(report.coverage)}")
    print(f"queue entries   : {report.queue_size}")
    print(f"unique crashes  : {len(report.crashes)}")
    print(f"unique hangs    : {len(report.hangs)}")

    for crash in report.crashes:
        print(f"\ncrash: {crash.kind} at line {crash.line}")
        print(f"input: {crash.example!r}")
        replay = run_program(case.source, stdin=crash.example,
                             max_steps=10_000)
        print(f"replay confirms: {replay.violation}")

    patched = generate_case(template, vulnerable=False, seed=2024)
    clean = AFLFuzzer(patched.source, max_execs=400, max_steps=10_000,
                      seed=1).run()
    print(f"\npatched variant after {clean.executions} execs: "
          f"{'CLEAN' if not clean.found_anything else 'FINDINGS?!'}")


if __name__ == "__main__":
    main()
