"""Wire protocol for the scan server: JSON lines over a stream socket.

One request or response per line, UTF-8 JSON with sorted keys, ``\\n``
terminated — greppable with shell tools, diffable across runs, and
framed without any length-prefix bookkeeping.  The same bytes travel
over a unix-domain socket (the default for same-host clients: no port
to pick, filesystem permissions for free) or TCP.

Requests carry an ``op`` plus op-specific fields; every ``scan``
request carries a client-chosen ``id`` that its response echoes, so a
client may pipeline many scans on one connection and match responses
arriving out of submission order (the server's dispatcher pool makes
no ordering promise across requests).

:class:`ScanClient` is the blocking client used by ``scan --connect``,
the benchmark harness, and the tests.  It is intentionally dumb: a
socket, a line buffer, and JSON — the server holds all the policy.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path

__all__ = ["MAX_LINE_BYTES", "ProtocolError", "encode_message",
           "decode_message", "read_message", "connect", "ScanClient"]

#: Upper bound on one message line. Scan requests embed whole source
#: files, so this is generous — but a peer that streams an unbounded
#: line is broken or hostile, and the reader must not buffer forever.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, oversized, or truncated protocol message."""


def encode_message(message: dict) -> bytes:
    """One message as a complete wire line (bytes include the LF)."""
    line = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit")
    return line


def decode_message(line: bytes) -> dict:
    """Parse one wire line back into a message dict."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}")
    return message


def read_message(reader) -> dict | None:
    """Read one message from a buffered binary reader; None on EOF.

    ``reader`` is anything with ``readline(limit)`` semantics
    (``socket.makefile('rb')``, an ``io.BufferedReader``, ...).
    """
    line = reader.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("peer sent an oversized message line")
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-message")
    return decode_message(line)


def connect(address: str, timeout: float | None = None
            ) -> socket.socket:
    """Open a stream socket to ``address``.

    ``host:port`` (or ``[v6::addr]:port``) dials TCP; anything else is
    a unix-domain socket path.
    """
    host, port = _split_hostport(address)
    if host is not None:
        sock = socket.create_connection((host, port), timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    return sock


def _split_hostport(address: str) -> tuple[str | None, int]:
    """``('host', port)`` for TCP addresses, ``(None, 0)`` for paths.

    A path is anything without a ``:`` or whose final segment is not
    an integer port — ``./sock:dir/x`` stays a path.
    """
    if address.startswith(("/", ".")) or ":" not in address:
        return None, 0
    host, _, port = address.rpartition(":")
    try:
        number = int(port)
    except ValueError:
        return None, 0
    return host.strip("[]") or "127.0.0.1", number


class ScanClient:
    """Blocking JSONL client for one scan-server connection.

    Not thread-safe: use one client per thread (the server handles any
    number of connections).  Supports pipelining via
    :meth:`scan_batch`: all requests are written before any response
    is read, which is what actually exercises the server's batching
    and admission control.
    """

    def __init__(self, address: str, timeout: float | None = 60.0):
        self.address = address
        self._sock = connect(address, timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------------

    def send(self, message: dict) -> None:
        self._sock.sendall(encode_message(message))

    def receive(self) -> dict:
        message = read_message(self._reader)
        if message is None:
            raise ProtocolError("server closed the connection")
        return message

    def request(self, message: dict) -> dict:
        """One synchronous round trip."""
        self.send(message)
        return self.receive()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def reload(self, model: str | Path | None = None) -> dict:
        message: dict = {"op": "reload"}
        if model is not None:
            message["model"] = str(model)
        return self.request(message)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def scan_source(self, name: str, source: str,
                    request_id: str = "0") -> dict:
        """Scan one in-memory source file (single round trip)."""
        return self.request({"op": "scan", "id": request_id,
                             "name": name, "source": source})

    def scan_batch(self, requests: list[dict]) -> list[dict]:
        """Pipeline many scan requests; responses in request order.

        Each request dict needs ``name`` and ``source``; ids are
        assigned positionally.  All requests are written up front, the
        responses (which may arrive in any order) are matched back by
        id — including ``shed`` rejections, which the server sends
        immediately while earlier requests are still in flight.
        """
        for index, request in enumerate(requests):
            self.send({"op": "scan", "id": str(index),
                       "name": request["name"],
                       "source": request["source"]})
        by_id: dict[str, dict] = {}
        for _ in requests:
            response = self.receive()
            by_id[str(response.get("id"))] = response
        missing = [str(i) for i in range(len(requests))
                   if str(i) not in by_id]
        if missing:
            raise ProtocolError(
                f"server never answered request id(s) {missing}")
        return [by_id[str(i)] for i in range(len(requests))]

    def scan_paths(self, paths: list[str | Path]) -> list[dict]:
        """Read local files and scan them remotely (order preserved)."""
        requests = [
            {"name": str(path),
             "source": Path(path).read_text(encoding="utf-8",
                                            errors="replace")}
            for path in paths
        ]
        return self.scan_batch(requests) if requests else []
