"""Tests for source-text helpers."""

from repro.lang.source import SourceFile, strip_preprocessor


class TestStripPreprocessor:
    def test_simple_directive_blanked(self):
        result = strip_preprocessor("#include <stdio.h>\nint x;")
        assert result == "\nint x;"

    def test_indented_directive_blanked(self):
        result = strip_preprocessor("   #define N 1\nint x;")
        assert result.split("\n")[0] == ""

    def test_line_continuation_blanks_following_lines(self):
        source = "#define LONG \\\n    more \\\n    end\nint x;"
        lines = strip_preprocessor(source).split("\n")
        assert lines[:3] == ["", "", ""]
        assert lines[3] == "int x;"

    def test_hash_inside_code_untouched(self):
        source = 'char *s = "#not a directive";'
        assert strip_preprocessor(source) == source

    def test_line_count_preserved(self):
        source = "#if X\nint a;\n#endif\nint b;\n"
        assert strip_preprocessor(source).count("\n") == \
            source.count("\n")


class TestSourceFile:
    def test_line_access_one_based(self):
        src = SourceFile("f.c", "first\nsecond\nthird")
        assert src.line(1) == "first"
        assert src.line(3) == "third"

    def test_out_of_range_lines_empty(self):
        src = SourceFile("f.c", "only")
        assert src.line(0) == ""
        assert src.line(99) == ""

    def test_snippet_inclusive(self):
        src = SourceFile("f.c", "a\nb\nc\nd")
        assert src.snippet(2, 3) == "b\nc"

    def test_snippet_clamps(self):
        src = SourceFile("f.c", "a\nb")
        assert src.snippet(1, 99) == "a\nb"
