"""Design ablation (beyond the paper's tables): SPP pyramid depth.

The paper fixes the pyramid at (4, 2, 1) bins without ablating it.
This bench compares the full pyramid against a single global-max bin
(the degenerate "bag of features" pooling) and a flat 7-bin pooling
with the same output width — probing whether the *pyramid* structure,
not just fixed-width pooling, carries positional information the task
needs (guard placement is a positional property).
"""

import numpy as np

from repro.core.pipeline import (encode_gadgets, evaluate_classifier,
                                 extract_gadgets, train_classifier)
from repro.models.sevuldet import SEVulDetNet

from conftest import run_once

CONFIGS = {
    "pyramid (4,2,1)": (4, 2, 1),
    "flat (7)": (7,),
    "global (1)": (1,),
}
SEEDS = (7, 23)


def test_ablation_spp_bins(benchmark, reporter, scale, train_cases,
                           test_cases):
    def experiment():
        train_gadgets = extract_gadgets(train_cases)
        test_gadgets = extract_gadgets(test_cases)
        dataset = encode_gadgets(train_gadgets, dim=scale.dim,
                                 w2v_epochs=scale.w2v_epochs, seed=3)
        test_samples = [g.sample(dataset.vocab) for g in test_gadgets]
        results = {}
        for label, bins in CONFIGS.items():
            scores = []
            for seed in SEEDS:
                model = SEVulDetNet(
                    len(dataset.vocab), dim=scale.dim,
                    channels=scale.channels, bins=bins,
                    pretrained=dataset.word2vec.vectors, seed=seed)
                train_classifier(model, dataset.samples,
                                 epochs=scale.epochs,
                                 batch_size=scale.batch_size,
                                 lr=scale.learning_rate, seed=seed)
                scores.append(
                    evaluate_classifier(model, test_samples))
            results[label] = scores
        return results

    results = run_once(benchmark, experiment)

    table = reporter("ablation_spp_bins",
                     "Design ablation — SPP pyramid depth "
                     f"(mean over seeds {SEEDS})")
    means = {}
    for label, runs in results.items():
        f1 = float(np.mean([m.f1 for m in runs]))
        accuracy = float(np.mean([m.accuracy for m in runs]))
        means[label] = f1
        table.add(pooling=label,
                  **{"A(%)": round(accuracy * 100, 1),
                     "F1(%)": round(f1 * 100, 1)})
    table.save_and_print()

    # Every pooling flavour learns (fixed-width pooling is what makes
    # flexible length possible at all) ...
    for label, f1 in means.items():
        assert f1 > 0.5, label
    # ... and multi-bin pooling preserves positional signal that the
    # single global bin cannot represent.
    assert max(means["pyramid (4,2,1)"], means["flat (7)"]) >= \
        means["global (1)"] - 0.02
