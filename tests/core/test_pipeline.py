"""Tests for the core pipeline: extraction, encoding, training."""

import numpy as np
import pytest

from repro.core.config import SCALE_PRESETS, current_scale
from repro.core.pipeline import (encode_gadgets, evaluate_classifier,
                                 extract_gadgets, predict_proba,
                                 train_classifier)
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(30, seed=21)


@pytest.fixture(scope="module")
def gadgets(corpus):
    return extract_gadgets(corpus, kind="path-sensitive")


class TestExtraction:
    def test_gadgets_extracted(self, gadgets):
        assert len(gadgets) > 30

    def test_both_labels_present(self, gadgets):
        labels = {g.label for g in gadgets}
        assert labels == {0, 1}

    def test_vulnerable_gadgets_from_vulnerable_cases(self, corpus,
                                                      gadgets):
        vulnerable_names = {c.name for c in corpus if c.vulnerable}
        for gadget in gadgets:
            if gadget.label == 1:
                assert gadget.case_name in vulnerable_names

    def test_categories_recorded(self, gadgets):
        assert {g.category for g in gadgets} <= {"FC", "AU", "PU", "AE"}

    def test_category_filter(self, corpus):
        only_fc = extract_gadgets(corpus, categories=("FC",))
        assert all(g.category == "FC" for g in only_fc)

    def test_classic_kind(self, corpus):
        classic = extract_gadgets(corpus, kind="classic")
        assert all(g.kind == "classic" for g in classic)

    def test_data_only_slicing_shrinks_gadgets(self, corpus):
        with_control = extract_gadgets(corpus, kind="classic",
                                       use_control=True)
        data_only = extract_gadgets(corpus, kind="classic",
                                    use_control=False)
        mean = lambda gs: np.mean([len(g.tokens) for g in gs])
        assert mean(data_only) < mean(with_control)

    def test_dedup_removes_exact_duplicates(self, corpus):
        deduped = extract_gadgets(corpus, deduplicate=True)
        raw = extract_gadgets(corpus, deduplicate=False)
        assert len(deduped) <= len(raw)
        keys = [(g.tokens, g.label) for g in deduped]
        assert len(keys) == len(set(keys))

    def test_unknown_kind_rejected(self, corpus):
        with pytest.raises(ValueError):
            extract_gadgets(corpus, kind="quantum")

    def test_unparseable_case_skipped(self):
        from repro.datasets.manifest import TestCase
        broken = TestCase("x.c", "not C at all {{{", False,
                          frozenset(), "", "FC")
        assert extract_gadgets([broken]) == []

    def test_keep_gadget_flag(self, corpus):
        kept = extract_gadgets(corpus[:3], keep_gadget=True)
        assert all(g.gadget is not None for g in kept)
        dropped = extract_gadgets(corpus[:3], keep_gadget=False)
        assert all(g.gadget is None for g in dropped)


class TestEncoding:
    def test_encode_builds_vocab_and_vectors(self, gadgets):
        dataset = encode_gadgets(gadgets[:50], dim=8, w2v_epochs=1)
        assert len(dataset.vocab) > 10
        assert dataset.word2vec.vectors.shape[1] == 8
        assert len(dataset.samples) == 50

    def test_samples_roundtrip_tokens(self, gadgets):
        dataset = encode_gadgets(gadgets[:10], dim=8, w2v_epochs=0)
        for gadget, sample in zip(dataset.gadgets, dataset.samples):
            decoded = dataset.vocab.decode(list(sample.token_ids))
            assert decoded == list(gadget.tokens)

    def test_existing_vocab_reused(self, gadgets):
        first = encode_gadgets(gadgets[:20], dim=8, w2v_epochs=0)
        second = encode_gadgets(gadgets[:20], dim=8,
                                vocab=first.vocab,
                                word2vec=first.word2vec)
        assert second.vocab is first.vocab

    def test_labels_property(self, gadgets):
        dataset = encode_gadgets(gadgets[:20], dim=8, w2v_epochs=0)
        assert dataset.labels.tolist() == \
            [g.label for g in gadgets[:20]]

    def test_id_aliases_route_rare_tokens_to_unk(self, gadgets):
        dataset = encode_gadgets(gadgets[:10], dim=8, w2v_epochs=0,
                                 min_count=2)
        aliases = dataset.id_aliases
        assert aliases is not None and len(aliases) == \
            len(dataset.vocab)
        counts = {}
        for sample in dataset.samples:
            for token_id in sample.token_ids:
                counts[token_id] = counts.get(token_id, 0) + 1
        for token_id, count in counts.items():
            expected = 1 if token_id >= 2 and count < 2 else token_id
            assert aliases[token_id] == expected
        # samples themselves stay lossless — aliasing is embedding-only
        assert all(1 not in s.token_ids for s in dataset.samples)

    def test_bind_embedding_aliases(self, gadgets):
        dataset = encode_gadgets(gadgets[:10], dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        assert model.embedding.id_aliases is None
        dataset.bind_embedding_aliases(model)
        assert model.embedding.id_aliases is dataset.id_aliases


class TestTraining:
    def test_training_reduces_loss(self, gadgets):
        dataset = encode_gadgets(gadgets, dim=8, w2v_epochs=1)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8,
                            seed=0)
        report = train_classifier(model, dataset.samples, epochs=6,
                                  lr=5e-3, seed=0)
        assert report.losses[-1] < report.losses[0]
        assert report.final_loss == report.losses[-1]

    def test_predict_proba_order_and_range(self, gadgets):
        dataset = encode_gadgets(gadgets[:30], dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        scores = predict_proba(model, dataset.samples)
        assert scores.shape == (30,)
        assert ((scores >= 0) & (scores <= 1)).all()
        # deterministic: same input, same output
        again = predict_proba(model, dataset.samples)
        assert np.allclose(scores, again)

    def test_evaluate_returns_metrics(self, gadgets):
        dataset = encode_gadgets(gadgets[:30], dim=8, w2v_epochs=0)
        model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8)
        metrics = evaluate_classifier(model, dataset.samples)
        assert 0.0 <= metrics.accuracy <= 1.0


class TestScaleConfig:
    def test_presets_exist(self):
        assert {"small", "medium", "paper"} <= set(SCALE_PRESETS)

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert current_scale().name == "medium"

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_table4_hyperparams(self):
        from repro.core.config import FRAMEWORK_HYPERPARAMS
        sevuldet = FRAMEWORK_HYPERPARAMS["SEVulDet"]
        assert sevuldet.dimension == 30
        assert sevuldet.flexible_length
        assert sevuldet.learning_rate == 0.0001
        vuldee = FRAMEWORK_HYPERPARAMS["VulDeePecker"]
        assert vuldee.dimension == 50 and vuldee.epochs == 4
        sysevr = FRAMEWORK_HYPERPARAMS["SySeVR"]
        assert sysevr.batch_size == 16 and sysevr.dropout == 0.2
