#!/usr/bin/env python3
"""Fig 6: visualizing what the detector attends to (RQ4).

Trains SEVulDet, extracts the CVE-2016-9776 path-sensitive gadget
without truncation, hooks the token-attention weights, and renders the
top-10 tokens as an ASCII bar chart plus a per-line attention heat
strip over the gadget — the paper's interpretability study.
"""

from repro import SEVulDet, generate_sard_corpus
from repro.core.attention_hook import attention_report, weights_by_line
from repro.core.config import SCALE_PRESETS
from repro.core.pipeline import extract_gadgets
from repro.datasets.xen import cve_2016_9776


def bar(fraction: float, width: int = 34) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    print("=== Fig 6: attention-weight visualization ===\n")

    print("[1/2] training SEVulDet ...")
    detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=13)
    detector.fit(generate_sard_corpus(120, seed=17))

    print("[2/2] extracting the CVE-2016-9776 gadget ...\n")
    case = cve_2016_9776(vulnerable=True)
    gadgets = extract_gadgets([case], deduplicate=False,
                              keep_gadget=True)
    candidates = [g for g in gadgets
                  if g.criterion.function == "mcf_fec_receive"
                  and g.label == 1]
    gadget = max(candidates, key=lambda g: len(g.tokens))
    print(f"gadget: {gadget.criterion} — {len(gadget.tokens)} tokens, "
          "ingested whole (no truncation)\n")

    model, vocab = detector.model, detector.dataset.vocab
    top = attention_report(model, vocab, gadget, top_k=10)
    print("top-10 attention tokens (percent of peak weight):")
    for rank, entry in enumerate(top, start=1):
        print(f"  {rank:2d}. {entry.token:12s} "
              f"{bar(entry.percent / 100)} {entry.percent:5.1f}%")

    print("\nattention mass per gadget source line "
          "(* = ground-truth vulnerable line):")
    by_line = weights_by_line(model, vocab, gadget)
    peak = max(by_line.values()) or 1.0
    source_lines = case.source.split("\n")
    for line_no in sorted(by_line):
        marker = "*" if line_no in case.vulnerable_lines else " "
        text = source_lines[line_no - 1].strip()[:44] \
            if line_no <= len(source_lines) else ""
        print(f"  {marker} L{line_no:3d} "
              f"{bar(by_line[line_no] / peak, 20)} {text}")

    vulnerable_mass = sum(w for line, w in by_line.items()
                          if line in case.vulnerable_lines)
    print(f"\nattention mass on the vulnerable lines: "
          f"{vulnerable_mass:.1%} "
          f"(uniform share would be "
          f"{sum(1 for l in by_line if l in case.vulnerable_lines) / len(by_line):.1%})")


if __name__ == "__main__":
    main()
