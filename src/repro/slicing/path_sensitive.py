"""Algorithm 1 — path-sensitive code gadget generation (paper Step I.4).

The algorithm augments a slice with the *control ranges* it crosses so
that scope boundaries — which branch a statement actually lives in —
survive into the gadget text:

a) build the AST and find *key nodes* matching the eight control-
   statement syntax characteristics (``if``, ``else if``, ``else``,
   ``for``, ``while``, ``do while``, ``switch``, ``case``);
b) a key node's control range is the [min, max] line span of its
   subtree;
c) semantically-related adjacent ranges are *bound* (``else if``/
   ``else`` to their ``if`` chain, ``case`` to its ``switch``);
d) a brace-matching stack pass fixes range ends that the AST under-
   approximates (e.g. a one-line body whose closing brace sits on a
   later line);
e) every range containing a sliced statement is inserted into the
   slice: its header line and its end line become ``control-header`` /
   ``control-end`` gadget lines, as do the headers of bound ranges;
f) statements are ordered by line within functions and caller-before-
   callee across functions.

``goto``/``setjmp`` style jumps are *not* key nodes: their successors
already appear in the forward/backward slices (paper Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast_nodes as A
from ..lang.callgraph import AnalyzedProgram
from .gadget import CodeGadget, GadgetLine, order_functions
from .slicer import Slice, compute_slice
from .special_tokens import SlicingCriterion

__all__ = ["ControlRange", "extract_control_ranges", "brace_ranges",
           "assemble_path_sensitive_gadget", "path_sensitive_gadget"]


@dataclass
class ControlRange:
    """One key node's control range (Algorithm 1 ``m`` entries).

    Attributes:
        kind: one of the eight syntax characteristics.
        header_line: line of the controlling keyword.
        start: first line of the controlled span.
        end: last line of the controlled span (closing brace included).
        bound: header lines of semantically-bound sibling ranges
            (``if``/``else if`` chain for an ``else``, the ``switch``
            for a ``case``).
    """

    kind: str
    header_line: int
    start: int
    end: int
    bound: list[int] = field(default_factory=list)

    def contains(self, line: int) -> bool:
        return self.start <= line <= self.end


def _subtree_max_line(node: A.Node) -> int:
    best = node.line
    for child in A.walk(node):
        best = max(best, child.line)
        if isinstance(child, A.Block):
            best = max(best, child.end_line)
        elif isinstance(child, A.Switch):
            best = max(best, child.end_line)
        elif isinstance(child, A.DoWhile):
            best = max(best, child.while_line)
    return best


def _subtree_min_line(node: A.Node) -> int:
    best = node.line
    for child in A.walk(node):
        if child.line:
            best = min(best, child.line)
    return best


def brace_ranges(source_lines: list[str]) -> list[tuple[int, int]]:
    """Match ``{``/``}`` pairs with a stack (Algorithm 1 lines 15-18).

    Returns (open_line, close_line) pairs, 1-based.  String/char
    literals and comments are skipped so braces inside them don't break
    the match.
    """
    pairs: list[tuple[int, int]] = []
    stack: list[int] = []
    in_block_comment = False
    for line_no, raw in enumerate(source_lines, start=1):
        index = 0
        in_string: str | None = None
        while index < len(raw):
            char = raw[index]
            if in_block_comment:
                if raw.startswith("*/", index):
                    in_block_comment = False
                    index += 2
                    continue
                index += 1
                continue
            if in_string is not None:
                if char == "\\":
                    index += 2
                    continue
                if char == in_string:
                    in_string = None
                index += 1
                continue
            if raw.startswith("//", index):
                break
            if raw.startswith("/*", index):
                in_block_comment = True
                index += 2
                continue
            if char in "\"'":
                in_string = char
            elif char == "{":
                stack.append(line_no)
            elif char == "}" and stack:
                pairs.append((stack.pop(), line_no))
            index += 1
    return pairs


class _RangeCollector:
    def __init__(self, function: A.FunctionDef,
                 braces: list[tuple[int, int]]):
        self.function = function
        self.ranges: list[ControlRange] = []
        self._brace_end = {open_line: close_line
                           for open_line, close_line in braces}

    def collect(self) -> list[ControlRange]:
        self._visit(self.function.body, chain=[])
        return self.ranges

    def _fix_end(self, start: int, end: int) -> int:
        """Extend a range end to its closing brace when the stack pass
        found a later one (Algorithm 1: m[1] <- Max(m[1], stack))."""
        for open_line in range(start, end + 1):
            close = self._brace_end.get(open_line)
            if close is not None and close > end:
                end = close
        return end

    def _add(self, kind: str, header: int, body: A.Node,
             bound: list[int]) -> ControlRange:
        start = min(header, _subtree_min_line(body))
        end = self._fix_end(start, max(header, _subtree_max_line(body)))
        range_ = ControlRange(kind, header, start, end, list(bound))
        self.ranges.append(range_)
        return range_

    def _visit(self, node: A.Node, chain: list[int]) -> None:
        if isinstance(node, A.If):
            kind = "elseif" if node.is_elseif else "if"
            own_chain = chain if node.is_elseif else []
            range_ = self._add(kind, node.line, node.then, own_chain)
            next_chain = own_chain + [node.line]
            self._visit(node.then, [])
            if node.otherwise is not None:
                if isinstance(node.otherwise, A.If) and \
                        node.otherwise.is_elseif:
                    self._visit(node.otherwise, next_chain)
                else:
                    header = node.else_line or node.otherwise.line
                    self._add("else", header, node.otherwise, next_chain)
                    self._visit(node.otherwise, [])
            return
        if isinstance(node, A.For):
            self._add("for", node.line, node.body, [])
        elif isinstance(node, A.While):
            self._add("while", node.line, node.body, [])
        elif isinstance(node, A.DoWhile):
            range_ = self._add("dowhile", node.line, node.body, [])
            range_.end = max(range_.end, node.while_line)
        elif isinstance(node, A.Switch):
            switch_range = ControlRange("switch", node.line, node.line,
                                        max(node.end_line,
                                            _subtree_max_line(node)))
            self.ranges.append(switch_range)
            for case in node.cases:
                if case.stmts:
                    end = max(_subtree_max_line(stmt)
                              for stmt in case.stmts)
                else:
                    end = case.line
                end = self._fix_end(case.line, end)
                self.ranges.append(
                    ControlRange("case", case.line, case.line, end,
                                 [node.line]))
        for child in node.children():
            if not isinstance(node, A.If):
                self._visit(child, [])


def extract_control_ranges(program: AnalyzedProgram,
                           function: str) -> list[ControlRange]:
    """All control ranges of one function (Algorithm 1 lines 4-18).

    Memoized per program object: assembling one gadget per slicing
    criterion revisits the same functions dozens of times per file, and
    the brace-matching pass re-lexes the *whole* source each call.
    Programs are analyzed once and never mutated afterwards, so both
    the brace pairs and each function's collected ranges are cached on
    the instance (callers must not mutate the returned list).
    """
    cache = getattr(program, "_control_range_cache", None)
    if cache is None:
        cache = {}
        program._control_range_cache = cache
    if function not in cache:
        fn = program.unit.function(function)
        if fn is None:
            cache[function] = []
        else:
            braces = getattr(program, "_brace_pairs", None)
            if braces is None:
                braces = brace_ranges(program.source.lines)
                program._brace_pairs = braces
            cache[function] = _RangeCollector(fn, braces).collect()
    return cache[function]


def assemble_path_sensitive_gadget(program: AnalyzedProgram,
                                   slice_: Slice) -> CodeGadget:
    """Insert crossed control ranges into the slice and order it
    (Algorithm 1 lines 19-36)."""
    criterion = slice_.criterion
    per_function = slice_.lines(program)
    lines: list[GadgetLine] = []
    for fn_name in order_functions(program, list(per_function)):
        slice_lines = per_function[fn_name]
        ranges = extract_control_ranges(program, fn_name)
        headers: set[int] = set()
        ends: set[int] = set()
        for range_ in ranges:
            if any(range_.start <= line <= range_.end
                   for line in slice_lines):
                headers.add(range_.header_line)
                ends.add(range_.end)
                headers.update(range_.bound)
        ordered = sorted(slice_lines | headers | ends)
        for line_no in ordered:
            text = program.statement_text(line_no)
            if not text:
                continue
            if fn_name == criterion.function and \
                    line_no == criterion.line:
                role = "criterion"
            elif line_no in slice_lines:
                role = "slice"
            elif line_no in headers:
                role = "control-header"
            else:
                role = "control-end"
            lines.append(GadgetLine(fn_name, line_no, text, role))
    return CodeGadget(criterion, lines, kind="path-sensitive",
                      source_path=program.source.path)


def path_sensitive_gadget(program: AnalyzedProgram,
                          criterion: SlicingCriterion) -> CodeGadget:
    """Slice + Algorithm 1 in one call (the SEVulDet pipeline)."""
    slice_ = compute_slice(program, criterion, use_control=True)
    return assemble_path_sensitive_gadget(program, slice_)
