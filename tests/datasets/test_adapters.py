"""Dataset-adapter protocol tests: determinism, splits, layouts.

The byte-identical-per-seed contract pinned here is what makes
``benchmarks/results/BENCH_matrix.json`` regression-trackable: a
matrix rerun on the same seed must see the same corpus.
"""

import pytest

from repro.datasets.adapters import (CVEFixesAdapter, DatasetAdapter,
                                     DatasetSplit, FixedCorpusAdapter,
                                     JulietAdapter, NvdAdapter,
                                     SardAdapter, XenAdapter,
                                     default_adapters, derive_seed)
from repro.datasets.cvefixes import (cvefixes_layout,
                                     generate_cvefixes_corpus)
from repro.datasets.juliet import generate_juliet_corpus, juliet_layout
from repro.datasets.sard import generate_sard_corpus

ADAPTERS = [
    SardAdapter(24, 12),
    NvdAdapter(24, 12),
    XenAdapter(20, 12),
    JulietAdapter(24, 12),
    CVEFixesAdapter(24, 12),
]


def fingerprint(split: DatasetSplit) -> list[tuple]:
    return [(case.name, case.source, case.vulnerable, case.cwe,
             tuple(sorted(case.vulnerable_lines)))
            for case in (*split.train, *split.test)]


@pytest.mark.parametrize("adapter", ADAPTERS,
                         ids=lambda a: a.name)
class TestAdapterDeterminism:
    def test_same_seed_byte_identical(self, adapter):
        assert fingerprint(adapter.load(11)) == \
            fingerprint(adapter.load(11))

    def test_different_seeds_differ(self, adapter):
        assert fingerprint(adapter.load(11)) != \
            fingerprint(adapter.load(12))

    def test_protocol_conformance(self, adapter):
        assert isinstance(adapter, DatasetAdapter)
        split = adapter.load(3)
        assert split.name == adapter.name
        assert split.train and split.test

    def test_train_test_disjoint_names(self, adapter):
        split = adapter.load(5)
        train_names = {case.name for case in split.train}
        test_names = {case.name for case in split.test}
        assert not train_names & test_names

    def test_by_cwe_covers_all_test_cases(self, adapter):
        split = adapter.load(5)
        groups = split.by_cwe()
        assert sum(len(bucket) for bucket in groups.values()) == \
            len(split.test)
        for key in groups:
            assert key.startswith(f"{adapter.name}/CWE-")


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(7, "sard", "train") == \
            derive_seed(7, "sard", "train")
        assert derive_seed(7, "sard", "train") != \
            derive_seed(7, "sard", "test")
        assert derive_seed(7, "sard", "train") != \
            derive_seed(8, "sard", "train")

    def test_not_part_concatenation_sensitive(self):
        # ('ab', 'c') and ('a', 'bc') must derive different seeds
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestFixedCorpusAdapter:
    def test_ignores_seed_and_copies(self):
        train = generate_sard_corpus(6, seed=1)
        test = generate_sard_corpus(4, seed=2)
        adapter = FixedCorpusAdapter("fixed", train, test)
        one, two = adapter.load(1), adapter.load(99)
        assert fingerprint(one) == fingerprint(two)
        one.train.append(test[0])  # mutating a split leaks nowhere
        assert len(adapter.load(1).train) == 6


class TestJulietCorpus:
    def test_paired_bad_good(self):
        cases = generate_juliet_corpus(20, seed=3)
        assert len(cases) == 20
        pairs = {}
        for case in cases:
            pairs.setdefault(case.meta["juliet_pair"], []).append(case)
        for members in pairs.values():
            assert sorted(c.meta["variant"] for c in members) == \
                ["bad", "good"]
            flags = {c.meta["variant"]: c.vulnerable for c in members}
            assert flags == {"bad": True, "good": False}

    def test_per_cwe_directory_names(self):
        cases = generate_juliet_corpus(12, seed=4)
        for case in cases:
            parts = case.name.split("/")
            assert parts[0] == "juliet"
            assert parts[1].startswith("CWE-")
            assert case.origin == "juliet"
        layout = juliet_layout(cases)
        assert all(key.startswith("juliet/CWE-") for key in layout)
        assert sum(len(v) for v in layout.values()) == len(cases)

    def test_category_restriction(self):
        cases = generate_juliet_corpus(10, seed=5, categories=("FC",))
        assert all(case.category == "FC" for case in cases)
        with pytest.raises(ValueError):
            generate_juliet_corpus(10, seed=5, categories=("nope",))


class TestCVEFixesCorpus:
    def test_commit_layout_and_sides(self):
        cases = generate_cvefixes_corpus(30, seed=6)
        assert len(cases) == 30
        for case in cases:
            parts = case.name.split("/")
            assert parts[0] == "cvefixes"
            assert parts[1].startswith("CVE-")
            assert len(parts[2]) == 8  # commit hash prefix
            assert parts[3] == ("pre" if case.vulnerable else "post")
            assert case.origin == "cvefixes"
        layout = cvefixes_layout(cases)
        assert all(key.startswith("cvefixes/CVE-") for key in layout)

    def test_vulnerable_fraction_respected(self):
        cases = generate_cvefixes_corpus(40, seed=7,
                                         vulnerable_fraction=0.25)
        vulnerable = sum(case.vulnerable for case in cases)
        assert vulnerable == 10  # error diffusion makes this exact


def test_default_adapters_registry():
    adapters = default_adapters(20, 10)
    assert set(adapters) >= {"sard", "nvd", "xen", "juliet",
                             "cvefixes"}
    for name, adapter in adapters.items():
        assert adapter.name == name


def test_xen_adapter_holds_out_cves():
    adapter = XenAdapter(20, 12)
    split = adapter.load(9)
    assert all("cve" not in case.meta for case in split.train)
    test_cves = {case.meta.get("cve") for case in split.test}
    assert {"CVE-2016-9776", "CVE-2016-4453",
            "CVE-2016-9104"} <= test_cves
