"""Tests for interval abstract interpretation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.cfg import build_cfg
from repro.lang.intervals import (Interval, analyze_intervals,
                                  interval_of_expr)
from repro.lang.parser import parse

INF = float("inf")


def states_for(body: str, params: str = "int n"):
    unit = parse(f"void f({params}) {{\n{body}\n}}")
    cfg = build_cfg(unit.functions[0])
    return cfg, analyze_intervals(cfg)


def state_at_line(body: str, line: int, params: str = "int n"):
    cfg, states = states_for(body, params)
    node = next(x for x in cfg.statement_nodes() if x.line == line)
    return states[node.id]


class TestIntervalAlgebra:
    def test_const(self):
        assert Interval.const(5) == Interval(5, 5)
        assert Interval.const(5).is_constant

    def test_join(self):
        assert Interval(1, 3).join(Interval(5, 9)) == Interval(1, 9)

    def test_meet(self):
        assert Interval(1, 5).meet(Interval(3, 9)) == Interval(3, 5)

    def test_meet_disjoint_is_empty(self):
        assert Interval(1, 2).meet(Interval(5, 6)).is_empty

    def test_add_sub(self):
        a, b = Interval(1, 2), Interval(10, 20)
        assert a.add(b) == Interval(11, 22)
        assert b.sub(a) == Interval(8, 19)

    def test_mul_signs(self):
        assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)

    def test_widen_unstable_bounds(self):
        widened = Interval(0, 5).widen(Interval(0, 9))
        assert widened == Interval(0, INF)
        assert Interval(0, 5).widen(Interval(-1, 5)) == \
            Interval(-INF, 5)

    def test_widen_stable_is_identity(self):
        assert Interval(0, 5).widen(Interval(1, 4)) == Interval(0, 5)

    @given(st.integers(-50, 50), st.integers(-50, 50),
           st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=80)
    def test_mul_soundness(self, a_lo, a_hi, b_lo, b_hi):
        a = Interval(min(a_lo, a_hi), max(a_lo, a_hi))
        b = Interval(min(b_lo, b_hi), max(b_lo, b_hi))
        product = a.mul(b)
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                assert product.contains(x * y)


class TestAnalysis:
    def test_constant_propagation(self):
        state = state_at_line("int a = 4;\nint b = a + 1;\nint c = b;",
                              line=4)
        assert state["b"] == Interval(5, 5)

    def test_branch_refinement_true_edge(self):
        state = state_at_line(
            "if (n < 10) {\nint inside = n;\n}", line=3)
        assert state["n"].hi == 9

    def test_branch_refinement_false_edge(self):
        state = state_at_line(
            "int a;\nif (n < 10) {\na = 1;\n} else {\na = 2;\n}",
            line=6)
        assert state["n"].lo == 10

    def test_conjunction_refinement(self):
        state = state_at_line(
            "if (n >= 0 && n < 8) {\nint inside = n;\n}", line=3)
        assert state["n"] == Interval(0, 7)

    def test_join_after_if(self):
        state = state_at_line(
            "int a;\nif (n) {\na = 1;\n} else {\na = 5;\n}\n"
            "int after = a;", line=8)
        assert state["a"] == Interval(1, 5)

    def test_loop_widens_to_infinity(self):
        state = state_at_line(
            "int i = 0;\nwhile (n) {\ni = i + 1;\n}\nint done = i;",
            line=6)
        assert state["i"].lo == 0
        assert state["i"].hi == INF

    def test_loop_counter_bounded_by_condition(self):
        state = state_at_line(
            "int i = 0;\nwhile (i < 10) {\nint body = i;\ni = i + 1;"
            "\n}", line=4)
        assert state["i"].hi <= 9

    def test_clamp_pattern(self):
        """The guard-family pattern: after clamping, the copy length is
        provably below the buffer size."""
        state = state_at_line(
            "int len = n;\nif (len > 7) {\nlen = 7;\n}\n"
            "if (len < 0) {\nlen = 0;\n}\nint use = len;", line=9)
        assert state["len"] == Interval(0, 7)

    def test_modulo_bound(self):
        state = state_at_line("int m = n % 5;\nint use = m;", line=3,
                              params="int n")
        assert state["m"].hi == 4

    def test_strlen_nonnegative(self):
        state = state_at_line(
            "int len = strlen(data);\nint use = len;", line=3,
            params="char *data")
        assert state["len"].lo == 0

    def test_parameters_start_top(self):
        state = state_at_line("int a = n;", line=2)
        assert state["n"] == Interval.top()

    def test_unknown_call_result_is_top(self):
        state = state_at_line("int a = mystery();\nint b = a;", line=3)
        assert state["a"] == Interval.top()

    def test_termination_on_nested_loops(self):
        cfg, states = states_for(
            "for (int i = 0; i < n; i++) {\n"
            "for (int j = 0; j < i; j++) {\nint x = i + j;\n}\n}")
        assert states  # fixed point reached


class TestExprEvaluation:
    def test_ternary_joins(self):
        unit = parse("void f(int n) { int a = n ? 1 : 9; }")
        decl = unit.functions[0].body.stmts[0]
        value = interval_of_expr(decl.declarators[0].init, {})
        assert value == Interval(1, 9)

    def test_comparison_is_boolean(self):
        unit = parse("void f(int n) { int a = n < 5; }")
        decl = unit.functions[0].body.stmts[0]
        assert interval_of_expr(decl.declarators[0].init, {}) == \
            Interval(0, 1)
