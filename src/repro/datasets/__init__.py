"""Synthetic corpora: SARD/NVD substitutes and Xen CVE miniatures."""

from .manifest import TestCase
from .cwe_templates import TEMPLATES, Template, generate_case, template_names
from .sard import corpus_statistics, generate_sard_corpus
from .nvd import generate_nvd_corpus
from .xen import CVE_CASES, cve_2016_4453, cve_2016_9104, cve_2016_9776, generate_xen_corpus

__all__ = [
    "TestCase", "TEMPLATES", "Template", "generate_case", "template_names",
    "corpus_statistics", "generate_sard_corpus", "generate_nvd_corpus",
    "CVE_CASES", "cve_2016_4453", "cve_2016_9104", "cve_2016_9776",
    "generate_xen_corpus",
]
