"""Lexer for the C subset used throughout the reproduction.

The lexer turns raw source text into a stream of :class:`Token` objects
carrying kind, text, line and column.  It is deliberately forgiving: any
byte sequence lexes (unknown characters become ``ERROR`` tokens) so that
property-based tests can throw arbitrary input at it, and so that the
lexical baseline scanners (flawfinder/RATS simulacra) can scan code the
parser does not fully support.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TokenKind", "Token", "Lexer", "tokenize", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    COMMENT = "comment"
    ERROR = "error"
    EOF = "eof"


#: C keywords recognised by the frontend (C99 subset plus common extensions).
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "restrict", "return",
        "short", "signed", "sizeof", "static", "struct", "switch",
        "typedef", "union", "unsigned", "void", "volatile", "while",
        "bool", "true", "false", "NULL", "size_t", "ssize_t", "uint8_t",
        "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
        "int32_t", "int64_t", "wchar_t",
    }
)

# Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "#",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: lexical category.
        text: exact source text of the token.
        line: 1-based line number of the first character.
        col: 1-based column number of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_keyword(self, *names: str) -> bool:
        """Return True when the token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *names: str) -> bool:
        """Return True when the token is one of the given punctuators."""
        return self.kind is TokenKind.PUNCT and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


class Lexer:
    """Streaming lexer over a source string.

    Comments are produced as ``COMMENT`` tokens so callers interested in
    raw text (e.g. the clone-detection baseline) can see them; the parser
    filters them out.
    """

    def __init__(self, source: str):
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._src[index] if index < len(self._src) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self._src[self._pos : self._pos + count]
        for ch in taken:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return taken

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with a single EOF."""
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
                continue
            line, col = self._line, self._col
            if ch == "/" and self._peek(1) == "/":
                yield Token(TokenKind.COMMENT, self._line_comment(), line, col)
            elif ch == "/" and self._peek(1) == "*":
                yield Token(TokenKind.COMMENT, self._block_comment(), line, col)
            elif ch.isalpha() or ch == "_":
                text = self._identifier()
                kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
                yield Token(kind, text, line, col)
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield Token(TokenKind.NUMBER, self._number(), line, col)
            elif ch == '"':
                yield Token(TokenKind.STRING, self._quoted('"'), line, col)
            elif ch == "'":
                yield Token(TokenKind.CHAR, self._quoted("'"), line, col)
            else:
                punct = self._punctuator()
                if punct is not None:
                    yield Token(TokenKind.PUNCT, punct, line, col)
                else:
                    yield Token(TokenKind.ERROR, self._advance(), line, col)
        yield Token(TokenKind.EOF, "", self._line, self._col)

    def _line_comment(self) -> str:
        start = self._pos
        while self._pos < len(self._src) and self._peek() != "\n":
            self._advance()
        return self._src[start : self._pos]

    def _block_comment(self) -> str:
        start = self._pos
        self._advance(2)
        while self._pos < len(self._src):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                break
            self._advance()
        return self._src[start : self._pos]

    def _identifier(self) -> str:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return self._src[start : self._pos]

    def _peek_in(self, chars: str, offset: int = 0) -> bool:
        """Membership test that is False at end of input ('' is a
        substring of everything, so a bare `in` check would loop)."""
        ch = self._peek(offset)
        return bool(ch) and ch in chars

    def _number(self) -> str:
        start = self._pos
        if self._peek() == "0" and self._peek_in("xX", 1):
            self._advance(2)
            while self._peek().isalnum():
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == ".":
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek_in("eE") and (
                self._peek(1).isdigit()
                or (self._peek_in("+-", 1) and self._peek(2).isdigit())
            ):
                self._advance()
                if self._peek_in("+-"):
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # Integer/float suffixes (u, l, f combinations).
        while self._peek_in("uUlLfF"):
            self._advance()
        return self._src[start : self._pos]

    def _quoted(self, quote: str) -> str:
        start = self._pos
        self._advance()  # opening quote
        while self._pos < len(self._src) and self._peek() != quote:
            if self._peek() == "\\" and self._pos + 1 < len(self._src):
                self._advance(2)
            elif self._peek() == "\n":
                break  # unterminated literal: stop at end of line
            else:
                self._advance()
        if self._peek() == quote:
            self._advance()
        return self._src[start : self._pos]

    def _punctuator(self) -> str | None:
        for punct in _PUNCTUATORS:
            if self._src.startswith(punct, self._pos):
                self._advance(len(punct))
                return punct
        return None


def tokenize(source: str, *, keep_comments: bool = False) -> list[Token]:
    """Tokenize ``source`` into a list ending with an EOF token.

    Args:
        source: C source text.
        keep_comments: when False (default) COMMENT tokens are dropped.
    """
    toks = list(Lexer(source).tokens())
    if not keep_comments:
        toks = [t for t in toks if t.kind is not TokenKind.COMMENT]
    return toks
