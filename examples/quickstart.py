#!/usr/bin/env python3
"""Quickstart: train SEVulDet on a synthetic SARD corpus and scan code.

Run with::

    python examples/quickstart.py

Trains the full pipeline (path-sensitive gadgets -> word2vec -> token
attention -> CNN/CBAM/SPP) on a small corpus, evaluates on held-out
programs, then scans a hand-written vulnerable function and prints the
findings with line numbers.
"""

from repro import SEVulDet, generate_sard_corpus
from repro.core.config import SCALE_PRESETS

TARGET = """\
void handle_packet(char *payload, int length) {
    char frame[32];
    int checksum = length * 3;
    printf("%d\\n", checksum);
    if (length < 32) {
        frame[0] = 0;
    }
    memcpy(frame, payload, length);
    printf("%s\\n", frame);
}

int main() {
    char buffer[128];
    fgets(buffer, 128, 0);
    handle_packet(buffer, atoi(buffer));
    return 0;
}
"""


def main() -> None:
    print("=== SEVulDet quickstart ===\n")

    print("[1/3] generating training corpus (synthetic SARD) ...")
    train_cases = generate_sard_corpus(120, seed=7)
    vulnerable = sum(case.vulnerable for case in train_cases)
    print(f"      {len(train_cases)} programs "
          f"({vulnerable} vulnerable, "
          f"{len(train_cases) - vulnerable} patched)")

    print("[2/3] training the detector (path-sensitive gadgets -> "
          "word2vec -> CNN/attention/SPP) ...")
    detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=1)
    report = detector.fit(train_cases)
    print(f"      final training loss: {report.final_loss:.4f}")

    held_out = generate_sard_corpus(30, seed=99)
    correct = sum(detector.flags_case(case) == case.vulnerable
                  for case in held_out)
    print(f"      held-out program accuracy: "
          f"{correct}/{len(held_out)}")

    print("[3/3] scanning a new file ...\n")
    findings = detector.detect(TARGET, path="handle_packet.c")
    if not findings:
        print("      no findings above the decision threshold "
              f"({detector.threshold})")
    for finding in findings:
        print(f"      FINDING {finding.path}:{finding.line} "
              f"[{finding.category}] in {finding.function}() "
              f"score={finding.score:.2f}")
    source_lines = TARGET.split("\n")
    for finding in findings[:3]:
        print(f"        > {source_lines[finding.line - 1].strip()}")


if __name__ == "__main__":
    main()
