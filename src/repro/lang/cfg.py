"""Control-flow graph construction from the AST.

Each function gets a :class:`CFG` whose nodes are statement-level units
(one node per simple statement and per control-statement condition),
mirroring the granularity Joern uses for PDG construction in the paper's
toolchain.  Edge labels record branch polarity (``true``/``false``) and
``case``/``default`` dispatch, which downstream control-dependence
analysis turns into labelled control edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from . import ast_nodes as A

__all__ = ["NodeKind", "CFGNode", "CFGEdge", "CFG", "build_cfg"]


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    STATEMENT = "statement"
    CONDITION = "condition"
    SWITCH = "switch"


@dataclass
class CFGNode:
    """One control-flow node.

    Attributes:
        id: dense integer id, unique within the CFG.
        kind: structural role of the node.
        ast: underlying AST node (statement, or the control statement a
            condition belongs to).
        line: 1-based source line.
        label: short human-readable description (used in tests and dumps).
    """

    id: int
    kind: NodeKind
    ast: Optional[A.Node]
    line: int
    label: str = ""

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CFGNode) and other.id == self.id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CFGNode({self.id}, {self.kind.value}, "
                f"line={self.line}, {self.label!r})")


@dataclass(frozen=True)
class CFGEdge:
    src: int
    dst: int
    label: str = ""  # '', 'true', 'false', 'case', 'default', 'goto'


class CFG:
    """Control-flow graph of a single function."""

    def __init__(self, function: A.FunctionDef):
        self.function = function
        self.nodes: dict[int, CFGNode] = {}
        self.edges: list[CFGEdge] = []
        self._succ: dict[int, list[CFGEdge]] = {}
        self._pred: dict[int, list[CFGEdge]] = {}
        self._ast_index: dict[int, CFGNode] = {}
        self.entry = self.add_node(NodeKind.ENTRY, None, function.line,
                                   f"ENTRY {function.name}")
        self.exit = self.add_node(NodeKind.EXIT, None,
                                  function.body.end_line or function.line,
                                  f"EXIT {function.name}")

    def add_node(self, kind: NodeKind, ast: Optional[A.Node], line: int,
                 label: str = "") -> CFGNode:
        """Create and register a new node."""
        node = CFGNode(len(self.nodes), kind, ast, line, label)
        self.nodes[node.id] = node
        self._succ[node.id] = []
        self._pred[node.id] = []
        if ast is not None:
            self._ast_index[id(ast)] = node
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode, label: str = "") -> None:
        """Add a directed edge; duplicate (src, dst, label) edges collapse."""
        edge = CFGEdge(src.id, dst.id, label)
        if edge in self._succ[src.id]:
            return
        self.edges.append(edge)
        self._succ[src.id].append(edge)
        self._pred[dst.id].append(edge)

    def successors(self, node: CFGNode) -> Iterator[CFGNode]:
        for edge in self._succ[node.id]:
            yield self.nodes[edge.dst]

    def predecessors(self, node: CFGNode) -> Iterator[CFGNode]:
        for edge in self._pred[node.id]:
            yield self.nodes[edge.src]

    def out_edges(self, node: CFGNode) -> list[CFGEdge]:
        return list(self._succ[node.id])

    def in_edges(self, node: CFGNode) -> list[CFGEdge]:
        return list(self._pred[node.id])

    def statement_nodes(self) -> list[CFGNode]:
        """All nodes carrying an AST payload, in id order."""
        return [n for n in self.nodes.values() if n.ast is not None]

    def node_for_ast(self, ast: A.Node) -> Optional[CFGNode]:
        """CFG node created for a given AST statement, if any."""
        return self._ast_index.get(id(ast))


# 'preds' threading below is a list of (node, edge_label) pairs so that
# condition branch polarity survives through empty bodies: the dangling
# false-edge of an if with no else is [(cond, 'false')].
_Preds = list[tuple[CFGNode, str]]


class _Builder:
    def __init__(self, function: A.FunctionDef):
        self.cfg = CFG(function)
        self.labels: dict[str, CFGNode] = {}
        self.pending_gotos: list[tuple[CFGNode, str]] = []

    def build(self) -> CFG:
        ends = self._stmt_list(self.cfg.function.body.stmts,
                               [(self.cfg.entry, "")], None, None)
        self._link(ends, self.cfg.exit)
        for src, label in self.pending_gotos:
            target = self.labels.get(label, self.cfg.exit)
            self.cfg.add_edge(src, target, "goto")
        return self.cfg

    def _link(self, preds: _Preds, node: CFGNode) -> None:
        for pred, label in preds:
            self.cfg.add_edge(pred, node, label)

    def _stmt_list(self, stmts: list[A.Stmt], preds: _Preds,
                   brk: Optional[_Preds],
                   cont: Optional[CFGNode]) -> _Preds:
        current = preds
        for stmt in stmts:
            current = self._stmt(stmt, current, brk, cont)
        return current

    def _stmt(self, stmt: A.Stmt, preds: _Preds, brk: Optional[_Preds],
              cont: Optional[CFGNode]) -> _Preds:
        cfg = self.cfg
        if isinstance(stmt, A.Block):
            return self._stmt_list(stmt.stmts, preds, brk, cont)
        if isinstance(stmt, A.Empty):
            return preds
        if isinstance(stmt, A.If):
            return self._if(stmt, preds, brk, cont)
        if isinstance(stmt, A.While):
            return self._while(stmt, preds)
        if isinstance(stmt, A.DoWhile):
            return self._do_while(stmt, preds)
        if isinstance(stmt, A.For):
            return self._for(stmt, preds, brk, cont)
        if isinstance(stmt, A.Switch):
            return self._switch(stmt, preds, cont)
        if isinstance(stmt, A.Break):
            node = cfg.add_node(NodeKind.STATEMENT, stmt, stmt.line, "break")
            self._link(preds, node)
            if brk is not None:
                brk.append((node, ""))
            else:
                cfg.add_edge(node, cfg.exit)
            return []
        if isinstance(stmt, A.Continue):
            node = cfg.add_node(NodeKind.STATEMENT, stmt, stmt.line,
                                "continue")
            self._link(preds, node)
            if cont is not None:
                cfg.add_edge(node, cont)
            else:
                cfg.add_edge(node, cfg.exit)
            return []
        if isinstance(stmt, A.Return):
            node = cfg.add_node(NodeKind.STATEMENT, stmt, stmt.line, "return")
            self._link(preds, node)
            cfg.add_edge(node, cfg.exit)
            return []
        if isinstance(stmt, A.Goto):
            node = cfg.add_node(NodeKind.STATEMENT, stmt, stmt.line,
                                f"goto {stmt.label}")
            self._link(preds, node)
            self.pending_gotos.append((node, stmt.label))
            return []
        if isinstance(stmt, A.Label):
            node = cfg.add_node(NodeKind.STATEMENT, stmt, stmt.line,
                                f"{stmt.name}:")
            self._link(preds, node)
            self.labels[stmt.name] = node
            return self._stmt(stmt.stmt, [(node, "")], brk, cont)
        # Decl / ExprStmt / any other simple statement.
        node = cfg.add_node(NodeKind.STATEMENT, stmt, stmt.line)
        self._link(preds, node)
        return [(node, "")]

    def _if(self, stmt: A.If, preds: _Preds, brk: Optional[_Preds],
            cont: Optional[CFGNode]) -> _Preds:
        cond = self.cfg.add_node(NodeKind.CONDITION, stmt, stmt.line,
                                 "elseif" if stmt.is_elseif else "if")
        self._link(preds, cond)
        then_ends = self._stmt(stmt.then, [(cond, "true")], brk, cont)
        if stmt.otherwise is not None:
            else_ends = self._stmt(stmt.otherwise, [(cond, "false")],
                                   brk, cont)
            return then_ends + else_ends
        return then_ends + [(cond, "false")]

    def _while(self, stmt: A.While, preds: _Preds) -> _Preds:
        cond = self.cfg.add_node(NodeKind.CONDITION, stmt, stmt.line, "while")
        self._link(preds, cond)
        breaks: _Preds = []
        body_ends = self._stmt(stmt.body, [(cond, "true")], breaks, cond)
        self._link(body_ends, cond)
        return [(cond, "false")] + breaks

    def _do_while(self, stmt: A.DoWhile, preds: _Preds) -> _Preds:
        cond = self.cfg.add_node(NodeKind.CONDITION, stmt,
                                 stmt.while_line or stmt.line, "dowhile")
        breaks: _Preds = []
        body_ends = self._stmt(stmt.body, preds, breaks, cond)
        self._link(body_ends, cond)
        first = self._first_node_of(stmt.body)
        if first is not None:
            self.cfg.add_edge(cond, first, "true")
        return [(cond, "false")] + breaks

    def _for(self, stmt: A.For, preds: _Preds, brk: Optional[_Preds],
             cont: Optional[CFGNode]) -> _Preds:
        cfg = self.cfg
        current = preds
        if stmt.init is not None:
            current = self._stmt(stmt.init, current, brk, cont)
        label = "for" if stmt.cond is not None else "for(;;)"
        cond = cfg.add_node(NodeKind.CONDITION, stmt, stmt.line, label)
        self._link(current, cond)
        step_node = None
        if stmt.step is not None:
            step_node = cfg.add_node(
                NodeKind.STATEMENT,
                A.ExprStmt(stmt.step.line, stmt.step.col, expr=stmt.step),
                stmt.step.line, "for-step")
        breaks: _Preds = []
        cont_target = step_node if step_node is not None else cond
        body_ends = self._stmt(stmt.body, [(cond, "true")], breaks,
                               cont_target)
        if step_node is not None:
            self._link(body_ends, step_node)
            cfg.add_edge(step_node, cond)
        else:
            self._link(body_ends, cond)
        if stmt.cond is not None:
            return [(cond, "false")] + breaks
        return breaks  # for(;;) only exits via break

    def _switch(self, stmt: A.Switch, preds: _Preds,
                cont: Optional[CFGNode]) -> _Preds:
        sw = self.cfg.add_node(NodeKind.SWITCH, stmt, stmt.line, "switch")
        self._link(preds, sw)
        breaks: _Preds = []
        fallthrough: _Preds = []
        has_default = False
        for case in stmt.cases:
            if case.is_default:
                has_default = True
                label = "default"
            else:
                label = "case"
            entry_preds = fallthrough + [(sw, label)]
            fallthrough = self._stmt_list(case.stmts, entry_preds, breaks,
                                          cont)
        ends = breaks + fallthrough
        if not has_default:
            ends.append((sw, "default"))
        return ends

    def _first_node_of(self, body: A.Stmt) -> Optional[CFGNode]:
        """Find the CFG node created for the first statement of a body."""
        stmt: A.Stmt | None = body
        while isinstance(stmt, A.Block):
            stmt = stmt.stmts[0] if stmt.stmts else None
        if stmt is None:
            return None
        if isinstance(stmt, (A.If, A.While, A.For, A.DoWhile, A.Switch)):
            return self.cfg.node_for_ast(stmt)
        return self.cfg.node_for_ast(stmt)


def build_cfg(function: A.FunctionDef) -> CFG:
    """Build the control-flow graph of ``function``."""
    return _Builder(function).build()
