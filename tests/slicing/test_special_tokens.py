"""Tests for special-token (slicing criterion) detection."""

from repro.lang.callgraph import analyze
from repro.slicing.special_tokens import TokenCategory, find_special_tokens


def criteria_of(source, categories=None):
    return find_special_tokens(analyze(source), categories)


def by_category(criteria):
    grouped = {}
    for c in criteria:
        grouped.setdefault(c.category, []).append(c)
    return grouped


class TestFunctionCalls:
    def test_risky_library_call_detected(self):
        crits = criteria_of(
            "void f(char *d) {\nchar b[4];\nstrcpy(b, d);\n}")
        fc = [c for c in crits if c.category is TokenCategory.FUNCTION_CALL]
        assert any(c.token == "strcpy" and c.line == 3 for c in fc)

    def test_benign_user_call_not_fc(self):
        crits = criteria_of("void g() {}\nvoid f() { g(); }")
        assert not [c for c in crits
                    if c.category is TokenCategory.FUNCTION_CALL]

    def test_each_call_site_counted(self):
        crits = criteria_of(
            "void f(char *d) {\nmemcpy(d, d, 1);\nmemcpy(d, d, 2);\n}")
        fc = [c for c in crits if c.token == "memcpy"]
        assert {c.line for c in fc} == {2, 3}


class TestArrayUsage:
    def test_array_index_detected(self):
        crits = criteria_of("void f(int n) {\nint a[4];\na[n] = 1;\n}")
        au = [c for c in crits if c.category is TokenCategory.ARRAY_USAGE]
        assert any(c.token == "a" and c.line == 3 for c in au)

    def test_pointer_indexing_counts_as_pointer_usage(self):
        crits = criteria_of("void f(char *p, int n) {\np[n] = 1;\n}")
        pu = [c for c in crits
              if c.category is TokenCategory.POINTER_USAGE]
        assert any(c.token == "p" for c in pu)

    def test_declared_array_indexing_stays_array_usage(self):
        crits = criteria_of("void f(int n) {\nint a[4];\na[n] = 1;\n}")
        au = [c for c in crits if c.category is TokenCategory.ARRAY_USAGE]
        assert any(c.token == "a" and c.line == 3 for c in au)


class TestPointerUsage:
    def test_deref_detected(self):
        crits = criteria_of("void f(char *p) {\n*p = 1;\n}")
        pu = [c for c in crits if c.category is TokenCategory.POINTER_USAGE]
        assert any(c.token == "p" and c.line == 2 for c in pu)

    def test_arrow_member_detected(self):
        crits = criteria_of(
            "struct s { int x; };\nvoid f(struct s *p) {\np->x = 1;\n}")
        pu = [c for c in crits if c.category is TokenCategory.POINTER_USAGE]
        assert any(c.token == "p" for c in pu)

    def test_pointer_declaration_detected(self):
        crits = criteria_of("void f() {\nchar *p = NULL;\n}")
        pu = [c for c in crits if c.category is TokenCategory.POINTER_USAGE]
        assert any(c.token == "p" for c in pu)


class TestArithmetic:
    def test_binary_arith_on_variable(self):
        crits = criteria_of("void f(int n) {\nint a = n * 4;\n}")
        ae = [c for c in crits
              if c.category is TokenCategory.ARITHMETIC_EXPR]
        assert any(c.token == "*" and c.line == 2 for c in ae)

    def test_constant_folding_not_interesting(self):
        crits = criteria_of("void f() {\nint a = 2 + 3;\n}")
        ae = [c for c in crits
              if c.category is TokenCategory.ARITHMETIC_EXPR]
        assert not ae

    def test_compound_assign_detected(self):
        crits = criteria_of("void f(int n) {\nn -= 3;\n}")
        ae = [c for c in crits
              if c.category is TokenCategory.ARITHMETIC_EXPR]
        assert any(c.token == "-" for c in ae)


class TestFiltering:
    SOURCE = ("void f(char *d, int n) {\nchar b[8];\nstrcpy(b, d);\n"
              "b[n] = 1;\nint x = n + 1;\n*d = 2;\n}")

    def test_category_filter(self):
        only_fc = criteria_of(
            self.SOURCE, frozenset({TokenCategory.FUNCTION_CALL}))
        assert {c.category for c in only_fc} == \
            {TokenCategory.FUNCTION_CALL}

    def test_all_four_categories_found(self):
        grouped = by_category(criteria_of(self.SOURCE))
        assert set(grouped) == set(TokenCategory)

    def test_sorted_deterministic(self):
        first = criteria_of(self.SOURCE)
        second = criteria_of(self.SOURCE)
        assert first == second

    def test_no_duplicates(self):
        crits = criteria_of(self.SOURCE)
        assert len(crits) == len(set(crits))
