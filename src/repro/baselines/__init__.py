"""Comparator systems: lexical scanners, taint queries, clone hashing,
and coverage-guided fuzzing."""

from .flawfinder import FLAWFINDER_RULES, FlawfinderScanner, LexicalFinding
from .rats import RATS_RULES, RatsFinding, RatsScanner
from .checkmarx import TAINT_SINKS, TAINT_SOURCES, CheckmarxScanner, TaintFinding
from .vuddy import FunctionFingerprint, VuddyScanner, abstract_function
from .afl import AFLFuzzer, CrashRecord, FuzzReport

__all__ = [
    "FLAWFINDER_RULES", "FlawfinderScanner", "LexicalFinding",
    "RATS_RULES", "RatsFinding", "RatsScanner",
    "TAINT_SINKS", "TAINT_SOURCES", "CheckmarxScanner", "TaintFinding",
    "FunctionFingerprint", "VuddyScanner", "abstract_function",
    "AFLFuzzer", "CrashRecord", "FuzzReport",
]
