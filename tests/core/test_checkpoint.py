"""Crash-and-resume training tests.

The headline guarantee: a run killed mid-training and resumed from its
checkpoint finishes with *exactly* the weights an uninterrupted run
would have produced — same RNG draws, same batch schedule, same Adam
trajectory.  Everything here asserts exact array equality, not
closeness.
"""

import numpy as np
import pytest

from repro.core.pipeline import (encode_gadgets, extract_gadgets,
                                 train_classifier)
from repro.core.resilience import TrainingCheckpoint
from repro.core.telemetry import Telemetry
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet
from repro.nn.optim import Adam
from repro.testing import faults


@pytest.fixture(scope="module")
def dataset():
    gadgets = extract_gadgets(generate_sard_corpus(10, seed=7))
    return encode_gadgets(gadgets, dim=8, w2v_epochs=0, seed=2)


def fresh_model(dataset):
    return SEVulDetNet(len(dataset.vocab), dim=8, channels=8, seed=3)


def state_of(model):
    return {key: value.copy()
            for key, value in model.state_dict().items()}


def assert_states_equal(left, right):
    assert sorted(left) == sorted(right)
    for key in left:
        assert np.array_equal(left[key], right[key]), key


class TestCheckpointWrites:
    def test_checkpoint_written_atomically(self, dataset, tmp_path):
        model = fresh_model(dataset)
        train_classifier(model, dataset.samples, epochs=2, seed=5,
                         checkpoint_dir=tmp_path)
        checkpoint = TrainingCheckpoint(tmp_path)
        assert checkpoint.exists()
        assert not list(tmp_path.glob("*.tmp"))
        state = checkpoint.load()
        assert state.epoch == 1  # last completed epoch, 0-based
        assert len(state.losses) == 2

    def test_checkpoint_every_skips_epochs(self, dataset, tmp_path):
        telemetry = Telemetry()
        train_classifier(fresh_model(dataset), dataset.samples,
                         epochs=4, seed=5, checkpoint_dir=tmp_path,
                         checkpoint_every=3, telemetry=telemetry)
        # epoch 2 (every-3rd) and the final epoch 3
        assert telemetry.get("checkpoint_writes") == 2

    def test_telemetry_counts_writes(self, dataset, tmp_path):
        telemetry = Telemetry()
        train_classifier(fresh_model(dataset), dataset.samples,
                         epochs=3, seed=5, checkpoint_dir=tmp_path,
                         telemetry=telemetry)
        assert telemetry.get("checkpoint_writes") == 3


class TestKillAndResume:
    def test_resume_matches_uninterrupted_exactly(self, dataset,
                                                  tmp_path):
        baseline = fresh_model(dataset)
        train_classifier(baseline, dataset.samples, epochs=4, seed=5)
        expected = state_of(baseline)

        victim = fresh_model(dataset)
        with faults.injected("raise@train-batch:2.0"):
            with pytest.raises(RuntimeError):
                train_classifier(victim, dataset.samples, epochs=4,
                                 seed=5, checkpoint_dir=tmp_path)
        # epochs 0 and 1 completed and were checkpointed
        assert TrainingCheckpoint(tmp_path).load().epoch == 1

        resumed = fresh_model(dataset)
        telemetry = Telemetry()
        report = train_classifier(resumed, dataset.samples, epochs=4,
                                  seed=5, checkpoint_dir=tmp_path,
                                  resume=True, telemetry=telemetry)
        assert telemetry.get("checkpoint_resumes") == 1
        assert len(report.losses) == 4
        assert_states_equal(state_of(resumed), expected)

    def test_resume_with_validation_matches_exactly(self, dataset,
                                                    tmp_path):
        split = len(dataset.samples) * 3 // 4
        train, val = (dataset.samples[:split], dataset.samples[split:])

        baseline = fresh_model(dataset)
        base_report = train_classifier(baseline, train, epochs=4,
                                       seed=5, validation=val)
        expected = state_of(baseline)

        victim = fresh_model(dataset)
        with faults.injected("raise@train-batch:2.0"):
            with pytest.raises(RuntimeError):
                train_classifier(victim, train, epochs=4, seed=5,
                                 validation=val,
                                 checkpoint_dir=tmp_path)

        resumed = fresh_model(dataset)
        report = train_classifier(resumed, train, epochs=4, seed=5,
                                  validation=val,
                                  checkpoint_dir=tmp_path,
                                  resume=True)
        assert report.val_f1 == base_report.val_f1
        assert report.best_epoch == base_report.best_epoch
        assert_states_equal(state_of(resumed), expected)

    def test_resume_losses_continue_the_same_trajectory(
            self, dataset, tmp_path):
        baseline = fresh_model(dataset)
        base_report = train_classifier(baseline, dataset.samples,
                                       epochs=4, seed=5)
        victim = fresh_model(dataset)
        with faults.injected("raise@train-batch:2.0"):
            with pytest.raises(RuntimeError):
                train_classifier(victim, dataset.samples, epochs=4,
                                 seed=5, checkpoint_dir=tmp_path)
        report = train_classifier(fresh_model(dataset),
                                  dataset.samples, epochs=4, seed=5,
                                  checkpoint_dir=tmp_path, resume=True)
        assert report.losses == base_report.losses

    def test_resume_on_empty_dir_trains_from_scratch(self, dataset,
                                                     tmp_path):
        baseline = fresh_model(dataset)
        train_classifier(baseline, dataset.samples, epochs=2, seed=5)
        resumed = fresh_model(dataset)
        train_classifier(resumed, dataset.samples, epochs=2, seed=5,
                         checkpoint_dir=tmp_path, resume=True)
        assert_states_equal(state_of(resumed), state_of(baseline))

    def test_config_mismatch_refuses_to_resume(self, dataset,
                                               tmp_path):
        train_classifier(fresh_model(dataset), dataset.samples,
                         epochs=2, seed=5, checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="different settings"):
            train_classifier(fresh_model(dataset), dataset.samples,
                             epochs=2, seed=6,  # different seed
                             checkpoint_dir=tmp_path, resume=True)

    def test_finished_run_can_be_extended(self, dataset, tmp_path):
        baseline = fresh_model(dataset)
        train_classifier(baseline, dataset.samples, epochs=5, seed=5)

        model = fresh_model(dataset)
        train_classifier(model, dataset.samples, epochs=3, seed=5,
                         checkpoint_dir=tmp_path)
        report = train_classifier(model, dataset.samples, epochs=5,
                                  seed=5, checkpoint_dir=tmp_path,
                                  resume=True)
        assert len(report.losses) == 5
        assert_states_equal(state_of(model), state_of(baseline))


class TestOptimizerState:
    def test_adam_state_dict_roundtrip(self, dataset):
        twin = fresh_model(dataset)
        source = Adam(twin.parameters(), lr=1e-3)
        rng = np.random.default_rng(0)
        for param in twin.parameters():
            param.grad = rng.normal(size=param.data.shape)
        source.step()
        state = source.state_dict()
        target = Adam(fresh_model(dataset).parameters(), lr=1e-3)
        target.load_state_dict(state)
        restored = target.state_dict()
        assert sorted(state) == sorted(restored)
        for key in state:
            assert np.array_equal(state[key], restored[key]), key

    def test_adam_rejects_mismatched_shapes(self, dataset):
        model = fresh_model(dataset)
        optimizer = Adam(model.parameters(), lr=1e-3)
        state = optimizer.state_dict()
        state["m0"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            optimizer.load_state_dict(state)


class TestResumeViaCLI:
    def test_interrupt_resume_matches_uninterrupted(self, tmp_path):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        base = tmp_path / "base.npz"
        resumed = tmp_path / "resumed.npz"
        common = ["train", "--cases", "10", "--seed", "3",
                  "--cache-dir", cache]

        assert main(common + ["--out", str(base)]) == 0

        checkpoints = str(tmp_path / "checkpoints")
        with faults.injected("raise@train-batch:1.0"):
            with pytest.raises(RuntimeError):
                main(common + ["--out", str(resumed),
                               "--checkpoint-dir", checkpoints])
        assert main(common + ["--out", str(resumed),
                              "--checkpoint-dir", checkpoints,
                              "--resume"]) == 0

        with np.load(base) as left, np.load(resumed) as right:
            assert sorted(left.files) == sorted(right.files)
            for key in left.files:
                assert np.array_equal(left[key], right[key]), key

    def test_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["train", "--cases", "1", "--resume",
                     "--out", str(tmp_path / "m.npz")])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_extract_cli_quarantines_hung_case(self, tmp_path,
                                               capsys):
        from repro.cli import main

        qpath = tmp_path / "quarantine.jsonl"
        out = tmp_path / "gadgets.jsonl"
        with faults.injected("hang@case:#1:30"):
            code = main(["extract", "--cases", "5", "--seed", "3",
                         "--case-timeout", "0.5",
                         "--quarantine", str(qpath),
                         "--out", str(out), "--stats"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "skipped 1 case(s)" in captured
        assert "timeout" in captured
        assert qpath.exists()


class TestNameKeyedCheckpoints:
    """Optimizer moments are keyed by dotted parameter names."""

    def _param_names(self, model, optimizer):
        by_id = {id(p): name for name, p in model.named_parameters()}
        return [by_id[id(p)] for p in optimizer.params]

    def test_checkpoint_optimizer_arrays_are_name_keyed(
            self, dataset, tmp_path):
        model = fresh_model(dataset)
        train_classifier(model, dataset.samples, epochs=1, seed=5,
                         checkpoint_dir=tmp_path)
        with np.load(tmp_path / "checkpoint.npz") as archive:
            optim_keys = [k for k in archive.files
                          if k.startswith("optim::")]
        assert optim_keys
        named = [k for k in optim_keys if "::m::" in k or "::v::" in k]
        assert named, optim_keys
        assert all("." in key for key in named)  # dotted paths
        assert not any(k.removeprefix("optim::").startswith(("m0", "v0"))
                       for k in optim_keys if k != "optim::t")

    def test_name_keyed_save_load_roundtrip(self, dataset, tmp_path):
        from repro.core.resilience import TrainingCheckpoint

        model = fresh_model(dataset)
        optimizer = Adam(model.parameters(), lr=1e-3)
        rng = np.random.default_rng(0)
        for param in optimizer.params:
            param.grad = rng.normal(size=param.data.shape)
        optimizer.step()
        expected = optimizer.state_dict()

        checkpoint = TrainingCheckpoint(tmp_path)
        checkpoint.save(epoch=0, model=model, optimizer=optimizer,
                        rng=rng, losses=[0.5], val_f1=[],
                        best_epoch=-1, best_f1=-1.0, stale=0,
                        best_state=None, config_token="tok",
                        param_names=self._param_names(model, optimizer))
        state = checkpoint.load("tok")
        assert sorted(state.optim_state) == sorted(expected)
        for key in expected:
            assert np.array_equal(state.optim_state[key],
                                  expected[key]), key

    def test_legacy_positional_checkpoint_resumes(self, dataset,
                                                  tmp_path):
        """Archives written without param_names still resume exactly."""
        import json

        from repro.nn.serialize import save_npz_atomic

        baseline = fresh_model(dataset)
        train_classifier(baseline, dataset.samples, epochs=4, seed=5)
        expected = state_of(baseline)

        victim = fresh_model(dataset)
        with faults.injected("raise@train-batch:2.0"):
            with pytest.raises(RuntimeError):
                train_classifier(victim, dataset.samples, epochs=4,
                                 seed=5, checkpoint_dir=tmp_path)

        # Rewrite the checkpoint in the legacy format: positional
        # optimizer keys, no param_names metadata.
        path = tmp_path / "checkpoint.npz"
        with np.load(path) as archive:
            metadata = json.loads(
                archive["__metadata__"].tobytes().decode())
            arrays = {k: archive[k] for k in archive.files
                      if k != "__metadata__"}
        names = metadata.pop("param_names")
        assert names  # the new writer recorded them
        index_of = {name: i for i, name in enumerate(names)}
        legacy = {}
        for key, value in arrays.items():
            if key.startswith("optim::") and "::" in key[7:]:
                kind, name = key[7:].split("::", 1)
                key = f"optim::{kind}{index_of[name]}"
            legacy[key] = value
        metadata["param_names"] = None
        save_npz_atomic(path, legacy, metadata)

        resumed = fresh_model(dataset)
        report = train_classifier(resumed, dataset.samples, epochs=4,
                                  seed=5, checkpoint_dir=tmp_path,
                                  resume=True)
        assert len(report.losses) == 4
        assert_states_equal(state_of(resumed), expected)

    def test_unknown_name_rejected_as_corrupt(self, tmp_path):
        from repro.core.resilience import _optim_state_to_indices

        state = {"m::ghost.weight": np.zeros(2), "t": np.array(3)}
        with pytest.raises(ValueError, match="corrupt"):
            _optim_state_to_indices(state, ["fc.weight"],
                                    tmp_path / "checkpoint.npz")
