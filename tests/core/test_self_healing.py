"""Self-healing serving layer: respawn, fallback, retrying clients.

The contract pinned here (deterministically, via ``REPRO_FAULTS``):

* killing N−1 of N pool workers mid-scan still finishes the corpus,
  byte-identical to the serial path — the watchdog resubmits the lost
  batches and respawns replacements;
* when the restart budget is exhausted the service demotes
  ``process → thread`` (and ultimately ``inline``) and rescores
  in-flight work, still byte-identical, reporting ``degraded`` health;
* a :class:`ScanClient` with the default :class:`RetryPolicy` survives
  dropped connections, admission shed-storms, and a full server
  restart mid-``scan_batch`` without losing (or duplicating) a single
  verdict.
"""

import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import SCALE_PRESETS, SEVulDet
from repro.core.encode import encode_gadgets
from repro.core.extract import extract_gadgets
from repro.core.ipc import RetryPolicy, ScanClient
from repro.core.score import predict_proba
from repro.core.scorer_pool import RestartPolicy, ScorerPool
from repro.core.serve import ScanService
from repro.core.server import ScanServer
from repro.core.telemetry import Telemetry
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet
from repro.testing import faults

# -- raw pool fixtures (no detector needed) ------------------------------------


@pytest.fixture(scope="module")
def dataset():
    corpus = generate_sard_corpus(20, seed=23)
    return encode_gadgets(extract_gadgets(corpus), dim=8,
                          w2v_epochs=0, seed=11)


@pytest.fixture(scope="module")
def net(dataset):
    model = SEVulDetNet(len(dataset.vocab), dim=8, channels=8,
                        pretrained=dataset.word2vec.vectors, seed=3)
    dataset.bind_embedding_aliases(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def samples(dataset):
    return [g.sample(dataset.vocab) for g in dataset.gadgets]


# -- end-to-end fixtures -------------------------------------------------------


@pytest.fixture(scope="module")
def detector():
    det = SEVulDet(scale=SCALE_PRESETS["small"], seed=5)
    det.fit(generate_sard_corpus(24, seed=7))
    return det


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(12, seed=99)


def as_scan_case(case):
    """What the server reconstructs from a wire request (labels never
    cross the protocol)."""
    return replace(case, vulnerable=False,
                   vulnerable_lines=frozenset(), cwe="", category="",
                   origin="serve")


@pytest.fixture(scope="module")
def expected_records(detector, corpus):
    with ScanService(detector, workers=2, batch_size=16) as service:
        return [v.as_record() for v in service.scan_cases(
            [as_scan_case(case) for case in corpus])]


def make_server(tmp_path, detector, **kwargs):
    kwargs.setdefault("scorer", "thread")
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch_size", 16)
    return ScanServer(detector=detector,
                      socket_path=tmp_path / "scan.sock", **kwargs)


def scan_requests(cases):
    return [{"name": case.name, "source": case.source}
            for case in cases]


# -- pool self-healing ---------------------------------------------------------


class TestPoolRespawn:
    def test_killing_all_but_one_worker_finishes_the_corpus(
            self, net, samples):
        # Acceptance pin: two crash faults kill N−1 of N=3 workers
        # mid-scan (each fault takes down the worker that picked up
        # that job).  The watchdog resubmits the lost batches under
        # fresh job ids — so the faults cannot re-fire — and the scan
        # finishes byte-identical to the serial path.
        expected = predict_proba(net, samples)
        telemetry = Telemetry()
        with faults.injected(
                "crash@score-batch:1;crash@score-batch:2"):
            with ScorerPool(
                    net, workers=3,
                    restart_policy=RestartPolicy(backoff=0.01),
                    telemetry=telemetry) as pool:
                scores = pool.score_samples(samples, batch_size=8)
                health = pool.health()
        assert np.array_equal(scores, expected)
        assert telemetry.get("pool_worker_deaths") == 2
        assert telemetry.get("pool_resubmitted_jobs") >= 2
        # both deaths were either already replaced or inside budget —
        # the pool never declared itself broken
        assert health["status"] in ("ok", "degraded")

    def test_sole_worker_crash_is_respawned(self, net, samples):
        # With one worker there is no survivor to hide behind: the
        # corpus can only finish if a replacement is actually spawned.
        expected = predict_proba(net, samples)
        with faults.injected("crash@score-batch:0"):
            with ScorerPool(
                    net, workers=1,
                    restart_policy=RestartPolicy(backoff=0.01)
            ) as pool:
                scores = pool.score_samples(samples, batch_size=8)
                health = pool.health()
        assert np.array_equal(scores, expected)
        assert health["respawns"] >= 1
        assert health["status"] == "ok"


# -- service fallback chain ----------------------------------------------------


class TestServiceFallback:
    def test_budget_exhaustion_demotes_byte_identically(
            self, detector, corpus):
        with ScanService(detector, workers=2,
                         scorer="thread") as service:
            expected = [v.as_record()
                        for v in service.scan_cases(corpus)]
        # every process batch crashes its worker; after one respawn
        # the budget is spent and the service must demote to the
        # thread backend and rescore everything in flight
        with faults.injected("crash@score-batch:*"):
            with ScanService(
                    detector, workers=2, scorer="process",
                    restart_policy=RestartPolicy(max_restarts=1,
                                                 backoff=0.01)
            ) as service:
                got = [v.as_record()
                       for v in service.scan_cases(corpus)]
                health = service.health()
                resilience = service.stats()["resilience"]
        assert got == expected
        assert health["status"] == "degraded"
        assert health["scorer"] == "thread"
        assert "restart budget" in (health["degraded_reason"] or "")
        assert resilience["fallbacks"] >= 1
        assert resilience["retries"] >= 1
        assert resilience["worker_deaths"] >= 1


# -- retrying client vs a chaotic server ---------------------------------------

RETRY = RetryPolicy(attempts=10, base_delay=0.05, max_delay=0.5,
                    jitter=0.0)


class TestClientRetry:
    def test_conn_drop_mid_batch_is_transparent(
            self, detector, corpus, expected_records, tmp_path):
        # the server tears the connection down after reading the 2nd
        # message; the client must reconnect and resubmit every
        # unanswered id, and the merged verdicts must be complete
        with faults.injected("drop@server-conn:#2"):
            with make_server(tmp_path, detector) as server:
                with ScanClient(server.address,
                                retry=RETRY) as client:
                    responses = client.scan_batch(
                        scan_requests(corpus))
                    reconnects = client.reconnects
        assert [r["status"] for r in responses] == \
            ["ok"] * len(corpus)
        assert [r["verdict"] for r in responses] == expected_records
        assert reconnects >= 1

    def test_admission_shed_storm_is_retried(
            self, detector, corpus, expected_records, tmp_path):
        # admissions 2–4 are forcibly shed with a retry_after_ms hint;
        # the client honours it and every verdict still lands
        with faults.injected("drop@server-admit:#2-4"):
            with make_server(tmp_path, detector) as server:
                with ScanClient(server.address,
                                retry=RETRY) as client:
                    responses = client.scan_batch(
                        scan_requests(corpus))
                    shed_retried = client.shed_retried
        assert [r["status"] for r in responses] == \
            ["ok"] * len(corpus)
        assert [r["verdict"] for r in responses] == expected_records
        assert shed_retried >= 1

    def test_server_restart_mid_batch_loses_no_verdicts(
            self, detector, corpus, expected_records, tmp_path):
        # Satellite pin: the server dies mid-scan_batch and a
        # successor comes up on the same socket.  Queued requests are
        # shed (not errored) at shutdown, the dropped connection
        # triggers reconnect-with-backoff, unanswered ids are
        # resubmitted, and the final verdict set matches serial.
        socket_dir = tmp_path
        outcome = {}

        def run_client():
            with ScanClient(str(socket_dir / "scan.sock"),
                            retry=RETRY) as client:
                outcome["responses"] = client.scan_batch(
                    scan_requests(corpus))
                outcome["reconnects"] = client.reconnects

        # wedge the 2nd case extraction so the batch is provably
        # still in flight when the first server is stopped
        with faults.injected("hang@case:#2:1.0"):
            server = make_server(socket_dir, detector).start()
            try:
                worker = threading.Thread(target=run_client,
                                          daemon=True)
                worker.start()
                time.sleep(0.3)  # let the batch reach dispatch
            finally:
                server.stop()
            with make_server(socket_dir, detector):
                worker.join(timeout=60.0)
        assert not worker.is_alive()
        responses = outcome["responses"]
        assert [r["status"] for r in responses] == \
            ["ok"] * len(corpus)
        assert [r["verdict"] for r in responses] == expected_records
        assert outcome["reconnects"] >= 1

    def test_health_op_reports_server_state(self, detector, corpus,
                                            tmp_path):
        with make_server(tmp_path, detector) as server:
            with ScanClient(server.address, retry=RETRY) as client:
                health = client.health()
        assert health["status"] == "ok"
        assert health["health"] == "ready"
        assert health["scorer"] == "thread"

    def test_deadline_expired_before_dispatch(self, detector, corpus,
                                              tmp_path):
        # a request whose deadline passes while queued is answered
        # with status "expired" instead of being scored late
        with faults.injected("hang@case:#1:0.6"):
            with make_server(tmp_path, detector, dispatchers=1,
                             dispatch_batch=1) as server:
                with ScanClient(server.address,
                                retry=None) as client:
                    responses = client.scan_batch(
                        scan_requests(corpus), deadline_ms=250)
        statuses = {r["status"] for r in responses}
        assert "expired" in statuses
        expired = next(r for r in responses
                       if r["status"] == "expired")
        assert "deadline" in expired["error"]
