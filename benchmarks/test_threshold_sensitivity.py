"""Threshold-sensitivity study (grounds the paper's 0.8 choice).

The paper declares "If this number is greater than 0.8, the output is
flawed" without showing the trade-off.  This bench sweeps the decision
threshold over held-out gadget scores and records the ROC AUC and the
operating points, verifying the paper's regime: a high threshold
(0.8) sits on the low-FPR side of the curve while keeping recall
serviceable — the setting a triage tool wants.
"""

import numpy as np

from repro.core.pipeline import (encode_gadgets, extract_gadgets,
                                 predict_proba, train_classifier)
from repro.eval.thresholds import (best_f1_threshold, roc_auc,
                                   sweep_thresholds)
from repro.models.sevuldet import SEVulDetNet

from conftest import run_once


def test_threshold_sensitivity(benchmark, reporter, scale, train_cases,
                               test_cases):
    def experiment():
        train_gadgets = extract_gadgets(train_cases)
        test_gadgets = extract_gadgets(test_cases)
        dataset = encode_gadgets(train_gadgets, dim=scale.dim,
                                 w2v_epochs=scale.w2v_epochs, seed=3)
        model = SEVulDetNet(len(dataset.vocab), dim=scale.dim,
                            channels=scale.channels,
                            pretrained=dataset.word2vec.vectors,
                            seed=3)
        train_classifier(model, dataset.samples, epochs=scale.epochs,
                         batch_size=scale.batch_size,
                         lr=scale.learning_rate, seed=3)
        test_samples = [g.sample(dataset.vocab) for g in test_gadgets]
        scores = predict_proba(model, test_samples)
        labels = [g.label for g in test_gadgets]
        return scores, labels

    scores, labels = run_once(benchmark, experiment)

    auc = roc_auc(scores, labels)
    grid = sweep_thresholds(scores, labels,
                            thresholds=np.arange(0.1, 1.0, 0.1))
    best = best_f1_threshold(scores, labels)

    table = reporter("threshold_sensitivity",
                     f"Threshold sweep (ROC AUC = {auc:.3f}; "
                     f"best-F1 threshold = {best.threshold:.2f})")
    for point in grid:
        row = point.metrics.as_percentages()
        marker = " <- paper" if abs(point.threshold - 0.8) < 0.05 else ""
        table.add(threshold=round(point.threshold, 2), **row,
                  note=marker)
    table.save_and_print()

    # The learned scores separate the classes well.
    assert auc > 0.8

    # The paper's 0.8 sits on the low-FPR side: FPR at 0.8 is no
    # higher than at 0.5, and recall at 0.8 remains non-trivial.
    at = {round(p.threshold, 1): p.metrics for p in grid}
    assert at[0.8].fpr <= at[0.5].fpr + 1e-9
    assert (1.0 - at[0.8].fnr) > 0.5
