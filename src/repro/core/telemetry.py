"""Stage-level pipeline instrumentation (wall time + counters).

Extraction at corpus scale is the hot path the ROADMAP targets; this
module gives it a lightweight, dependency-free observability layer.  A
:class:`Telemetry` object accumulates named counters (cases parsed,
cases skipped, gadgets emitted, dedup hits, cache hits/misses, ...) and
per-stage wall-clock timings.  Worker processes build their own
instances and the fan-in :meth:`Telemetry.merge`\\ s them, so the same
object works for the serial path, the process pool, and warm-cache
runs alike.  The CLI prints :meth:`Telemetry.summary`; tests and
benchmarks assert on the raw counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Telemetry"]

#: (counter, stage, unit) triples rendered as throughputs by
#: :meth:`Telemetry.summary` when both sides were recorded; the
#: counters come from Word2Vec.train and train_classifier.
_KNOWN_RATES = (
    ("w2v_tokens", "w2v-train", "tokens/s"),
    ("w2v_pairs", "w2v-train", "pairs/s"),
    ("train_samples", "train", "samples/s"),
    ("train_batches", "train", "batches/s"),
    ("scan_cases", "scan", "cases/s"),
)

#: Per-distribution sample cap: reservoir-free truncation keeps memory
#: bounded; scan-scale runs care about the percentile shape, not every
#: observation past the first few thousand.
MAX_OBSERVATIONS = 4096


#: Structured events kept per Telemetry instance; overflow is counted
#: in ``events_dropped`` rather than growing without bound.
MAX_EVENTS = 100


@dataclass
class Telemetry:
    """Named counters, per-stage wall times, and a bounded event log.

    One instance may be shared across threads (the scan service's
    scorer workers, the engine's prefetch pump, server dispatchers):
    every read-modify-write runs under an internal re-entrant lock, so
    concurrent increments are never lost.  The lock is an
    implementation detail — it stays out of :meth:`as_dict` payloads
    and is recreated on unpickle.
    """

    counters: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stage_calls: dict[str, int] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    observations: dict[str, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # RLock: event() counts events_dropped while already holding
        # the lock.  Not a dataclass field so __eq__/repr/pickle stay
        # payload-only.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- counters ------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never counted)."""
        return self.counters.get(name, 0)

    # -- events --------------------------------------------------------------

    def event(self, kind: str, **fields) -> None:
        """Append one structured event (skip reasons, recovery steps).

        Events carry the *why* that counters flatten away — e.g.
        ``event("case-skip", case="x.c", reason="timeout")`` — and are
        capped at :data:`MAX_EVENTS` per instance so a pathological
        corpus cannot turn telemetry into the memory hog.
        """
        with self._lock:
            if len(self.events) < MAX_EVENTS:
                self.events.append({"kind": kind, **fields})
            else:
                self.count("events_dropped")

    # -- distributions -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one sample of distribution ``name`` (latency, queue
        depth, batch fill, ...).  Capped at :data:`MAX_OBSERVATIONS`
        samples per distribution; overflow increments
        ``observations_dropped``."""
        with self._lock:
            samples = self.observations.setdefault(name, [])
            if len(samples) < MAX_OBSERVATIONS:
                samples.append(float(value))
            else:
                self.count("observations_dropped")

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-th percentile (0-100) of distribution ``name``
        (0.0 when nothing was observed)."""
        samples = self.observations.get(name)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def observation_stats(self, name: str) -> dict[str, float]:
        """count / mean / p50 / p95 / max of one distribution."""
        samples = self.observations.get(name)
        if not samples:
            return {"count": 0}
        return {
            "count": len(samples),
            "mean": sum(samples) / len(samples),
            "p50": self.percentile(name, 50.0),
            "p95": self.percentile(name, 95.0),
            "max": max(samples),
        }

    # -- stages --------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one invocation of stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, time.perf_counter() - start)

    def add_stage(self, name: str, seconds: float,
                  calls: int = 1) -> None:
        """Record ``seconds`` of wall time (and ``calls`` invocations)
        against stage ``name``."""
        with self._lock:
            self.stage_seconds[name] = \
                self.stage_seconds.get(name, 0.0) + seconds
            self.stage_calls[name] = \
                self.stage_calls.get(name, 0) + calls

    def seconds(self, name: str) -> float:
        """Accumulated wall time of stage ``name``."""
        return self.stage_seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Accumulated invocation count of stage ``name``."""
        return self.stage_calls.get(name, 0)

    def rate(self, counter: str, stage: str) -> float:
        """Counter per second of stage wall time (0.0 when untimed)."""
        seconds = self.seconds(stage)
        return self.get(counter) / seconds if seconds > 0 else 0.0

    def rates(self) -> dict[str, float]:
        """The known throughputs (tokens/sec, pairs/sec, ...) that have
        both a counter and a timed stage recorded."""
        out: dict[str, float] = {}
        for counter, stage, unit in _KNOWN_RATES:
            if self.get(counter) and self.seconds(stage) > 0:
                out[unit] = self.rate(counter, stage)
        return out

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold another instance (e.g. from a worker) into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, seconds in other.stage_seconds.items():
            self.add_stage(name, seconds,
                           calls=other.stage_calls.get(name, 0))
        for event in other.events:
            self.event(**event)
        for name, samples in other.observations.items():
            for value in samples:
                self.observe(name, value)
        return self

    def merge_dict(self, data: dict) -> "Telemetry":
        """Fold an :meth:`as_dict` payload (picklable worker result)."""
        for name, value in data.get("counters", {}).items():
            self.count(name, int(value))
        calls = data.get("stage_calls", {})
        for name, seconds in data.get("stage_seconds", {}).items():
            self.add_stage(name, float(seconds),
                           calls=int(calls.get(name, 0)))
        for event in data.get("events", ()):
            self.event(**event)
        for name, samples in data.get("observations", {}).items():
            for value in samples:
                self.observe(name, float(value))
        return self

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON/pickle friendly)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "stage_seconds": dict(self.stage_seconds),
                "stage_calls": dict(self.stage_calls),
                "events": [dict(event) for event in self.events],
                "observations": {name: list(samples) for name, samples
                                 in self.observations.items()},
            }

    def summary(self) -> str:
        """Human-readable multi-line report (counters then stages)."""
        with self._lock:
            return self._summary_locked()

    def _summary_locked(self) -> str:
        lines = ["telemetry:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<24s} {self.counters[name]}")
        for name in sorted(self.stage_seconds):
            lines.append(
                f"  stage {name:<18s} {self.stage_seconds[name]:9.4f}s"
                f"  ({self.stage_calls.get(name, 0)} calls)")
        for unit, value in self.rates().items():
            lines.append(f"  rate  {unit:<18s} {value:12.1f}")
        for name in sorted(self.observations):
            stats = self.observation_stats(name)
            lines.append(
                f"  dist  {name:<18s} n={stats['count']}"
                f" mean={stats['mean']:.4f} p50={stats['p50']:.4f}"
                f" p95={stats['p95']:.4f} max={stats['max']:.4f}")
        for event in self.events:
            fields = " ".join(f"{key}={value}" for key, value
                              in event.items() if key != "kind")
            lines.append(f"  event {event.get('kind', '?'):<18s} "
                         f"{fields}")
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
