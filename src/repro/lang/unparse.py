"""AST -> C source pretty-printer.

``unparse`` renders a parsed translation unit back to compilable C
subset text; the round-trip property ``parse(unparse(parse(s)))``
structurally equals ``parse(s)`` is enforced by tests and gives the
frontend a serialization story (program transformation passes can
operate on the AST and emit source for the rest of the pipeline).
"""

from __future__ import annotations

from . import ast_nodes as A

__all__ = ["unparse", "unparse_expr", "unparse_stmt"]

_INDENT = "    "

# Binding strengths for parenthesization decisions.
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11
_POSTFIX_PRECEDENCE = 12


def unparse_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal necessary parentheses."""
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: A.Expr) -> tuple[str, int]:
    if isinstance(expr, A.Ident):
        return expr.name, _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Number):
        return expr.text, _POSTFIX_PRECEDENCE
    if isinstance(expr, (A.StringLit, A.CharLit)):
        return expr.text, _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Binary):
        prec = _PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, prec)
        right = unparse_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, A.Assign):
        target = unparse_expr(expr.target, _UNARY_PRECEDENCE)
        value = unparse_expr(expr.value, 0)
        return f"{target} {expr.op} {value}", 0
    if isinstance(expr, A.Unary):
        if expr.prefix:
            operand = unparse_expr(expr.operand, _UNARY_PRECEDENCE)
            return f"{expr.op}{operand}", _UNARY_PRECEDENCE
        operand = unparse_expr(expr.operand, _POSTFIX_PRECEDENCE)
        return f"{operand}{expr.op}", _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Call):
        func = unparse_expr(expr.func, _POSTFIX_PRECEDENCE)
        args = ", ".join(unparse_expr(a, 0) for a in expr.args)
        return f"{func}({args})", _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Index):
        base = unparse_expr(expr.base, _POSTFIX_PRECEDENCE)
        return f"{base}[{unparse_expr(expr.index, 0)}]", \
            _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Member):
        base = unparse_expr(expr.base, _POSTFIX_PRECEDENCE)
        joiner = "->" if expr.arrow else "."
        return f"{base}{joiner}{expr.name}", _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Cast):
        operand = unparse_expr(expr.expr, _UNARY_PRECEDENCE)
        return f"({expr.type_name}){operand}", _UNARY_PRECEDENCE
    if isinstance(expr, A.SizeOf):
        if isinstance(expr.arg, str):
            return f"sizeof({expr.arg})", _POSTFIX_PRECEDENCE
        return f"sizeof({unparse_expr(expr.arg, 0)})", \
            _POSTFIX_PRECEDENCE
    if isinstance(expr, A.Ternary):
        cond = unparse_expr(expr.cond, 3)
        then = unparse_expr(expr.then, 0)
        otherwise = unparse_expr(expr.otherwise, 0)
        return f"{cond} ? {then} : {otherwise}", 0
    if isinstance(expr, A.Comma):
        return (f"{unparse_expr(expr.left, 0)}, "
                f"{unparse_expr(expr.right, 0)}"), 0
    if isinstance(expr, A.InitList):
        items = ", ".join(unparse_expr(item, 0)
                          for item in expr.items)
        return f"{{{items}}}", _POSTFIX_PRECEDENCE
    raise NotImplementedError(type(expr).__name__)  # pragma: no cover


def _declarator(decl: A.Declarator) -> str:
    text = "*" * decl.pointer_depth + decl.name
    for size in decl.array_sizes:
        text += f"[{unparse_expr(size, 0) if size is not None else ''}]"
    if decl.init is not None:
        text += f" = {unparse_expr(decl.init, 0)}"
    return text


def unparse_stmt(stmt: A.Stmt, depth: int = 0) -> list[str]:
    """Render one statement as indented source lines."""
    pad = _INDENT * depth
    if isinstance(stmt, A.Block):
        lines = [pad + "{"]
        for inner in stmt.stmts:
            lines.extend(unparse_stmt(inner, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, A.Decl):
        declarators = ", ".join(_declarator(d) for d in stmt.declarators)
        return [f"{pad}{stmt.type_name} {declarators};"]
    if isinstance(stmt, A.ExprStmt):
        return [f"{pad}{unparse_expr(stmt.expr, 0)};"]
    if isinstance(stmt, A.If):
        lines = [f"{pad}if ({unparse_expr(stmt.cond, 0)})"]
        lines.extend(_braced_body(stmt.then, depth))
        if stmt.otherwise is not None:
            if isinstance(stmt.otherwise, A.If) and \
                    stmt.otherwise.is_elseif:
                nested = unparse_stmt(stmt.otherwise, depth)
                nested[0] = f"{pad}else {nested[0].lstrip()}"
                lines.extend(nested)
            else:
                lines.append(f"{pad}else")
                lines.extend(_braced_body(stmt.otherwise, depth))
        return lines
    if isinstance(stmt, A.While):
        lines = [f"{pad}while ({unparse_expr(stmt.cond, 0)})"]
        lines.extend(_braced_body(stmt.body, depth))
        return lines
    if isinstance(stmt, A.DoWhile):
        lines = [f"{pad}do"]
        lines.extend(_braced_body(stmt.body, depth))
        lines.append(f"{pad}while ({unparse_expr(stmt.cond, 0)});")
        return lines
    if isinstance(stmt, A.For):
        init = ""
        if isinstance(stmt.init, A.Decl):
            init = unparse_stmt(stmt.init, 0)[0].rstrip(";")
        elif isinstance(stmt.init, A.ExprStmt):
            init = unparse_expr(stmt.init.expr, 0)
        cond = unparse_expr(stmt.cond, 0) if stmt.cond is not None \
            else ""
        step = unparse_expr(stmt.step, 0) if stmt.step is not None \
            else ""
        lines = [f"{pad}for ({init}; {cond}; {step})"]
        lines.extend(_braced_body(stmt.body, depth))
        return lines
    if isinstance(stmt, A.Switch):
        lines = [f"{pad}switch ({unparse_expr(stmt.expr, 0)}) {{"]
        for case in stmt.cases:
            if case.is_default:
                lines.append(f"{pad}default:")
            else:
                lines.append(
                    f"{pad}case {unparse_expr(case.value, 0)}:")
            for inner in case.stmts:
                lines.extend(unparse_stmt(inner, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, A.Break):
        return [pad + "break;"]
    if isinstance(stmt, A.Continue):
        return [pad + "continue;"]
    if isinstance(stmt, A.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [f"{pad}return {unparse_expr(stmt.value, 0)};"]
    if isinstance(stmt, A.Goto):
        return [f"{pad}goto {stmt.label};"]
    if isinstance(stmt, A.Label):
        inner = unparse_stmt(stmt.stmt, depth)
        return [f"{stmt.name}:"] + inner
    if isinstance(stmt, A.Empty):
        return [pad + ";"]
    raise NotImplementedError(type(stmt).__name__)  # pragma: no cover


def _braced_body(body: A.Stmt, depth: int) -> list[str]:
    """Bodies always render as blocks for unambiguous structure."""
    if isinstance(body, A.Block):
        return unparse_stmt(body, depth)
    pad = _INDENT * depth
    lines = [pad + "{"]
    lines.extend(unparse_stmt(body, depth + 1))
    lines.append(pad + "}")
    return lines


def unparse(unit: A.TranslationUnit) -> str:
    """Render a whole translation unit."""
    chunks: list[str] = []
    for struct in unit.structs:
        fields = "\n".join(
            f"{_INDENT}{ftype.lstrip('*')} "
            f"{'*' * ftype.count('*')}{fname};"
            for ftype, fname in struct.fields)
        chunks.append(f"struct {struct.name} {{\n{fields}\n}};")
    for decl in unit.globals:
        chunks.extend(unparse_stmt(decl, 0))
    for fn in unit.functions:
        params = ", ".join(
            f"{p.type_name} {'*' * p.pointer_depth}{p.name}"
            + ("[]" if p.is_array else "")
            for p in fn.params) or "void"
        pointer = "*" * fn.return_type.count("*")
        base_type = fn.return_type.lstrip("*")
        header = f"{base_type} {pointer}{fn.name}({params})"
        body = "\n".join(unparse_stmt(fn.body, 0))
        chunks.append(f"{header}\n{body}")
    return "\n\n".join(chunks) + "\n"
