"""The SEVulDet detector: configuration, pipeline, public facade."""

from .config import FRAMEWORK_HYPERPARAMS, SCALE_PRESETS, HyperParams, Scale, current_scale
from .encode import EncodedDataset, encode_gadgets
from .extract import LabeledGadget, extract_gadgets
from .score import evaluate_classifier, predict_proba
from .train import TrainReport, train_classifier
from .detector import Finding, SEVulDet
from .attention_hook import TokenWeight, attention_report, weights_by_line
from .cwe_typing import CWETyper
from .resilience import (CaseFailure, CaseTimeout, Quarantine,
                         TrainingCheckpoint, time_limit)
from .store import iter_gadgets, load_gadgets, save_gadgets
from .cache import GadgetCache
from .serve import CaseVerdict, ResultCache, ScanService
from .telemetry import Telemetry

__all__ = [
    "FRAMEWORK_HYPERPARAMS", "SCALE_PRESETS", "HyperParams", "Scale",
    "current_scale",
    "EncodedDataset", "LabeledGadget", "TrainReport", "encode_gadgets",
    "evaluate_classifier", "extract_gadgets", "predict_proba",
    "train_classifier",
    "Finding", "SEVulDet",
    "TokenWeight", "attention_report", "weights_by_line",
    "CWETyper", "iter_gadgets", "load_gadgets", "save_gadgets",
    "CaseFailure", "CaseTimeout", "Quarantine", "TrainingCheckpoint",
    "time_limit",
    "GadgetCache", "Telemetry",
    "CaseVerdict", "ResultCache", "ScanService",
]
