"""Score-threshold analysis: ROC, PR, and operating-point selection.

The paper fixes the decision threshold at 0.8 without showing the
trade-off curve; this module computes it, so the choice can be examined
(and the threshold re-derived for a new corpus): ROC points, the area
under the ROC, precision/recall points, and F1-optimal / target-FPR
operating points.

Every sweep runs off one shared sort + cumulative-sum pass
(:func:`_CumulativeSweep`): for each candidate threshold the confusion
counts of ``scores >= threshold`` are read from prefix sums in O(1),
so a full sweep costs O(n log n) instead of the O(n*k) rescan-per-
threshold of the naive formulation (quadratic when most scores are
distinct, as they are on real score sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .metrics import Confusion, Metrics, metrics_from

__all__ = ["OperatingPoint", "SingleClassError", "roc_points",
           "roc_auc", "precision_recall_points", "sweep_thresholds",
           "best_f1_threshold", "threshold_for_fpr"]


class SingleClassError(ValueError):
    """The label set contains only one class, so ROC/PR rates are
    undefined (instead of silently reporting 0.0 rates)."""


@dataclass(frozen=True)
class OperatingPoint:
    """Metrics of one threshold setting."""

    threshold: float
    metrics: Metrics


def _validate(scores: Sequence[float],
              labels: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    scores_arr = np.asarray(scores, dtype=float)
    labels_arr = np.asarray(labels, dtype=int)
    if scores_arr.shape != labels_arr.shape:
        raise ValueError("scores and labels must align")
    if scores_arr.size == 0:
        raise ValueError("empty score set")
    return scores_arr, labels_arr


class _CumulativeSweep:
    """Confusion counts for every ``scores >= t`` rule, from one sort.

    ``thresholds`` holds the distinct scores ascending; ``tp[i]`` /
    ``fp[i]`` are the counts for ``t = thresholds[i]``.  Arbitrary
    thresholds (grid sweeps) are answered via binary search on the
    sorted score array.
    """

    def __init__(self, scores_arr: np.ndarray,
                 labels_arr: np.ndarray):
        order = np.argsort(scores_arr, kind="stable")
        self._sorted_scores = scores_arr[order]
        sorted_labels = labels_arr[order]
        # prefix_pos[i] = positives among the i lowest-scored samples
        self._prefix_pos = np.concatenate(
            ([0], np.cumsum(sorted_labels)))
        self.total = int(scores_arr.size)
        self.positives = int(self._prefix_pos[-1])
        self.negatives = self.total - self.positives
        self.thresholds, first = np.unique(self._sorted_scores,
                                           return_index=True)
        self.tp = self.positives - self._prefix_pos[first]
        self.fp = (self.total - first) - self.tp

    def counts_at(self, threshold: float) -> tuple[int, int]:
        """(tp, fp) of ``scores >= threshold`` for any threshold."""
        below = int(np.searchsorted(self._sorted_scores, threshold,
                                    side="left"))
        tp = self.positives - int(self._prefix_pos[below])
        fp = (self.total - below) - tp
        return tp, fp

    def confusion_at(self, threshold: float) -> Confusion:
        tp, fp = self.counts_at(threshold)
        return Confusion(tp=tp, fp=fp, tn=self.negatives - fp,
                         fn=self.positives - tp)

    def require_both_classes(self, caller: str) -> None:
        if not self.positives or not self.negatives:
            present = "positive" if self.positives else "negative"
            raise SingleClassError(
                f"{caller}: labels contain only the {present} class "
                f"({self.total} samples); TPR/FPR trade-offs are "
                f"undefined on a single-class score set")


def roc_points(scores: Sequence[float], labels: Sequence[int]
               ) -> list[tuple[float, float]]:
    """(FPR, TPR) points swept over all distinct score thresholds,
    sorted by FPR, including the (0,0) and (1,1) endpoints.

    Raises :class:`SingleClassError` when the labels contain only one
    class — both rates would be meaningless constants.
    """
    sweep = _CumulativeSweep(*_validate(scores, labels))
    sweep.require_both_classes("roc_points")
    points = {(0.0, 0.0), (1.0, 1.0)}
    for tp, fp in zip(sweep.tp, sweep.fp):
        points.add((fp / sweep.negatives, tp / sweep.positives))
    return sorted(points)


def roc_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve (trapezoidal over the swept points)."""
    points = roc_points(scores, labels)
    area = 0.0
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area


def precision_recall_points(scores: Sequence[float],
                            labels: Sequence[int]
                            ) -> list[tuple[float, float]]:
    """(recall, precision) points over all distinct thresholds.

    Raises :class:`SingleClassError` when no positive labels exist
    (recall would be a meaningless 0.0 everywhere).
    """
    sweep = _CumulativeSweep(*_validate(scores, labels))
    if not sweep.positives:
        raise SingleClassError(
            "precision_recall_points: no positive labels; recall is "
            "undefined on a single-class score set")
    points: list[tuple[float, float]] = []
    for tp, fp in zip(sweep.tp, sweep.fp):
        recall = tp / sweep.positives
        precision = tp / (tp + fp) if (tp + fp) else 1.0
        points.append((float(recall), float(precision)))
    return sorted(points)


def sweep_thresholds(scores: Sequence[float], labels: Sequence[int],
                     thresholds: Sequence[float] | None = None
                     ) -> list[OperatingPoint]:
    """Full metric set per threshold (default: 0.05 grid)."""
    sweep = _CumulativeSweep(*_validate(scores, labels))
    if thresholds is None:
        thresholds = np.round(np.arange(0.05, 1.0, 0.05), 2)
    return [OperatingPoint(float(threshold),
                           metrics_from(sweep.confusion_at(threshold)))
            for threshold in thresholds]


def best_f1_threshold(scores: Sequence[float],
                      labels: Sequence[int]) -> OperatingPoint:
    """Threshold maximising F1 over the distinct-score sweep."""
    sweep = _CumulativeSweep(*_validate(scores, labels))
    best: OperatingPoint | None = None
    for threshold in sweep.thresholds:
        metrics = metrics_from(sweep.confusion_at(threshold))
        if best is None or metrics.f1 > best.metrics.f1:
            best = OperatingPoint(float(threshold), metrics)
    assert best is not None
    return best


def threshold_for_fpr(scores: Sequence[float], labels: Sequence[int],
                      max_fpr: float) -> OperatingPoint:
    """Smallest threshold whose FPR stays at or below ``max_fpr``.

    Raises ValueError when even the most conservative threshold
    exceeds the budget (only possible with max_fpr < 0).
    """
    sweep = _CumulativeSweep(*_validate(scores, labels))
    for threshold in sweep.thresholds:
        metrics = metrics_from(sweep.confusion_at(threshold))
        if metrics.fpr <= max_fpr:
            return OperatingPoint(float(threshold), metrics)
    raise ValueError(f"no threshold achieves FPR <= {max_fpr}")
