"""Tests for the vocabulary."""

from hypothesis import given
from hypothesis import strategies as st

from repro.embedding.vocab import PAD_TOKEN, UNK_TOKEN, Vocabulary


class TestVocabulary:
    def test_reserved_ids(self):
        vocab = Vocabulary()
        assert vocab.token_to_id[PAD_TOKEN] == 0
        assert vocab.token_to_id[UNK_TOKEN] == 1

    def test_build_frequency_order(self):
        vocab = Vocabulary.build([["b", "a", "a"], ["a", "b", "c"]])
        assert vocab.token_to_id["a"] == 2  # most frequent first
        assert vocab.token_to_id["b"] == 3
        assert vocab.token_to_id["c"] == 4

    def test_build_ties_broken_lexicographically(self):
        vocab = Vocabulary.build([["z", "a"]])
        assert vocab.token_to_id["a"] < vocab.token_to_id["z"]

    def test_min_count_filters(self):
        vocab = Vocabulary.build([["a", "a", "b"]], min_count=2)
        assert "a" in vocab and "b" not in vocab

    def test_max_size_caps(self):
        vocab = Vocabulary.build([["a", "a", "b", "c"]], max_size=3)
        assert len(vocab) == 3  # PAD, UNK, 'a'

    def test_encode_unknown_maps_to_unk(self):
        vocab = Vocabulary.build([["a"]])
        assert vocab.encode(["a", "zzz"]) == [2, 1]

    def test_decode_out_of_range(self):
        vocab = Vocabulary.build([["a"]])
        assert vocab.decode([999]) == [UNK_TOKEN]

    def test_add_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("x")
        assert vocab.add("x") == first

    @given(st.lists(st.text(alphabet="abcxyz_", min_size=1, max_size=6),
                    min_size=1, max_size=30))
    def test_roundtrip_property(self, tokens):
        vocab = Vocabulary.build([tokens])
        assert vocab.decode(vocab.encode(tokens)) == tokens

    @given(st.data(),
           st.lists(st.text(alphabet="abcxyz_09", min_size=1,
                            max_size=6),
                    min_size=1, max_size=30))
    def test_in_vocab_streams_roundtrip(self, data, corpus_tokens):
        """encode -> decode is the identity for ANY stream drawn from
        the vocabulary, however rare its tokens are in the corpus."""
        vocab = Vocabulary.build([corpus_tokens])
        members = sorted(vocab.token_to_id)
        stream = data.draw(st.lists(st.sampled_from(members),
                                    min_size=0, max_size=40))
        assert vocab.decode(vocab.encode(stream)) == stream

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3),
                    min_size=0, max_size=20))
    def test_ids_dense(self, tokens):
        vocab = Vocabulary.build([tokens])
        assert sorted(vocab.token_to_id.values()) == \
            list(range(len(vocab)))
