"""Tests for Algorithm 1 — control ranges and path-sensitive gadgets.

The central theorem of the paper's motivating example is asserted here:
the guarded/unguarded pair produces identical classic gadgets but
distinct path-sensitive gadgets.
"""

from repro.lang.callgraph import analyze
from repro.slicing.gadget import classic_gadget
from repro.slicing.path_sensitive import (brace_ranges,
                                          extract_control_ranges,
                                          path_sensitive_gadget)
from repro.slicing.special_tokens import find_special_tokens

SAFE = """\
void fun1(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 65;
        strncpy(dest, data, n);
    }
}
"""

VULN = """\
void fun1(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 65;
    }
    strncpy(dest, data, n);
}
"""


def gadget_pair(source, token="strncpy"):
    program = analyze(source)
    criterion = [c for c in find_special_tokens(program)
                 if c.token == token][0]
    return (classic_gadget(program, criterion),
            path_sensitive_gadget(program, criterion))


class TestMotivatingExample:
    def test_classic_gadgets_identical(self):
        cg_safe, _ = gadget_pair(SAFE)
        cg_vuln, _ = gadget_pair(VULN)
        assert cg_safe.text() == cg_vuln.text()

    def test_path_sensitive_gadgets_differ(self):
        _, ps_safe = gadget_pair(SAFE)
        _, ps_vuln = gadget_pair(VULN)
        assert ps_safe.text() != ps_vuln.text()

    def test_safe_copy_inside_scope(self):
        _, ps = gadget_pair(SAFE)
        roles = [(line.role, line.text) for line in ps.lines]
        crit_index = next(i for i, (role, _) in enumerate(roles)
                          if role == "criterion")
        end_index = next(i for i, (role, _) in enumerate(roles)
                         if role == "control-end")
        assert crit_index < end_index

    def test_vuln_copy_outside_scope(self):
        _, ps = gadget_pair(VULN)
        roles = [line.role for line in ps.lines]
        crit_index = roles.index("criterion")
        end_index = roles.index("control-end")
        assert end_index < crit_index


class TestControlRanges:
    SOURCE = """\
void f(int n) {
    if (n < 0) {
        n = 0;
    } else if (n > 100) {
        n = 100;
    } else {
        n = n + 1;
    }
    for (int i = 0; i < n; i++) {
        n--;
    }
    while (n) {
        n--;
    }
    do {
        n++;
    } while (n < 3);
    switch (n) {
    case 1:
        n = 1;
        break;
    default:
        break;
    }
}
"""

    def ranges(self):
        return extract_control_ranges(analyze(self.SOURCE), "f")

    def test_all_eight_kinds_found(self):
        kinds = {r.kind for r in self.ranges()}
        assert kinds >= {"if", "elseif", "else", "for", "while",
                         "dowhile", "switch", "case"}

    def test_if_range_spans_then_branch(self):
        if_range = next(r for r in self.ranges() if r.kind == "if")
        assert if_range.header_line == 2
        assert if_range.contains(3)
        assert not if_range.contains(7)

    def test_elseif_bound_to_if(self):
        elseif = next(r for r in self.ranges() if r.kind == "elseif")
        assert 2 in elseif.bound

    def test_else_bound_to_chain(self):
        else_range = next(r for r in self.ranges() if r.kind == "else")
        assert 2 in else_range.bound
        assert 4 in else_range.bound

    def test_case_bound_to_switch(self):
        case = next(r for r in self.ranges() if r.kind == "case")
        switch = next(r for r in self.ranges() if r.kind == "switch")
        assert switch.header_line in case.bound

    def test_dowhile_range_includes_while_line(self):
        dowhile = next(r for r in self.ranges() if r.kind == "dowhile")
        assert dowhile.contains(17)

    def test_unknown_function_yields_no_ranges(self):
        assert extract_control_ranges(analyze(self.SOURCE), "ghost") == []


class TestBraceRanges:
    def test_simple_pairs(self):
        pairs = brace_ranges(["int f() {", "  if (x) {", "  }", "}"])
        assert (2, 3) in pairs
        assert (1, 4) in pairs

    def test_braces_in_strings_ignored(self):
        pairs = brace_ranges(['char *s = "{";', "{", "}"])
        assert pairs == [(2, 3)]

    def test_braces_in_comments_ignored(self):
        pairs = brace_ranges(["// {", "/* { */", "{", "}"])
        assert pairs == [(3, 4)]

    def test_same_line_pair(self):
        pairs = brace_ranges(["if (x) { y = 1; }"])
        assert pairs == [(1, 1)]

    def test_unbalanced_close_ignored(self):
        assert brace_ranges(["}"]) == []


class TestGadgetStructure:
    def test_boundary_lines_marked(self):
        _, ps = gadget_pair(SAFE)
        roles = {line.role for line in ps.lines}
        assert "control-end" in roles
        assert "criterion" in roles

    def test_lines_sorted_within_function(self):
        _, ps = gadget_pair(SAFE)
        numbers = [line.line for line in ps.lines]
        assert numbers == sorted(numbers)

    def test_kind_label(self):
        cg, ps = gadget_pair(SAFE)
        assert cg.kind == "classic"
        assert ps.kind == "path-sensitive"

    def test_ps_gadget_is_superset_of_classic_lines(self):
        cg, ps = gadget_pair(SAFE)
        assert set(cg.line_numbers()) <= set(ps.line_numbers())


class TestInterproceduralOrdering:
    SOURCE = """\
void callee(char *buf, int n) {
    char dest[8];
    strncpy(dest, buf, n);
}

int main() {
    char line[16];
    fgets(line, 16, 0);
    callee(line, 9);
    return 0;
}
"""

    def test_caller_before_callee(self):
        program = analyze(self.SOURCE)
        criterion = [c for c in find_special_tokens(program)
                     if c.token == "strncpy"][0]
        gadget = path_sensitive_gadget(program, criterion)
        functions = gadget.functions()
        assert functions.index("main") < functions.index("callee")


class TestPaperFig3Walkthrough:
    """The paper's Fig 3: an if / else if / else chain with the
    criterion inside the else range; Algorithm 1 must insert the else
    header before the criterion and the closing brace after it, and
    bind the whole chain."""

    SOURCE = """\
void fun1(char *data) {
    char dest[10];
    int n = strlen(data);
    if (n < 5) {
        dest[0] = 1;
    } else if (n < 10) {
        dest[1] = 2;
    } else {
        dest[2] = 3;
        strncpy(dest, data, n);
        dest[3] = 4;
    }
    printf("%s", dest);
}
"""

    def gadget(self):
        program = analyze(self.SOURCE)
        criterion = [c for c in find_special_tokens(program)
                     if c.token == "strncpy"][0]
        return path_sensitive_gadget(program, criterion)

    def test_else_header_precedes_criterion(self):
        lines = self.gadget().lines
        else_index = next(i for i, l in enumerate(lines)
                          if "else {" in l.text and "if" not in l.text)
        crit_index = next(i for i, l in enumerate(lines)
                          if l.role == "criterion")
        assert else_index < crit_index

    def test_closing_brace_follows_criterion(self):
        lines = self.gadget().lines
        crit_index = next(i for i, l in enumerate(lines)
                          if l.role == "criterion")
        assert any(l.role == "control-end" and i > crit_index
                   for i, l in enumerate(lines))

    def test_chain_headers_all_present(self):
        texts = [l.text for l in self.gadget().lines]
        assert any("if (n < 5)" in t for t in texts)
        assert any("else if (n < 10)" in t for t in texts)

    def test_else_chain_binding(self):
        program = analyze(self.SOURCE)
        ranges = extract_control_ranges(program, "fun1")
        else_range = next(r for r in ranges if r.kind == "else")
        if_header = next(r for r in ranges if r.kind == "if").header_line
        elseif_header = next(r for r in ranges
                             if r.kind == "elseif").header_line
        assert if_header in else_range.bound
        assert elseif_header in else_range.bound
