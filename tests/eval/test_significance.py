"""Tests for paired bootstrap significance comparison."""

import numpy as np
import pytest

from repro.eval.significance import paired_bootstrap


def make_data(n=400, quality_a=0.9, quality_b=0.6, seed=0):
    """Synthetic scores: each system outputs label-correlated scores
    with its own noise level (lower quality = more noise)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    noise_a = rng.normal(0, 1 - quality_a, size=n)
    noise_b = rng.normal(0, 1 - quality_b, size=n)
    scores_a = np.clip(labels * quality_a + 0.5 * (1 - quality_a)
                       + noise_a, 0, 1)
    scores_b = np.clip(labels * quality_b + 0.5 * (1 - quality_b)
                       + noise_b, 0, 1)
    return scores_a, scores_b, labels


class TestPairedBootstrap:
    def test_clear_winner_significant(self):
        scores_a, scores_b, labels = make_data()
        result = paired_bootstrap(scores_a, scores_b, labels,
                                  resamples=500, seed=1)
        assert result.delta > 0
        assert result.significant
        assert result.wins > 0.95
        assert result.p_value < 0.05

    def test_identical_systems_not_significant(self):
        scores_a, _, labels = make_data()
        result = paired_bootstrap(scores_a, scores_a, labels,
                                  resamples=300, seed=1)
        assert result.delta == 0.0
        assert not result.significant
        assert result.ci_low <= 0.0 <= result.ci_high

    def test_symmetry(self):
        scores_a, scores_b, labels = make_data()
        forward = paired_bootstrap(scores_a, scores_b, labels,
                                   resamples=300, seed=2)
        backward = paired_bootstrap(scores_b, scores_a, labels,
                                    resamples=300, seed=2)
        assert abs(forward.delta + backward.delta) < 1e-12

    def test_ci_ordered(self):
        scores_a, scores_b, labels = make_data(seed=5)
        result = paired_bootstrap(scores_a, scores_b, labels,
                                  resamples=200, seed=3)
        assert result.ci_low <= result.ci_high

    def test_input_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([0.5], [0.5, 0.6], [1, 0])
        with pytest.raises(ValueError):
            paired_bootstrap([], [], [])

    def test_deterministic_given_seed(self):
        scores_a, scores_b, labels = make_data()
        one = paired_bootstrap(scores_a, scores_b, labels,
                               resamples=200, seed=7)
        two = paired_bootstrap(scores_a, scores_b, labels,
                               resamples=200, seed=7)
        assert one == two


class TestDegenerateInputs:
    """The edge cases the matrix runner hits on small smoke corpora."""

    def test_identical_vectors_delta_zero_p_one(self):
        scores = [0.9, 0.1, 0.8, 0.2, 0.7, 0.3]
        labels = [1, 0, 1, 0, 1, 0]
        result = paired_bootstrap(scores, scores, labels,
                                  resamples=200, seed=4)
        assert result.delta == 0.0
        assert result.f1_a == result.f1_b
        # every centred resample is "at least as extreme" as 0
        assert result.p_value >= 0.95
        assert result.wins == 0.0
        assert not result.significant

    def test_single_class_labels(self):
        # all-positive labels: FPR denominators vanish inside every
        # resample; must not raise and must not call itself significant
        # when the systems agree
        scores = [1.0, 1.0, 0.0, 1.0]
        labels = [1, 1, 1, 1]
        result = paired_bootstrap(scores, scores, labels,
                                  resamples=100, seed=5)
        assert result.delta == 0.0
        assert not result.significant

    def test_single_class_all_negative(self):
        scores_a = [0.0, 0.0, 0.0]
        scores_b = [1.0, 0.0, 0.0]
        labels = [0, 0, 0]
        result = paired_bootstrap(scores_a, scores_b, labels,
                                  resamples=100, seed=6)
        # both F1s are 0 on an all-negative set
        assert result.f1_a == result.f1_b == 0.0
        assert result.delta == 0.0

    def test_zero_resamples_degrades_to_point_estimates(self):
        scores_a = [0.9, 0.9, 0.1, 0.1]
        scores_b = [0.9, 0.1, 0.1, 0.9]
        labels = [1, 1, 0, 0]
        result = paired_bootstrap(scores_a, scores_b, labels,
                                  resamples=0, seed=7)
        assert result.delta == result.f1_a - result.f1_b
        assert result.p_value == 1.0
        assert result.wins == 0.0
        # CI pinned to include 0 so nothing is ever "significant"
        assert result.ci_low <= 0.0 <= result.ci_high
        assert not result.significant

    def test_negative_resamples_treated_as_zero(self):
        result = paired_bootstrap([1.0], [0.0], [1],
                                  resamples=-5, seed=8)
        assert result.p_value == 1.0
        assert not result.significant

    def test_tiny_n_single_sample(self):
        result = paired_bootstrap([0.9], [0.1], [1],
                                  resamples=50, seed=9)
        assert result.f1_a == 1.0
        assert result.f1_b == 0.0
        assert result.ci_low <= result.ci_high
