"""Recursive-descent parser for the C subset.

The subset covers everything the synthetic corpora and the paper's code
examples need: function definitions, local/global declarations (with
pointers, arrays, initializers), all eight control constructs Algorithm 1
cares about (``if``/``else if``/``else``/``for``/``while``/``do while``/
``switch``/``case``), ``goto``/labels, ``struct`` definitions, and the
full C expression grammar (assignment, ternary, binary/unary operators,
calls, array indexing, ``.``/``->`` member access, casts, ``sizeof``).

Unsupported constructs raise :class:`ParseError` with a location, which
tests assert on.
"""

from __future__ import annotations

from . import ast_nodes as A
from .lexer import Token, TokenKind, tokenize
from .source import strip_preprocessor

__all__ = ["ParseError", "Parser", "parse"]

_TYPE_KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double",
        "signed", "unsigned", "bool", "size_t", "ssize_t", "wchar_t",
        "uint8_t", "uint16_t", "uint32_t", "uint64_t",
        "int8_t", "int16_t", "int32_t", "int64_t",
    }
)
_QUALIFIERS = frozenset(
    {"static", "const", "extern", "inline", "register", "volatile",
     "auto", "restrict"}
)

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
)

# Binary operator precedence (C), higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class ParseError(SyntaxError):
    """Raised when the source uses constructs outside the subset."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at line {token.line}:{token.col} "
                         f"(near {token.text!r})")
        self.token = token


class Parser:
    """One-pass recursive-descent parser with a typedef symbol table."""

    def __init__(self, source: str):
        clean = strip_preprocessor(source)
        self._toks = tokenize(clean)
        self._i = 0
        self._typedefs: set[str] = set()
        self._struct_names: set[str] = set()

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._i + offset, len(self._toks) - 1)
        return self._toks[index]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.EOF:
            self._i += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}", tok)
        return self._next()

    def _expect_keyword(self, name: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(name):
            raise ParseError(f"expected keyword {name!r}", tok)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier", tok)
        return self._next()

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    # -- type recognition ---------------------------------------------------

    def _is_type_start(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind is TokenKind.KEYWORD:
            return tok.text in _TYPE_KEYWORDS or tok.text in _QUALIFIERS \
                or tok.text in ("struct", "union", "enum")
        if tok.kind is TokenKind.IDENT:
            return tok.text in self._typedefs
        return False

    def _parse_type_name(self) -> str:
        """Consume a type specifier and return its canonical text."""
        parts: list[str] = []
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in _QUALIFIERS:
                self._next()  # qualifiers dropped from canonical name
            elif tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS:
                parts.append(self._next().text)
            elif tok.is_keyword("struct", "union", "enum"):
                kw = self._next().text
                name = ""
                if self._peek().kind is TokenKind.IDENT:
                    name = self._next().text
                parts.append(f"{kw} {name}".strip())
            elif (tok.kind is TokenKind.IDENT and tok.text in self._typedefs
                  and not parts):
                parts.append(self._next().text)
            else:
                break
        if not parts:
            raise ParseError("expected type name", self._peek())
        return " ".join(parts)

    # -- top level ----------------------------------------------------------

    def parse_translation_unit(self) -> A.TranslationUnit:
        """Parse the whole file."""
        first = self._peek()
        unit = A.TranslationUnit(first.line, first.col, functions=[])
        while self._peek().kind is not TokenKind.EOF:
            tok = self._peek()
            if tok.is_keyword("typedef"):
                self._parse_typedef(unit)
            elif tok.is_keyword("struct", "union", "enum") and \
                    self._looks_like_struct_def():
                unit.structs.append(self._parse_struct_def())
            elif tok.is_punct(";"):
                self._next()
            elif self._is_type_start():
                self._parse_external_declaration(unit)
            else:
                raise ParseError("unexpected token at file scope", tok)
        return unit

    def _looks_like_struct_def(self) -> bool:
        # 'struct NAME {' or 'struct {'
        offset = 1
        if self._peek(offset).kind is TokenKind.IDENT:
            offset += 1
        return self._peek(offset).is_punct("{")

    def _parse_struct_def(self) -> A.StructDef:
        start = self._next()  # struct/union/enum keyword
        name = ""
        if self._peek().kind is TokenKind.IDENT:
            name = self._next().text
            self._struct_names.add(name)
        self._expect_punct("{")
        fields: list[tuple[str, str]] = []
        if start.text == "enum":
            while not self._peek().is_punct("}"):
                ident = self._expect_ident()
                self._typedefs.discard(ident.text)
                fields.append(("int", ident.text))
                if self._accept_punct("="):
                    self._parse_assignment()
                if not self._accept_punct(","):
                    break
        else:
            while not self._peek().is_punct("}") and \
                    self._peek().kind is not TokenKind.EOF:
                type_name = self._parse_type_name()
                while True:
                    depth = 0
                    while self._accept_punct("*"):
                        depth += 1
                    field_name = self._expect_ident().text
                    while self._accept_punct("["):
                        if not self._peek().is_punct("]"):
                            self._parse_assignment()
                        self._expect_punct("]")
                    fields.append(("*" * depth + type_name, field_name))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
        self._expect_punct("}")
        # optional declarator names after the body: 'struct X {...} y;'
        while self._peek().kind is TokenKind.IDENT or self._peek().is_punct("*"):
            self._next()
        self._accept_punct(";")
        return A.StructDef(start.line, start.col, name=name, fields=fields)

    def _parse_typedef(self, unit: A.TranslationUnit) -> None:
        self._expect_keyword("typedef")
        if self._peek().is_keyword("struct", "union", "enum") and \
                self._looks_like_struct_def():
            struct = self._parse_struct_def()
            unit.structs.append(struct)
            # The struct parser consumed trailing names; re-scan them is
            # unnecessary — instead typedef names were eaten. Simplest
            # robust approach: register the struct tag as a typedef too.
            if struct.name:
                self._typedefs.add(struct.name)
            return
        self._parse_type_name()
        while self._accept_punct("*"):
            pass
        name = self._expect_ident().text
        self._typedefs.add(name)
        self._expect_punct(";")

    def _parse_external_declaration(self, unit: A.TranslationUnit) -> None:
        start = self._peek()
        type_name = self._parse_type_name()
        pointer_depth = 0
        while self._accept_punct("*"):
            pointer_depth += 1
        name_tok = self._expect_ident()
        if self._peek().is_punct("("):
            fn = self._parse_function_rest(start, type_name, pointer_depth,
                                           name_tok)
            if fn is not None:
                unit.functions.append(fn)
        else:
            unit.globals.append(
                self._parse_global_decl_rest(start, type_name,
                                             pointer_depth, name_tok))

    def _parse_global_decl_rest(self, start: Token, type_name: str,
                                pointer_depth: int,
                                name_tok: Token) -> A.Decl:
        """Finish a file-scope declaration whose type and first name
        were already consumed."""
        declarators: list[A.Declarator] = []
        name = name_tok.text
        depth = pointer_depth
        while True:
            sizes: list[A.Expr | None] = []
            while self._accept_punct("["):
                if self._peek().is_punct("]"):
                    sizes.append(None)
                else:
                    sizes.append(self._parse_assignment())
                self._expect_punct("]")
            init = None
            if self._accept_punct("="):
                if self._peek().is_punct("{"):
                    init = self._parse_init_list()
                else:
                    init = self._parse_assignment()
            declarators.append(
                A.Declarator(name=name, pointer_depth=depth,
                             array_sizes=sizes, init=init))
            if not self._accept_punct(","):
                break
            depth = 0
            while self._accept_punct("*"):
                depth += 1
            name = self._expect_ident().text
        self._expect_punct(";")
        return A.Decl(start.line, start.col, type_name=type_name,
                      declarators=declarators)

    def _parse_function_rest(
        self,
        start: Token,
        return_type: str,
        pointer_depth: int,
        name_tok: Token,
    ) -> A.FunctionDef | None:
        self._expect_punct("(")
        params: list[A.Param] = []
        if not self._peek().is_punct(")"):
            while True:
                if self._peek().is_keyword("void") and \
                        self._peek(1).is_punct(")"):
                    self._next()
                    break
                if self._peek().is_punct("..."):
                    self._next()
                    break
                ptype = self._parse_type_name()
                pdepth = 0
                while self._accept_punct("*"):
                    pdepth += 1
                pname = ""
                pline = self._peek().line
                if self._peek().kind is TokenKind.IDENT:
                    pname = self._next().text
                is_array = False
                while self._accept_punct("["):
                    is_array = True
                    if not self._peek().is_punct("]"):
                        self._parse_assignment()
                    self._expect_punct("]")
                params.append(A.Param(ptype, pname, pdepth, is_array, pline))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return None  # prototype only
        body = self._parse_block()
        return A.FunctionDef(
            start.line, start.col,
            return_type="*" * pointer_depth + return_type,
            name=name_tok.text, params=params, body=body)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> A.Block:
        open_tok = self._expect_punct("{")
        stmts: list[A.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", self._peek())
            stmts.append(self._parse_statement())
        close = self._expect_punct("}")
        return A.Block(open_tok.line, open_tok.col, stmts=stmts,
                       end_line=close.line)

    def _parse_statement(self) -> A.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_punct(";"):
            self._next()
            return A.Empty(tok.line, tok.col)
        if tok.is_keyword("if"):
            return self._parse_if(is_elseif=False)
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("switch"):
            return self._parse_switch()
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return A.Break(tok.line, tok.col)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return A.Continue(tok.line, tok.col)
        if tok.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return A.Return(tok.line, tok.col, value=value)
        if tok.is_keyword("goto"):
            self._next()
            label = self._expect_ident().text
            self._expect_punct(";")
            return A.Goto(tok.line, tok.col, label=label)
        if tok.kind is TokenKind.IDENT and self._peek(1).is_punct(":") and \
                not self._peek(2).is_punct(":"):
            self._next()
            self._next()
            inner = self._parse_statement()
            return A.Label(tok.line, tok.col, name=tok.text, stmt=inner)
        if self._is_type_start() and self._looks_like_declaration():
            return self._parse_declaration()
        expr = self._parse_expression()
        self._expect_punct(";")
        return A.ExprStmt(tok.line, tok.col, expr=expr)

    def _looks_like_declaration(self) -> bool:
        """Disambiguate 'T * x;' declaration from 'a * b;' expression.

        Our type recognizer only fires on type keywords and registered
        typedef names, so any type-start here really is a declaration.
        """
        return True

    def _parse_declaration(self) -> A.Decl:
        start = self._peek()
        type_name = self._parse_type_name()
        declarators: list[A.Declarator] = []
        while True:
            depth = 0
            while self._accept_punct("*"):
                depth += 1
            name = self._expect_ident().text
            sizes: list[A.Expr | None] = []
            while self._accept_punct("["):
                if self._peek().is_punct("]"):
                    sizes.append(None)
                else:
                    sizes.append(self._parse_assignment())
                self._expect_punct("]")
            init = None
            if self._accept_punct("="):
                if self._peek().is_punct("{"):
                    init = self._parse_init_list()
                else:
                    init = self._parse_assignment()
            declarators.append(
                A.Declarator(name=name, pointer_depth=depth,
                             array_sizes=sizes, init=init))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return A.Decl(start.line, start.col, type_name=type_name,
                      declarators=declarators)

    def _parse_init_list(self) -> A.InitList:
        open_tok = self._expect_punct("{")
        items: list[A.Expr] = []
        while not self._peek().is_punct("}"):
            if self._peek().is_punct("{"):
                items.append(self._parse_init_list())
            else:
                items.append(self._parse_assignment())
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        return A.InitList(open_tok.line, open_tok.col, items=items)

    def _parse_if(self, *, is_elseif: bool) -> A.If:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        own_else_line = 0
        if self._peek().is_keyword("else"):
            else_tok = self._next()
            own_else_line = else_tok.line
            if self._peek().is_keyword("if"):
                otherwise = self._parse_if(is_elseif=True)
            else:
                otherwise = self._parse_statement()
        return A.If(start.line, start.col, cond=cond, then=then,
                    otherwise=otherwise, is_elseif=is_elseif,
                    else_line=own_else_line)

    def _parse_while(self) -> A.While:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return A.While(start.line, start.col, cond=cond, body=body)

    def _parse_do_while(self) -> A.DoWhile:
        start = self._expect_keyword("do")
        body = self._parse_statement()
        while_tok = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return A.DoWhile(start.line, start.col, body=body, cond=cond,
                         while_line=while_tok.line)

    def _parse_for(self) -> A.For:
        start = self._expect_keyword("for")
        self._expect_punct("(")
        init: A.Stmt | None = None
        if not self._peek().is_punct(";"):
            if self._is_type_start():
                init = self._parse_declaration()
            else:
                expr = self._parse_expression()
                init = A.ExprStmt(expr.line, expr.col, expr=expr)
                self._expect_punct(";")
        else:
            self._next()
        cond = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._peek().is_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return A.For(start.line, start.col, init=init, cond=cond, step=step,
                     body=body)

    def _parse_switch(self) -> A.Switch:
        start = self._expect_keyword("switch")
        self._expect_punct("(")
        expr = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[A.Case] = []
        current: A.Case | None = None
        while not self._peek().is_punct("}"):
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                raise ParseError("unterminated switch", tok)
            if tok.is_keyword("case"):
                self._next()
                value = self._parse_expression()
                self._expect_punct(":")
                current = A.Case(tok.line, tok.col, value=value)
                cases.append(current)
            elif tok.is_keyword("default"):
                self._next()
                self._expect_punct(":")
                current = A.Case(tok.line, tok.col, value=None)
                cases.append(current)
            else:
                if current is None:
                    raise ParseError("statement before first case label", tok)
                current.stmts.append(self._parse_statement())
        close = self._expect_punct("}")
        return A.Switch(start.line, start.col, expr=expr, cases=cases,
                        end_line=close.line)

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> A.Expr:
        expr = self._parse_assignment()
        while self._peek().is_punct(","):
            comma = self._next()
            right = self._parse_assignment()
            expr = A.Comma(comma.line, comma.col, left=expr, right=right)
        return expr

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_ternary()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._next()
            right = self._parse_assignment()
            return A.Assign(tok.line, tok.col, op=tok.text, target=left,
                            value=right)
        return left

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(1)
        if self._peek().is_punct("?"):
            q = self._next()
            then = self._parse_assignment()
            self._expect_punct(":")
            otherwise = self._parse_assignment()
            return A.Ternary(q.line, q.col, cond=cond, then=then,
                             otherwise=otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINARY_PRECEDENCE.get(tok.text) \
                if tok.kind is TokenKind.PUNCT else None
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = A.Binary(tok.line, tok.col, op=tok.text, left=left,
                            right=right)

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in \
                ("+", "-", "!", "~", "*", "&", "++", "--"):
            self._next()
            operand = self._parse_unary()
            return A.Unary(tok.line, tok.col, op=tok.text, operand=operand,
                           prefix=True)
        if tok.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("(") and self._is_type_start(1):
                self._next()
                type_name = self._parse_type_name()
                while self._accept_punct("*"):
                    type_name += "*"
                self._expect_punct(")")
                return A.SizeOf(tok.line, tok.col, arg=type_name)
            operand = self._parse_unary()
            return A.SizeOf(tok.line, tok.col, arg=operand)
        if tok.is_punct("(") and self._is_type_start(1):
            # Cast: '(' type-name ')' unary
            self._next()
            type_name = self._parse_type_name()
            while self._accept_punct("*"):
                type_name += "*"
            self._expect_punct(")")
            operand = self._parse_unary()
            return A.Cast(tok.line, tok.col, type_name=type_name,
                          expr=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("("):
                self._next()
                args: list[A.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = A.Call(tok.line, tok.col, func=expr, args=args)
            elif tok.is_punct("["):
                self._next()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = A.Index(tok.line, tok.col, base=expr, index=index)
            elif tok.is_punct("."):
                self._next()
                name = self._expect_ident().text
                expr = A.Member(tok.line, tok.col, base=expr, name=name,
                                arrow=False)
            elif tok.is_punct("->"):
                self._next()
                name = self._expect_ident().text
                expr = A.Member(tok.line, tok.col, base=expr, name=name,
                                arrow=True)
            elif tok.is_punct("++", "--"):
                self._next()
                expr = A.Unary(tok.line, tok.col, op=tok.text, operand=expr,
                               prefix=False)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NUMBER:
            self._next()
            return A.Number(tok.line, tok.col, text=tok.text)
        if tok.kind is TokenKind.STRING:
            self._next()
            # Adjacent string literal concatenation.
            text = tok.text
            while self._peek().kind is TokenKind.STRING:
                extra = self._next().text
                text = text[:-1] + extra[1:]
            return A.StringLit(tok.line, tok.col, text=text)
        if tok.kind is TokenKind.CHAR:
            self._next()
            return A.CharLit(tok.line, tok.col, text=tok.text)
        if tok.kind is TokenKind.IDENT or tok.is_keyword("true", "false",
                                                         "NULL"):
            self._next()
            return A.Ident(tok.line, tok.col, name=tok.text)
        if tok.is_punct("("):
            self._next()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError("expected expression", tok)


def parse(source: str) -> A.TranslationUnit:
    """Parse C source text into a :class:`~repro.lang.ast_nodes.TranslationUnit`."""
    return Parser(source).parse_translation_unit()
