#!/usr/bin/env python3
"""Benchmark diff-aware incremental scanning on a synthetic monorepo.

Builds a monorepo of ``--functions`` C functions spread over
``--files`` files (call chains give realistic multi-function
components), edits ~1% of the functions, and scans the edited tree two
ways::

    PYTHONPATH=src python scripts/bench_diff.py          # full run
    PYTHONPATH=src python scripts/bench_diff.py --smoke  # CI-sized

* ``cold`` — a fresh :class:`~repro.core.serve.ScanService` with no
  caches scans the edited tree from scratch (what every pre-diff scan
  paid on every commit).
* ``incremental`` — a service holding a function-level gadget cache
  scans the *base* tree once (the "previous commit" — untimed warm-up),
  then the edited tree: unchanged files resolve from the in-memory
  verdict cache, changed files re-slice only the call components the
  edit touched via :class:`~repro.core.cache.FunctionGadgetCache`.

The non-negotiable gate is *parity*: incremental verdict records must
be byte-identical to the cold scan's (the caches may only skip work,
never change results) — a parity failure exits non-zero in every mode.
The speedup is gated at ``TARGET_SPEEDUP`` on full runs and merely
disclosed under ``--smoke`` (CI machines are too noisy to gate
timings; CI asserts the JSON contract and parity).

Writes ``benchmarks/results/BENCH_diff.json``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import SCALE_PRESETS  # noqa: E402
from repro.core.detector import SEVulDet  # noqa: E402
from repro.core.diffscan import DiffScanner  # noqa: E402
from repro.core.serve import ScanService  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402

TARGET_SPEEDUP = 5.0


def synth_function(index: int, calls: str | None) -> str:
    """One deterministic function; every third one calls its neighbour
    so edits invalidate realistic multi-function components."""
    body_call = (f"    buf[0] = {calls}(n);\n" if calls
                 else "    buf[0] = n;\n")
    return (f"int fn_{index}(int n) {{\n"
            f"    char buf[8];\n"
            f"{body_call}"
            f"    return buf[0] + {index % 7};\n"
            f"}}\n")


def build_monorepo(root: Path, functions: int, files: int) -> None:
    """``functions`` functions over ``files`` files, in call chains."""
    per_file = max(1, functions // files)
    index = 0
    for file_no in range(files):
        chunks = []
        indexes = list(range(index, index + per_file))
        # define callees before callers: fn_i calls fn_{i+1} when
        # i % 3 == 0 (and the callee is in the same file)
        for i in reversed(indexes):
            callee = (f"fn_{i + 1}"
                      if i % 3 == 0 and i + 1 in indexes else None)
            chunks.append(synth_function(i, callee))
        path = root / f"pkg{file_no % 4}" / f"mod_{file_no:03d}.c"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(chunks))
        index += per_file


def edit_functions(base: Path, target: Path,
                   edits: int) -> list[str]:
    """Copy ``base`` to ``target`` and edit ``edits`` function bodies,
    spread across files.  Returns the edited function names."""
    if target.exists():
        shutil.rmtree(target)
    shutil.copytree(base, target)
    sources = sorted(target.rglob("*.c"))
    edited: list[str] = []
    stride = max(1, len(sources) // edits)
    for pick in range(edits):
        path = sources[(pick * stride) % len(sources)]
        text = path.read_text()
        # edit the first not-yet-edited function in the file: bump its
        # trailing constant (a real body change, fingerprint moves)
        for line in text.splitlines():
            if line.startswith("int fn_"):
                name = line.split("(")[0].removeprefix("int ")
                if name not in edited:
                    edited.append(name)
                    break
        else:
            continue
        start = text.index(f"int {name}(")
        end = text.index("}\n", start)
        chunk = text[start:end]
        text = (text[:start]
                + chunk.replace("return buf[0] +",
                                "return buf[0] + 1 +")
                + text[end:])
        path.write_text(text)
    return edited


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny repo, parity gated, "
                             "speedup disclosed")
    parser.add_argument("--functions", type=int, default=None,
                        help="monorepo size (default 500, smoke 60)")
    parser.add_argument("--files", type=int, default=None,
                        help="files to spread them over "
                             "(default 50, smoke 6)")
    parser.add_argument("--edits", type=int, default=None,
                        help="functions to edit (default 5 = 1%%, "
                             "smoke 2)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_diff.json")
    args = parser.parse_args(argv)

    functions = args.functions or (60 if args.smoke else 500)
    files = args.files or (6 if args.smoke else 50)
    edits = args.edits or (2 if args.smoke else 5)
    train_n = 20 if args.smoke else 80

    detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
    detector.fit(generate_sard_corpus(train_n, seed=31))
    detector.threshold = 0.5

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "base"
        target = Path(tmp) / "target"
        build_monorepo(base, functions, files)
        edited = edit_functions(base, target, edits)
        n_files = len(list(target.rglob("*.c")))
        print(f"monorepo: {functions} functions / {n_files} files; "
              f"edited {len(edited)} "
              f"({len(edited) / functions:.1%}): "
              f"{', '.join(edited)}")

        # cold: fresh service, no caches, edited tree from scratch
        with ScanService(detector, workers=args.workers,
                         batch_size=args.batch_size) as service:
            start = time.perf_counter()
            cold_verdicts = DiffScanner(service).scan_tree(target)
            cold_s = time.perf_counter() - start
        print(f"cold scan:        {cold_s:.3f}s "
              f"({n_files / cold_s:.1f} files/s)")

        # incremental: warm the caches on the base tree (the previous
        # commit), then time the rescan of the edited tree
        with tempfile.TemporaryDirectory() as cache_dir, \
                ScanService(detector, workers=args.workers,
                            batch_size=args.batch_size,
                            fn_cache=cache_dir) as service:
            scanner = DiffScanner(service)
            start = time.perf_counter()
            scanner.scan_tree(base)
            base_s = time.perf_counter() - start
            telemetry = service.telemetry
            base_misses = telemetry.get("fn_cache_misses") or 0
            start = time.perf_counter()
            warm_verdicts = scanner.scan_tree(target)
            warm_s = time.perf_counter() - start
            hits = telemetry.get("fn_cache_hits") or 0
            misses = (telemetry.get("fn_cache_misses") or 0) \
                - base_misses
        print(f"base (warm-up):   {base_s:.3f}s")
        print(f"incremental scan: {warm_s:.3f}s "
              f"({misses} component re-slice(s), {hits} cached "
              f"function(s))")

    parity = warm_verdicts == cold_verdicts
    speedup = round(cold_s / max(warm_s, 1e-9), 2)
    flagged = sum(1 for record in cold_verdicts.values()
                  if record["status"] == "flagged")
    print(f"speedup: {speedup}x for a "
          f"{len(edited) / functions:.1%} edit; verdict parity: "
          f"{parity}")

    report = {
        "benchmark": "diff",
        "mode": "smoke" if args.smoke else "full",
        "monorepo": {"functions": functions, "files": n_files,
                     "edited_functions": len(edited),
                     "edit_fraction": round(len(edited) / functions,
                                            4)},
        "workers": args.workers,
        "batch_size": args.batch_size,
        "cold": {"seconds": round(cold_s, 4),
                 "files_per_sec": round(n_files / cold_s, 2)},
        "base_warmup_seconds": round(base_s, 4),
        "incremental": {"seconds": round(warm_s, 4),
                        "files_per_sec": round(n_files / warm_s, 2),
                        "fn_cache_hits": hits,
                        "component_reslices": misses},
        "flagged_files": flagged,
        "speedup": speedup,
        "parity": parity,
        "targets": {"speedup": TARGET_SPEEDUP, "parity": True},
        "targets_met": {"speedup": speedup >= TARGET_SPEEDUP,
                        "parity": parity},
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not parity:
        print("error: incremental verdicts diverged from the cold "
              "scan", file=sys.stderr)
        return 1
    if not args.smoke and speedup < TARGET_SPEEDUP:
        print("warning: diff speedup target not met",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
