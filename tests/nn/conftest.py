"""Shared helpers for nn tests: numerical gradient checking."""

import numpy as np
import pytest

from repro.nn import set_default_dtype


@pytest.fixture(autouse=True)
def pin_float64():
    """Numerical gradient checks need float64: central differences at
    eps=1e-6 drown in float32's ~1e-7 relative noise.  The production
    default stays float32 (see repro.nn.dtype); these tests pin the
    wider dtype and restore whatever was active afterwards."""
    previous = set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def numerical_gradient(func, array, eps=1e-6):
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array``
    (mutated in place probe-by-probe)."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_close(analytic, numeric, atol=1e-6, rtol=1e-5):
    """np.allclose-style check: |analytic - numeric| <= atol + rtol*scale.

    The relative term keeps the comparison meaningful for chains whose
    true gradients reach 1e17 — there an absolute tolerance would fail
    even when both gradients agree to 10 significant digits.  ``scale``
    is the per-element |numeric| floored at the array-wide max: central
    differences of a scalar loss all share one absolute noise floor of
    about ulp(|loss|)/(2*eps), which tracks the *largest* component,
    so small components cannot be held to their own relative scale.
    """
    __tracebackhide__ = True
    analytic = np.asarray(analytic)
    numeric = np.asarray(numeric)
    scale = np.maximum(np.abs(numeric),
                       np.abs(numeric).max(initial=0.0))
    diff = np.abs(analytic - numeric)
    bound = atol + rtol * scale
    if not (diff <= bound).all():
        worst = (diff - bound).max()
        raise AssertionError(
            f"gradient mismatch: max |diff| - tol = {worst} "
            f"(atol={atol}, rtol={rtol})")
