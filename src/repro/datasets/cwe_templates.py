"""CWE-family program templates (the SARD substitute's generators).

Each template emits a *vulnerable* or *patched* variant of the same
program shape — randomized identifier names, buffer sizes, noise
statements, and wrapper control flow — mirroring how SARD/Juliet pairs
``bad``/``good`` functions.  Vulnerable sink lines are marked while
writing so labeling needs no post-hoc search.

Two families exist specifically to reproduce paper phenomena:

* ``guard_placement_strncpy`` — the Fig 1 pair: guarded and unguarded
  variants whose *classic* code gadgets are identical (same dependent
  statements, same order) while path-sensitive gadgets differ.  These
  drive the CG vs PS-CG gap of Table II.
* ``long_chain_strcpy`` — a long data-dependent preamble pushes the
  sink past the BRNNs' fixed token window, driving the flexible-length
  advantage of the SPP models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .codegen import CodeWriter, NamePool, noise_statements
from .manifest import TestCase

__all__ = ["Template", "TEMPLATES", "generate_case", "template_names"]


@dataclass(frozen=True)
class Template:
    """One CWE family generator."""

    name: str
    cwe: str
    category: str  # dominant special-token family
    build: Callable[[CodeWriter, NamePool, np.random.Generator, bool],
                    None]


def _standard_main(writer: CodeWriter, names: NamePool,
                   rng: np.random.Generator, sink: str,
                   *, pass_length: bool = True,
                   input_size: int = 64) -> None:
    """Emit a main() that reads stdin and forwards it to the sink."""
    line_var = names.var("line")
    with writer.block("int main()"):
        writer.line(f"char {line_var}[{input_size}];")
        writer.line(f"fgets({line_var}, {input_size}, 0);")
        if pass_length:
            n_var = names.var("n")
            writer.line(f"int {n_var} = atoi({line_var});")
            writer.line(f"{sink}({line_var}, {n_var});")
        else:
            writer.line(f"{sink}({line_var});")
        writer.line("return 0;")


# ---------------------------------------------------------------------------
# FC family
# ---------------------------------------------------------------------------


def _strcpy_stack_overflow(writer: CodeWriter, names: NamePool,
                           rng: np.random.Generator,
                           vulnerable: bool) -> None:
    """CWE-121: unbounded strcpy into a fixed stack buffer."""
    size = int(rng.integers(8, 24))
    sink = names.func()
    buf = names.var("buf")
    with writer.block(f"void {sink}(char *data)"):
        writer.line(f"char {buf}[{size}];")
        noise_statements(writer, names, rng, int(rng.integers(1, 4)),
                         live="data", live_is_pointer=True,
                         buffer=buf, buffer_size=size)
        if vulnerable:
            writer.line(f"strcpy({buf}, data);", mark=True)
        else:
            length = names.var("len")
            writer.line(f"int {length} = strlen(data);")
            with writer.block(f"if ({length} < {size})"):
                writer.line(f"strcpy({buf}, data);")
        writer.line(f'printf("%s\\n", {buf});')
    writer.blank()
    _standard_main(writer, names, rng, sink, pass_length=False)


def _guard_placement_strncpy(writer: CodeWriter, names: NamePool,
                             rng: np.random.Generator,
                             vulnerable: bool) -> None:
    """CWE-120 (Fig 1 family): guard present in both variants; only the
    *placement* of the copy relative to the guard's scope differs, so
    classic gadgets are identical across the pair."""
    size = int(rng.integers(8, 20))
    sink = names.func()
    dest = names.var("dest")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char {dest}[{size}];")
        noise_statements(writer, names, rng, int(rng.integers(1, 3)),
                         live="n", buffer=dest, buffer_size=size)
        if vulnerable:
            with writer.block(f"if (n < {size})"):
                writer.line(f"{dest}[0] = 0;")
            writer.line(f"strncpy({dest}, data, n);", mark=True)
        else:
            with writer.block(f"if (n < {size})"):
                writer.line(f"{dest}[0] = 0;")
                writer.line(f"strncpy({dest}, data, n);")
        writer.line(f'printf("%s\\n", {dest});')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _memcpy_length_check(writer: CodeWriter, names: NamePool,
                         rng: np.random.Generator,
                         vulnerable: bool) -> None:
    """CWE-119: memcpy with an attacker-controlled length."""
    size = int(rng.integers(8, 32))
    sink = names.func()
    dest = names.var("dest")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char {dest}[{size}];")
        noise_statements(writer, names, rng, int(rng.integers(1, 4)),
                         live="n", buffer=dest, buffer_size=size)
        if vulnerable:
            writer.line(f"memcpy({dest}, data, n);", mark=True)
        else:
            with writer.block(f"if (n > {size})"):
                writer.line(f"n = {size};")
            writer.line(f"memcpy({dest}, data, n);")
        writer.line(f'printf("%c\\n", {dest}[0]);')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _format_string(writer: CodeWriter, names: NamePool,
                   rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-134: user-controlled format string."""
    sink = names.func()
    with writer.block(f"void {sink}(char *data)"):
        noise_statements(writer, names, rng, int(rng.integers(1, 4)),
                         live="data", live_is_pointer=True)
        if vulnerable:
            writer.line("printf(data);", mark=True)
        else:
            writer.line('printf("%s", data);')
    writer.blank()
    _standard_main(writer, names, rng, sink, pass_length=False)


def _long_chain_strcpy(writer: CodeWriter, names: NamePool,
                       rng: np.random.Generator,
                       vulnerable: bool) -> None:
    """CWE-121 with a long dependent preamble: the sink appears after a
    chain of transformations so fixed-length models truncate it away."""
    size = int(rng.integers(8, 24))
    chain = int(rng.integers(10, 16))
    sink = names.func()
    buf = names.var("buf")
    acc = names.var("total")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char {buf}[{size}];")
        writer.line(f"int {acc} = n;")
        for _ in range(chain):
            step = names.var()
            delta = int(rng.integers(1, 5))
            writer.line(f"int {step} = {acc} + {delta};")
            writer.line(f"{acc} = {step} - {delta};")
        if vulnerable:
            writer.line(f"strncpy({buf}, data, {acc});", mark=True)
        else:
            with writer.block(f"if ({acc} > {size - 1})"):
                writer.line(f"{acc} = {size - 1};")
            with writer.block(f"if ({acc} < 0)"):
                writer.line(f"{acc} = 0;")
            writer.line(f"strncpy({buf}, data, {acc});")
        writer.line(f'printf("%s\\n", {buf});')
    writer.blank()
    _standard_main(writer, names, rng, sink)


# ---------------------------------------------------------------------------
# AU family
# ---------------------------------------------------------------------------


def _index_oob_write(writer: CodeWriter, names: NamePool,
                     rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-787: attacker-controlled array index."""
    size = int(rng.integers(8, 32))
    sink = names.func()
    table = names.var("table")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"int {table}[{size}];")
        noise_statements(writer, names, rng, int(rng.integers(1, 4)),
                         live="n", buffer=table, buffer_size=size)
        if vulnerable:
            writer.line(f"{table}[n] = {rng.integers(1, 99)};", mark=True)
        else:
            with writer.block(f"if (n >= 0 && n < {size})"):
                writer.line(f"{table}[n] = {rng.integers(1, 99)};")
        writer.line(f'printf("%d\\n", {table}[0]);')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _loop_off_by_one(writer: CodeWriter, names: NamePool,
                     rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-787 via an off-by-one loop bound (``<=`` instead of ``<``)."""
    size = int(rng.integers(6, 20))
    sink = names.func()
    arr = names.var("arr")
    i = names.var("i")
    cmp = "<=" if vulnerable else "<"
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"int {arr}[{size}];")
        noise_statements(writer, names, rng, int(rng.integers(1, 3)),
                         live="n", buffer=arr, buffer_size=size)
        header = f"for (int {i} = 0; {i} {cmp} {size}; {i}++)"
        if vulnerable:
            with writer.block(header):
                writer.line(f"{arr}[{i}] = {i} + n;", mark=True)
        else:
            with writer.block(header):
                writer.line(f"{arr}[{i}] = {i} + n;")
        writer.line(f'printf("%d\\n", {arr}[0]);')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _stack_read_overflow(writer: CodeWriter, names: NamePool,
                         rng: np.random.Generator,
                         vulnerable: bool) -> None:
    """CWE-125: out-of-bounds read at an attacker index."""
    size = int(rng.integers(6, 24))
    sink = names.func()
    arr = names.var("codes")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"int {arr}[{size}];")
        writer.line(f"memset({arr}, 0, {size});")
        if vulnerable:
            writer.line(f'printf("%d\\n", {arr}[n]);', mark=True)
        else:
            with writer.block(f"if (n >= 0 && n < {size})"):
                writer.line(f'printf("%d\\n", {arr}[n]);')
    writer.blank()
    _standard_main(writer, names, rng, sink)


# ---------------------------------------------------------------------------
# PU family
# ---------------------------------------------------------------------------


def _use_after_free(writer: CodeWriter, names: NamePool,
                    rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-416: write through a pointer after freeing it."""
    size = int(rng.integers(8, 64))
    sink = names.func()
    ptr = names.var("ptr")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char *{ptr} = (char *)malloc({size});")
        with writer.block(f"if ({ptr} == NULL)"):
            writer.line("return;")
        writer.line(f"{ptr}[0] = data[0];")
        noise_statements(writer, names, rng, int(rng.integers(1, 3)),
                         live="n", buffer=ptr, buffer_size=size)
        if vulnerable:
            writer.line(f"free({ptr});")
            writer.line(f"{ptr}[0] = {rng.integers(1, 99)};", mark=True)
        else:
            writer.line(f"{ptr}[0] = {rng.integers(1, 99)};")
            writer.line(f"free({ptr});")
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _null_deref(writer: CodeWriter, names: NamePool,
                rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-476: allocation result used without a NULL check."""
    sink = names.func()
    ptr = names.var("ptr")
    size_var = names.var("want")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"int {size_var} = n;")
        noise_statements(writer, names, rng, int(rng.integers(1, 3)), live="n")
        writer.line(f"char *{ptr} = (char *)malloc({size_var});")
        if vulnerable:
            writer.line(f"{ptr}[0] = data[0];", mark=True)
            writer.line(f"free({ptr});")
        else:
            with writer.block(f"if ({ptr} != NULL)"):
                writer.line(f"{ptr}[0] = data[0];")
                writer.line(f"free({ptr});")
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _double_free(writer: CodeWriter, names: NamePool,
                 rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-415: pointer freed on two paths."""
    size = int(rng.integers(8, 64))
    sink = names.func()
    ptr = names.var("ptr")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char *{ptr} = (char *)malloc({size});")
        with writer.block(f"if ({ptr} == NULL)"):
            writer.line("return;")
        writer.line(f"{ptr}[0] = data[0];")
        with writer.block(f"if (n > {rng.integers(2, 9)})"):
            writer.line(f"free({ptr});")
        if vulnerable:
            writer.line(f"free({ptr});", mark=True)
        else:
            with writer.block("else"):
                writer.line(f"free({ptr});")
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _dangling_return(writer: CodeWriter, names: NamePool,
                     rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-416 variant: helper frees, caller keeps using the pointer."""
    size = int(rng.integers(8, 48))
    helper = names.func()
    sink = names.func()
    ptr = names.var("ptr")
    with writer.block(f"void {helper}(char *mem, int n)"):
        writer.line("mem[0] = n;")
        if vulnerable:
            writer.line("free(mem);")
        else:
            writer.line("mem[0] = mem[0] + 1;")
    writer.blank()
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char *{ptr} = (char *)malloc({size});")
        with writer.block(f"if ({ptr} == NULL)"):
            writer.line("return;")
        writer.line(f"{helper}({ptr}, n);")
        if vulnerable:
            writer.line(f"{ptr}[0] = data[0];", mark=True)
        else:
            writer.line(f"{ptr}[0] = data[0];")
            writer.line(f"free({ptr});")
    writer.blank()
    _standard_main(writer, names, rng, sink)


# ---------------------------------------------------------------------------
# AE family
# ---------------------------------------------------------------------------


def _int_overflow_alloc(writer: CodeWriter, names: NamePool,
                        rng: np.random.Generator,
                        vulnerable: bool) -> None:
    """CWE-190: multiplication overflow sizes an undersized buffer."""
    element = int(rng.integers(4, 16))
    cap = int(rng.integers(256, 1024))
    sink = names.func()
    total = names.var("total")
    ptr = names.var("ptr")
    with writer.block(f"void {sink}(char *data, int n)"):
        noise_statements(writer, names, rng, int(rng.integers(1, 3)), live="n")
        if vulnerable:
            # n * element can wrap negative; malloc then fails but the
            # write below goes through the unchecked pointer.
            writer.line(f"int {total} = n * {element};", mark=True)
            writer.line(f"char *{ptr} = (char *)malloc({total});")
            writer.line(f"{ptr}[0] = data[0];", mark=True)
        else:
            with writer.block(f"if (n < 1 || n > {cap})"):
                writer.line("return;")
            writer.line(f"int {total} = n * {element};")
            writer.line(f"char *{ptr} = (char *)malloc({total});")
            with writer.block(f"if ({ptr} == NULL)"):
                writer.line("return;")
            writer.line(f"{ptr}[0] = data[0];")
        writer.line(f"free({ptr});")
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _len_underflow(writer: CodeWriter, names: NamePool,
                   rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-191: ``n - 1`` underflows to a negative index when n == 0."""
    size = int(rng.integers(6, 24))
    sink = names.func()
    buf = names.var("buf")
    last = names.var("last")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char {buf}[{size}];")
        writer.line(f"memset({buf}, 0, {size});")
        if vulnerable:
            writer.line(f"int {last} = n - 1;", mark=True)
            writer.line(f"{buf}[{last}] = data[0];", mark=True)
        else:
            with writer.block(f"if (n > 0 && n <= {size})"):
                writer.line(f"int {last} = n - 1;")
                writer.line(f"{buf}[{last}] = data[0];")
        writer.line(f'printf("%c\\n", {buf}[0]);')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _infinite_loop(writer: CodeWriter, names: NamePool,
                   rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-835 (the CVE-2016-9776 shape): user-controlled loop step that
    can be zero never advances the countdown.

    Half the instances route the step through a struct-pointer field
    (`s->reg`, device-emulator style) so the learned pattern transfers
    to the Xen miniatures; the other half use a plain scalar.
    """
    sink = names.func()
    remaining = names.var("remaining")
    step = names.var("step")
    use_struct = bool(rng.random() < 0.5)
    struct_name = names.var("devstate")
    field_name = names.var("reg")
    if use_struct:
        with writer.block(f"struct {struct_name}"):
            writer.line(f"int {field_name};")
        writer.lines[-1] += ";"  # struct definition terminator
        writer.blank()
        with writer.block(f"void {sink}(struct {struct_name} *s, "
                          f"char *data, int n)"):
            writer.line(f"int {remaining} = {rng.integers(50, 200)};")
            writer.line(f"s->{field_name} = n;")
            noise_statements(writer, names, rng, int(rng.integers(1, 3)), live="n")
            if not vulnerable:
                with writer.block(f"if (s->{field_name} <= 0)"):
                    writer.line(f"s->{field_name} = 1;")
            chunk = names.var("chunk")
            with writer.block(f"while ({remaining} > 0)"):
                # The mcf_fec shape: per-iteration advance is
                # min(remaining, guest register).
                writer.line(f"int {step} = s->{field_name};")
                writer.line(f"int {chunk} = {remaining};")
                with writer.block(f"if ({chunk} > {step})"):
                    writer.line(f"{chunk} = {step};")
                writer.line(f"{remaining} = {remaining} - {chunk};",
                            mark=vulnerable)
            writer.line(f'printf("%d\\n", {remaining});')
        writer.blank()
        line_var = names.var("line")
        with writer.block("int main()"):
            writer.line(f"struct {struct_name} st;")
            writer.line(f"struct {struct_name} *s = &st;")
            writer.line(f"char {line_var}[64];")
            writer.line(f"fgets({line_var}, 64, 0);")
            writer.line(f"{sink}(s, {line_var}, atoi({line_var}));")
            writer.line("return 0;")
        return
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"int {remaining} = {rng.integers(50, 200)};")
        writer.line(f"int {step} = n;")
        noise_statements(writer, names, rng, int(rng.integers(1, 3)), live="n")
        if not vulnerable:
            with writer.block(f"if ({step} <= 0)"):
                writer.line(f"{step} = 1;")
        with writer.block(f"while ({remaining} > 0)"):
            writer.line(f"{remaining} = {remaining} - {step};",
                        mark=vulnerable)
        writer.line(f'printf("%d\\n", {remaining});')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _overflow_check_bypass(writer: CodeWriter, names: NamePool,
                           rng: np.random.Generator,
                           vulnerable: bool) -> None:
    """CWE-190 (the CVE-2016-9104 shape): an additive bounds check that
    wraps around for near-INT_MAX offsets, bypassing the guard."""
    size = int(rng.integers(16, 64))
    count = int(rng.integers(4, 12))
    sink = names.func()
    buf = names.var("value")
    copied = names.var("copied")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char {buf}[{size}];")
        writer.line(f"memset({buf}, 0, {size});")
        with writer.block("if (n < 0)"):
            writer.line("return;")
        if vulnerable:
            writer.line(f"if (n + {count} > {size}) {{", mark=True)
            writer.indent += 1
            writer.line("return;")
            writer.indent -= 1
            writer.line("}")
        else:
            with writer.block(f"if (n > {size} || "
                              f"{count} > {size} - n)"):
                writer.line("return;")
        writer.line(f"int {copied} = 0;")
        if vulnerable:
            with writer.block(f"while ({copied} < {count})"):
                writer.line(f"{buf}[n + {copied}] = data[0];",
                            mark=True)
                writer.line(f"{copied} = {copied} + 1;")
        else:
            with writer.block(f"while ({copied} < {count})"):
                writer.line(f"{buf}[n + {copied}] = data[0];")
                writer.line(f"{copied} = {copied} + 1;")
        writer.line(f'printf("%d\\n", {copied});')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _cursor_loop(writer: CodeWriter, names: NamePool,
                 rng: np.random.Generator, vulnerable: bool) -> None:
    """CWE-835 (the CVE-2016-4453 shape): an upward-counting cursor
    loop whose advance is attacker-controlled and may be zero."""
    stop = int(rng.integers(30, 120))
    sink = names.func()
    cursor = names.var("cursor")
    advance = names.var("advance")
    commands = names.var("commands")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"int {cursor} = 0;")
        writer.line(f"int {commands} = 0;")
        noise_statements(writer, names, rng, int(rng.integers(1, 3)), live="n")
        with writer.block(f"while ({cursor} < {stop})"):
            writer.line(f"int {advance} = n;")
            if not vulnerable:
                with writer.block(f"if ({advance} < 1)"):
                    writer.line(f"{advance} = 1;")
            writer.line(f"{cursor} = {cursor} + {advance};",
                        mark=vulnerable)
            writer.line(f"{commands} = {commands} + 1;")
        writer.line(f'printf("%d\\n", {commands});')
    writer.blank()
    _standard_main(writer, names, rng, sink)


def _switch_size_dispatch(writer: CodeWriter, names: NamePool,
                          rng: np.random.Generator,
                          vulnerable: bool) -> None:
    """CWE-787 through a switch: one case forgets to clamp."""
    size = int(rng.integers(8, 16))
    sink = names.func()
    buf = names.var("buf")
    with writer.block(f"void {sink}(char *data, int n)"):
        writer.line(f"char {buf}[{size}];")
        writer.line("int mode = n % 3;")
        with writer.block("switch (mode)"):
            writer.line("case 0:")
            writer.indent += 1
            writer.line(f"strncpy({buf}, data, {size - 1});")
            writer.line("break;")
            writer.indent -= 1
            writer.line("case 1:")
            writer.indent += 1
            if vulnerable:
                writer.line(f"strncpy({buf}, data, n);", mark=True)
            else:
                writer.line(f"strncpy({buf}, data, "
                            f"n < {size} ? n : {size - 1});")
            writer.line("break;")
            writer.indent -= 1
            writer.line("default:")
            writer.indent += 1
            writer.line(f"{buf}[0] = 0;")
            writer.line("break;")
            writer.indent -= 1
        writer.line(f'printf("%s\\n", {buf});')
    writer.blank()
    _standard_main(writer, names, rng, sink)


TEMPLATES: list[Template] = [
    Template("strcpy_stack_overflow", "CWE-121", "FC",
             _strcpy_stack_overflow),
    Template("guard_placement_strncpy", "CWE-120", "FC",
             _guard_placement_strncpy),
    Template("memcpy_length_check", "CWE-119", "FC",
             _memcpy_length_check),
    Template("format_string", "CWE-134", "FC", _format_string),
    Template("long_chain_strcpy", "CWE-121", "FC", _long_chain_strcpy),
    Template("index_oob_write", "CWE-787", "AU", _index_oob_write),
    Template("loop_off_by_one", "CWE-787", "AU", _loop_off_by_one),
    Template("stack_read_overflow", "CWE-125", "AU",
             _stack_read_overflow),
    Template("use_after_free", "CWE-416", "PU", _use_after_free),
    Template("null_deref", "CWE-476", "PU", _null_deref),
    Template("double_free", "CWE-415", "PU", _double_free),
    Template("dangling_return", "CWE-416", "PU", _dangling_return),
    Template("int_overflow_alloc", "CWE-190", "AE",
             _int_overflow_alloc),
    Template("len_underflow", "CWE-191", "AE", _len_underflow),
    Template("infinite_loop", "CWE-835", "AE", _infinite_loop),
    Template("overflow_check_bypass", "CWE-190", "AE",
             _overflow_check_bypass),
    Template("cursor_loop", "CWE-835", "AE", _cursor_loop),
    Template("switch_size_dispatch", "CWE-787", "AU",
             _switch_size_dispatch),
]


def template_names() -> list[str]:
    return [template.name for template in TEMPLATES]


def generate_case(template: Template, *, vulnerable: bool, seed: int,
                  origin: str = "sard",
                  case_name: str | None = None) -> TestCase:
    """Instantiate one template variant deterministically from a seed."""
    rng = np.random.default_rng(seed)
    writer = CodeWriter()
    names = NamePool(rng)
    template.build(writer, names, rng, vulnerable)
    suffix = "bad" if vulnerable else "good"
    name = case_name or f"{origin}/{template.name}_{seed}_{suffix}.c"
    return TestCase(
        name=name,
        source=writer.source(),
        vulnerable=vulnerable,
        vulnerable_lines=frozenset(writer.marked),
        cwe=template.cwe,
        category=template.category,
        origin=origin,
        meta={"template": template.name, "seed": seed},
    )
