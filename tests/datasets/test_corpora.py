"""Tests for the SARD / NVD / Xen corpus generators."""

import pytest

from repro.datasets.nvd import generate_nvd_corpus
from repro.datasets.sard import corpus_statistics, generate_sard_corpus
from repro.datasets.xen import (CVE_CASES, cve_2016_4453, cve_2016_9104,
                                cve_2016_9776, generate_xen_corpus)
from repro.lang.callgraph import analyze
from repro.lang.interp import run_program


class TestSardCorpus:
    def test_count_and_determinism(self):
        a = generate_sard_corpus(25, seed=7)
        b = generate_sard_corpus(25, seed=7)
        assert len(a) == 25
        assert [c.source for c in a] == [c.source for c in b]

    def test_vulnerable_fraction_roughly_respected(self):
        cases = generate_sard_corpus(200, seed=3,
                                     vulnerable_fraction=0.3)
        fraction = sum(c.vulnerable for c in cases) / len(cases)
        assert 0.2 < fraction < 0.4

    def test_category_restriction(self):
        cases = generate_sard_corpus(30, seed=1, categories=("PU",))
        assert all(c.category == "PU" for c in cases)

    def test_unknown_category_raises(self):
        with pytest.raises(ValueError):
            generate_sard_corpus(5, categories=("XX",))

    def test_all_parse(self):
        for case in generate_sard_corpus(40, seed=2):
            analyze(case.source)

    def test_unique_names(self):
        cases = generate_sard_corpus(50, seed=4)
        names = [c.name for c in cases]
        assert len(names) == len(set(names))

    def test_statistics_shape(self):
        stats = corpus_statistics(generate_sard_corpus(60, seed=5))
        for bucket in stats.values():
            assert bucket["total"] == \
                bucket["vulnerable"] + bucket["non_vulnerable"]


class TestNvdCorpus:
    def test_cases_parse_and_are_multi_function(self):
        for case in generate_nvd_corpus(12, seed=6):
            program = analyze(case.source)
            assert len(program.function_names) >= 4  # sinks+dispatch+main

    def test_vulnerable_case_marks_lines(self):
        cases = generate_nvd_corpus(20, seed=6)
        for case in cases:
            if case.vulnerable:
                assert case.vulnerable_lines
            else:
                assert not case.vulnerable_lines

    def test_origin_tag(self):
        assert all(c.origin == "nvd"
                   for c in generate_nvd_corpus(5, seed=1))

    def test_dispatcher_routes_to_vulnerable_sink(self):
        """At least one vulnerable NVD case actually misbehaves when
        driven through its dispatcher."""
        cases = [c for c in generate_nvd_corpus(30, seed=9)
                 if c.vulnerable]
        triggers = [b"0\n", b"9999\n", b"-5\n", b"1\n", b"2\n", b"3\n",
                    b"9998\n", b"9997\n"]
        hits = 0
        for case in cases[:10]:
            for stdin in triggers:
                result = run_program(case.source, stdin=stdin,
                                     max_steps=20_000)
                if result.crashed or result.hung:
                    hits += 1
                    break
        assert hits >= 5


class TestXenCorpus:
    def test_contains_all_three_cves(self):
        cases = generate_xen_corpus(10, seed=0)
        cves = {c.meta.get("cve") for c in cases if "cve" in c.meta}
        assert cves == set(CVE_CASES)

    def test_count_met(self):
        assert len(generate_xen_corpus(25, seed=0)) == 25

    def test_seeds_disjoint_from_sard(self):
        sard_names = {c.name for c in generate_sard_corpus(50, seed=0)}
        xen_names = {c.name for c in generate_xen_corpus(50, seed=0)}
        assert not sard_names & xen_names

    def test_all_parse(self):
        for case in generate_xen_corpus(15, seed=1):
            analyze(case.source)


class TestCVEMiniatures:
    def test_9776_hangs_on_zero_emrbr(self):
        case = cve_2016_9776(vulnerable=True)
        result = run_program(case.source, stdin=b"0\n", max_steps=5000)
        assert result.hung

    def test_9776_patched_terminates(self):
        case = cve_2016_9776(vulnerable=False)
        result = run_program(case.source, stdin=b"0\n", max_steps=5000)
        assert result.ok

    def test_4453_hangs_on_zero_advance(self):
        case = cve_2016_4453(vulnerable=True)
        result = run_program(case.source, stdin=b"0\n", max_steps=5000)
        assert result.hung

    def test_4453_patched_terminates(self):
        case = cve_2016_4453(vulnerable=False)
        assert run_program(case.source, stdin=b"0\n",
                           max_steps=5000).ok

    def test_9104_magic_offset_overflows(self):
        case = cve_2016_9104(vulnerable=True)
        result = run_program(case.source, stdin=b"2147483640\n",
                             max_steps=30_000)
        assert result.crashed

    def test_9104_mundane_offsets_survive(self):
        case = cve_2016_9104(vulnerable=True)
        for stdin in (b"0\n", b"10\n", b"100\n", b"-3\n",
                      b"2000000000\n"):
            result = run_program(case.source, stdin=stdin,
                                 max_steps=30_000)
            assert result.ok, stdin

    def test_9104_patched_survives_magic(self):
        case = cve_2016_9104(vulnerable=False)
        assert run_program(case.source, stdin=b"2147483640\n",
                           max_steps=30_000).ok

    def test_vulnerable_lines_point_at_flaw(self):
        case = cve_2016_9776(vulnerable=True)
        lines = case.source.split("\n")
        assert any("emrbr" in lines[n - 1]
                   for n in case.vulnerable_lines)

    def test_cases_carry_cve_ids(self):
        for cve, build in CVE_CASES.items():
            assert build().meta["cve"] == cve
