"""Tests for gadget normalization (Step III)."""

from repro.lang.callgraph import analyze
from repro.slicing.gadget import classic_gadget
from repro.slicing.normalize import (Normalizer, normalize_gadget,
                                     tokenize_gadget_text)
from repro.slicing.special_tokens import find_special_tokens


def normalized_tokens(text):
    return Normalizer().normalize_text(text)


class TestRenaming:
    def test_variables_renamed_in_order(self):
        tokens = normalized_tokens("alpha = beta + alpha;")
        assert tokens == ["var1", "=", "var2", "+", "var1", ";"]

    def test_user_function_renamed(self):
        tokens = normalized_tokens("process_input(x);")
        assert tokens[0] == "fun1"

    def test_library_function_kept(self):
        tokens = normalized_tokens("strncpy(dest, src, n);")
        assert tokens[0] == "strncpy"

    def test_keywords_kept(self):
        tokens = normalized_tokens("if (x) return;")
        assert "if" in tokens and "return" in tokens

    def test_numbers_kept(self):
        tokens = normalized_tokens("x = 42;")
        assert "42" in tokens

    def test_strings_collapsed(self):
        tokens = normalized_tokens('printf("secret value %d", x);')
        assert '"STR"' in tokens
        assert not any("secret" in t for t in tokens)

    def test_function_name_without_call_reuses_mapping(self):
        normalizer = Normalizer()
        first = normalizer.normalize_text("handler(1);")
        second = normalizer.normalize_text("cb = handler;")
        assert first[0] == "fun1"
        assert second[2] == "fun1"

    def test_mapping_consistent_across_lines(self):
        normalizer = Normalizer()
        a = normalizer.normalize_text("total = 0;")
        b = normalizer.normalize_text("total = total + 1;")
        assert a[0] == b[0] == "var1"

    def test_non_ascii_stripped(self):
        tokens = normalized_tokens("x = 1; // café 中文")
        assert all(t.isascii() for t in tokens)


class TestGadgetNormalization:
    SOURCE = """\
void copy_it(char *incoming, int amount) {
    char storage[8];
    strncpy(storage, incoming, amount);
}
"""

    def gadget(self):
        program = analyze(self.SOURCE)
        criterion = [c for c in find_special_tokens(program)
                     if c.token == "strncpy"][0]
        return classic_gadget(program, criterion)

    def test_normalize_gadget_produces_tokens(self):
        result = normalize_gadget(self.gadget())
        assert "strncpy" in result.tokens
        assert "storage" not in result.tokens

    def test_var_map_recorded(self):
        result = normalize_gadget(self.gadget())
        assert set(result.var_map) >= {"storage", "incoming", "amount"}

    def test_same_source_same_tokens(self):
        one = normalize_gadget(self.gadget())
        two = normalize_gadget(self.gadget())
        assert one.tokens == two.tokens

    def test_alpha_renamed_sources_collide(self):
        """Two gadgets differing only in identifier names normalize to
        the same token stream — the reason Step III exists."""
        other = self.SOURCE.replace("storage", "bucket") \
                           .replace("incoming", "payload") \
                           .replace("amount", "weight") \
                           .replace("copy_it", "move_it")
        program = analyze(other)
        criterion = [c for c in find_special_tokens(program)
                     if c.token == "strncpy"][0]
        from repro.slicing.gadget import classic_gadget as cg
        assert normalize_gadget(self.gadget()).tokens == \
            normalize_gadget(cg(program, criterion)).tokens

    def test_label_passthrough(self):
        gadget = self.gadget()
        gadget.label = 1
        assert normalize_gadget(gadget).label == 1


class TestRawTokenizer:
    def test_tokenize_gadget_text_keeps_names(self):
        tokens = tokenize_gadget_text("alpha = beta;")
        assert tokens == ["alpha", "=", "beta", ";"]
