"""Batching utilities for token-id sequences.

Flexible-length models (SEVulDet) batch sequences *bucketed by length*
so no padding or truncation is ever applied — the property the paper's
SPP design exists to preserve.  Fixed-length models (the BRNN baselines)
use :func:`pad_or_truncate`, reproducing Definition 8's
``C_f`` construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .dtype import get_default_dtype

__all__ = ["Sample", "pad_or_truncate", "fixed_length_batches",
           "bucketed_batches"]

PAD_ID = 0


@dataclass(frozen=True)
class Sample:
    """One training sample: token ids plus a binary label."""

    token_ids: tuple[int, ...]
    label: int

    def __len__(self) -> int:
        return len(self.token_ids)


def pad_or_truncate(token_ids: Sequence[int], length: int,
                    pad_id: int = PAD_ID) -> list[int]:
    """Definition 8: truncate past ``length`` or zero-pad up to it."""
    ids = list(token_ids[:length])
    if len(ids) < length:
        ids.extend([pad_id] * (length - len(ids)))
    return ids


def fixed_length_batches(
    samples: Sequence[Sample], length: int, batch_size: int,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (ids (B, length), labels (B,)) with shuffling."""
    order = np.arange(len(samples))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start : start + batch_size]
        ids = np.array([pad_or_truncate(samples[i].token_ids, length)
                        for i in chunk], dtype=np.int64)
        labels = np.array([samples[i].label for i in chunk],
                          dtype=get_default_dtype())
        yield ids, labels


def bucketed_batches(
    samples: Sequence[Sample], batch_size: int,
    rng: np.random.Generator | None = None,
    min_length: int = 1,
    with_indices: bool = False,
) -> Iterator[tuple[np.ndarray, ...]]:
    """Yield same-length batches without padding or truncation.

    Samples are grouped by exact length; batches are emitted per group.
    Sequences shorter than ``min_length`` are padded up to it (a
    convolution kernel still needs a minimum support), which for the
    default of 1 never triggers.

    With ``with_indices`` each batch is ``(ids, labels, indices)``
    where ``indices`` maps batch rows back to positions in ``samples``
    — the inference path uses it to scatter scores into corpus order.
    """
    buckets: dict[int, list[int]] = {}
    for index, sample in enumerate(samples):
        length = max(len(sample), min_length)
        buckets.setdefault(length, []).append(index)
    lengths = sorted(buckets)
    if rng is not None:
        rng.shuffle(lengths)
    for length in lengths:
        indices = buckets[length]
        if rng is not None:
            rng.shuffle(indices)
        for start in range(0, len(indices), batch_size):
            chunk = indices[start : start + batch_size]
            ids = np.array(
                [pad_or_truncate(samples[i].token_ids, length)
                 for i in chunk], dtype=np.int64)
            labels = np.array([samples[i].label for i in chunk],
                              dtype=get_default_dtype())
            if with_indices:
                yield ids, labels, np.asarray(chunk, dtype=np.int64)
            else:
                yield ids, labels
