"""SARD ``manifest.xml`` reading/writing.

The paper: "The manifest.xml file in SARD details the file path, line
number, type, and language of the vulnerability via XML format."  This
module round-trips our synthetic corpora through that format, so the
repository's data layer speaks the same interchange language as the
real dataset — corpora can be exported to disk as ``.c`` files plus a
manifest and re-imported losslessly.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Sequence

from .manifest import TestCase

__all__ = ["write_manifest", "read_manifest", "export_corpus",
           "import_corpus"]


def write_manifest(cases: Sequence[TestCase], path: str | Path) -> None:
    """Write a SARD-style manifest for the given cases."""
    root = ET.Element("container")
    for case in cases:
        testcase = ET.SubElement(root, "testcase", {
            "id": case.name,
            "type": "Source Code",
            "status": "bad" if case.vulnerable else "good",
            "language": "C",
            "cwe": case.cwe,
        })
        file_el = ET.SubElement(testcase, "file", {
            "path": case.name,
            "language": "C",
        })
        for line in sorted(case.vulnerable_lines):
            ET.SubElement(file_el, "flaw", {
                "line": str(line),
                "name": case.cwe,
            })
        meta = ET.SubElement(testcase, "meta", {
            "category": case.category,
            "origin": case.origin,
        })
        for key, value in sorted(case.meta.items()):
            ET.SubElement(meta, "entry",
                          {"key": str(key), "value": str(value)})
    tree = ET.ElementTree(root)
    ET.indent(tree)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    tree.write(path, encoding="unicode", xml_declaration=True)


def read_manifest(path: str | Path) -> list[dict]:
    """Parse a manifest into per-case dicts (no source text)."""
    root = ET.parse(path).getroot()
    entries: list[dict] = []
    for testcase in root.iter("testcase"):
        file_el = testcase.find("file")
        if file_el is None:
            continue
        flaws = [
            (int(flaw.get("line", "0")), flaw.get("name", ""))
            for flaw in file_el.iter("flaw")
        ]
        meta_el = testcase.find("meta")
        meta = {}
        category = origin = ""
        if meta_el is not None:
            category = meta_el.get("category", "")
            origin = meta_el.get("origin", "")
            for entry in meta_el.iter("entry"):
                meta[entry.get("key", "")] = entry.get("value", "")
        entries.append({
            "name": testcase.get("id", ""),
            "path": file_el.get("path", ""),
            "vulnerable": testcase.get("status") == "bad",
            "flaw_lines": frozenset(line for line, _ in flaws),
            "cwe": testcase.get("cwe")
            or (flaws[0][1] if flaws else ""),
            "category": category,
            "origin": origin,
            "meta": meta,
        })
    return entries


def export_corpus(cases: Sequence[TestCase],
                  directory: str | Path) -> Path:
    """Write every case as a .c file plus a manifest.xml; returns the
    manifest path."""
    directory = Path(directory)
    for case in cases:
        target = directory / case.name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(case.source)
    manifest_path = directory / "manifest.xml"
    write_manifest(cases, manifest_path)
    return manifest_path


def import_corpus(directory: str | Path) -> list[TestCase]:
    """Re-load a corpus exported with :func:`export_corpus`."""
    directory = Path(directory)
    entries = read_manifest(directory / "manifest.xml")
    cases: list[TestCase] = []
    for entry in entries:
        source_path = directory / entry["path"]
        cases.append(TestCase(
            name=entry["name"],
            source=source_path.read_text(),
            vulnerable=entry["vulnerable"],
            vulnerable_lines=entry["flaw_lines"],
            cwe=entry["cwe"],
            category=entry["category"],
            origin=entry["origin"],
            meta=dict(entry["meta"]),
        ))
    return cases
