"""Tests for CWE templates and program generation helpers."""

import numpy as np
import pytest

from repro.datasets.codegen import CodeWriter, NamePool
from repro.datasets.cwe_templates import (TEMPLATES, generate_case,
                                          template_names)
from repro.lang.callgraph import analyze
from repro.lang.interp import run_program

TRIGGERS = [b"0\n", b"9999\n", b"-5\n", b"A" * 60 + b"\n",
            b"%s%s%s\n", b"2000000000\n", b"1\n", b"7\n",
            b"22\n", b"100000\n", b"2147483646\n"]


def misbehaves(source: str) -> bool:
    for stdin in TRIGGERS:
        result = run_program(source, stdin=stdin, max_steps=20_000)
        if result.crashed or result.hung:
            return True
    return False


class TestCodeWriter:
    def test_line_numbers_tracked(self):
        writer = CodeWriter()
        assert writer.line("int a;") == 1
        assert writer.line("int b;") == 2

    def test_marking(self):
        writer = CodeWriter()
        writer.line("ok;")
        writer.line("bad;", mark=True)
        assert writer.marked == {2}

    def test_block_indents_and_closes(self):
        writer = CodeWriter()
        with writer.block("if (x)"):
            writer.line("y = 1;")
        assert writer.lines == ["if (x) {", "    y = 1;", "}"]

    def test_source_ends_with_newline(self):
        writer = CodeWriter()
        writer.line("x;")
        assert writer.source().endswith("\n")


class TestNamePool:
    def test_reserved_names_never_issued(self):
        pool = NamePool(np.random.default_rng(0))
        issued = {pool.var() for _ in range(200)}
        assert not issued & NamePool.RESERVED

    def test_no_collisions(self):
        pool = NamePool(np.random.default_rng(0))
        names = [pool.var() for _ in range(100)] \
            + [pool.func() for _ in range(100)]
        assert len(names) == len(set(names))

    def test_reserve_extends(self):
        pool = NamePool(np.random.default_rng(0))
        pool.reserve("special")
        assert all(pool.var() != "special" for _ in range(50))


class TestTemplates:
    @pytest.mark.parametrize("template", TEMPLATES,
                             ids=lambda t: t.name)
    def test_both_variants_parse_and_analyze(self, template):
        for vulnerable in (True, False):
            case = generate_case(template, vulnerable=vulnerable, seed=4)
            program = analyze(case.source)
            assert "main" in program.function_names

    @pytest.mark.parametrize("template", TEMPLATES,
                             ids=lambda t: t.name)
    def test_vulnerable_variant_misbehaves(self, template):
        case = generate_case(template, vulnerable=True, seed=4)
        assert misbehaves(case.source), template.name

    @pytest.mark.parametrize("template", TEMPLATES,
                             ids=lambda t: t.name)
    def test_patched_variant_clean(self, template):
        case = generate_case(template, vulnerable=False, seed=4)
        assert not misbehaves(case.source), template.name

    def test_vulnerable_lines_marked_only_when_vulnerable(self):
        template = TEMPLATES[0]
        bad = generate_case(template, vulnerable=True, seed=1)
        good = generate_case(template, vulnerable=False, seed=1)
        assert bad.vulnerable_lines
        assert bad.vulnerable
        assert not good.vulnerable

    def test_vulnerable_line_text_plausible(self):
        template = TEMPLATES[0]  # strcpy overflow
        case = generate_case(template, vulnerable=True, seed=2)
        lines = case.source.split("\n")
        for number in case.vulnerable_lines:
            assert "strcpy" in lines[number - 1]

    def test_deterministic_generation(self):
        template = TEMPLATES[3]
        a = generate_case(template, vulnerable=True, seed=9)
        b = generate_case(template, vulnerable=True, seed=9)
        assert a.source == b.source

    def test_different_seeds_differ(self):
        template = TEMPLATES[0]
        a = generate_case(template, vulnerable=True, seed=1)
        b = generate_case(template, vulnerable=True, seed=2)
        assert a.source != b.source

    def test_case_metadata(self):
        case = generate_case(TEMPLATES[0], vulnerable=True, seed=5,
                             origin="sard")
        assert case.origin == "sard"
        assert case.cwe.startswith("CWE-")
        assert case.category in ("FC", "AU", "PU", "AE")
        assert case.meta["template"] == TEMPLATES[0].name

    def test_all_four_categories_covered(self):
        assert {t.category for t in TEMPLATES} == \
            {"FC", "AU", "PU", "AE"}

    def test_template_names_unique(self):
        names = template_names()
        assert len(names) == len(set(names))

    def test_manifest_conversion(self):
        case = generate_case(TEMPLATES[0], vulnerable=True, seed=5)
        manifest = case.manifest()
        assert manifest.vulnerable_lines == case.vulnerable_lines
        good = generate_case(TEMPLATES[0], vulnerable=False, seed=5)
        assert good.manifest().vulnerable_lines == frozenset()
