"""Gadget extraction (paper Steps I-III's data path).

Turns :class:`~repro.datasets.manifest.TestCase` programs into labeled,
normalized gadgets: slice -> path-sensitive assembly (Algorithm 1) ->
label -> normalize.  The per-case work is pure, so it runs identically
inline, in a process pool, or from the content-addressed cache; the
:class:`CorpusExtractor` core is shared by the one-shot
:func:`extract_gadgets` wrapper and the streaming
:class:`~repro.core.engine.ExtractStage`.
"""

from __future__ import annotations

import logging
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..datasets.manifest import TestCase
from ..embedding.vocab import Vocabulary
from ..lang.callgraph import analyze, ast_call_edges
from ..lang.parser import ParseError
from ..nn import Sample
from ..slicing.gadget import CodeGadget, classic_gadget
from ..slicing.labeling import label_gadget
from ..slicing.normalize import normalize_gadget
from ..slicing.path_sensitive import path_sensitive_gadget
from ..slicing.special_tokens import (SlicingCriterion, TokenCategory,
                                      find_special_tokens)
from ..testing import faults
from .fingerprint import component_digests, function_fingerprints
from .resilience import (QUARANTINE_REASONS, CaseFailure, CaseTimeout,
                         coerce_quarantine, time_limit)
from .telemetry import Telemetry

__all__ = ["PIPELINE_VERSION", "LabeledGadget", "CaseResult",
           "CorpusExtractor", "GadgetDeduplicator", "extract_gadgets"]

logger = logging.getLogger(__name__)

#: Bump when extraction semantics change (slicing order, labeling,
#: gadget assembly, ...) — folded into extraction cache keys so stale
#: cached gadgets are never served across pipeline revisions.
PIPELINE_VERSION = 2

_CATEGORY_MAP = {
    "FC": TokenCategory.FUNCTION_CALL,
    "AU": TokenCategory.ARRAY_USAGE,
    "PU": TokenCategory.POINTER_USAGE,
    "AE": TokenCategory.ARITHMETIC_EXPR,
}


@dataclass
class LabeledGadget:
    """A normalized gadget with label and provenance."""

    tokens: tuple[str, ...]
    label: int
    category: str
    case_name: str
    criterion: SlicingCriterion
    kind: str  # 'classic' | 'path-sensitive'
    gadget: CodeGadget | None = None
    cwe: str = ""  # CWE id of the originating case ('' when unknown)

    def sample(self, vocab: Vocabulary) -> Sample:
        return Sample(tuple(vocab.encode(list(self.tokens))), self.label)


@dataclass(frozen=True)
class _ExtractConfig:
    """Per-run extraction knobs, picklable for worker processes."""

    kind: str
    wanted: frozenset[TokenCategory] | None
    use_control: bool
    keep_gadget: bool
    case_timeout: float | None = None

    def cache_token(self) -> str:
        """Stable string folded into extraction cache keys.

        ``case_timeout`` is deliberately excluded: the budget changes
        *whether* a case finishes, never what it produces.
        """
        categories = ("*" if self.wanted is None else
                      ",".join(sorted(c.value for c in self.wanted)))
        return (f"kind={self.kind};categories={categories};"
                f"control={int(self.use_control)}")


def _make_config(kind: str, categories: tuple[str, ...] | None, *,
                 use_control: bool, keep_gadget: bool,
                 case_timeout: float | None) -> _ExtractConfig:
    if kind not in ("path-sensitive", "classic"):
        raise ValueError(f"unknown gadget kind {kind!r}")
    wanted = None
    if categories is not None:
        wanted = frozenset(_CATEGORY_MAP[c] for c in categories)
    return _ExtractConfig(kind=kind, wanted=wanted,
                          use_control=use_control,
                          keep_gadget=keep_gadget,
                          case_timeout=case_timeout)


#: One per-case extraction result: (gadgets, telemetry snapshot,
#: failure record or None).  All three are picklable.
_CaseOutcome = tuple


def _criterion_gadget(program, criterion, manifest, case: TestCase,
                      config: _ExtractConfig,
                      local: Telemetry) -> LabeledGadget | None:
    """Slice/label/normalize one criterion (None if it slices empty)."""
    with local.stage("slice"):
        if config.kind == "path-sensitive":
            gadget = path_sensitive_gadget(program, criterion)
        else:
            gadget = classic_gadget(program, criterion,
                                    use_control=config.use_control)
    if not gadget.lines:
        return None
    gadget.label = label_gadget(gadget, manifest)
    with local.stage("normalize"):
        normalized = normalize_gadget(gadget)
    return LabeledGadget(
        tokens=tuple(normalized.tokens),
        label=gadget.label,
        category=criterion.category.value,
        case_name=case.name,
        criterion=criterion,
        kind=config.kind,
        gadget=gadget if config.keep_gadget else None,
        cwe=case.cwe)


def _extract_case(case: TestCase, config: _ExtractConfig,
                  fn_cache=None) -> _CaseOutcome:
    """Pure per-case body of :func:`extract_gadgets`.

    Analyzes, slices, labels, and normalizes one program, returning its
    un-deduplicated gadgets in deterministic criterion order plus a
    telemetry snapshot and an optional :class:`CaseFailure`.  Depends
    only on its arguments, so it runs identically inline or in a worker
    process.  The exception boundary is deliberately wide: a messy
    real-world case may blow the recursion stack, exhaust memory, or
    hang past its wall-clock budget, and none of those may take the
    run (or the worker's siblings) down with it.

    With a :class:`~repro.core.cache.FunctionGadgetCache` the case is
    analyzed *lazily* and criteria are served per function: a
    function whose call-graph component digest is unchanged since the
    last run reuses its cached gadget list without building a single
    PDG, so a warm re-scan of a large file pays only for its edited
    neighbourhood.  Criteria arrive globally sorted by
    ``(function, line, category, token)`` — function groups are
    contiguous, so concatenating per-function lists (cached or fresh)
    reproduces the eager gadget order byte for byte.
    """
    local = Telemetry()
    gadgets: list[LabeledGadget] = []
    failure: CaseFailure | None = None
    try:
        with time_limit(config.case_timeout):
            faults.fire("case", case.name)
            incremental = fn_cache is not None and not config.keep_gadget
            with local.stage("analyze"):
                program = analyze(case.source, path=case.name,
                                  lazy=incremental)
            manifest = case.manifest()
            criteria = find_special_tokens(program, config.wanted)
            if not incremental:
                for criterion in criteria:
                    labeled = _criterion_gadget(program, criterion,
                                                manifest, case, config,
                                                local)
                    if labeled is not None:
                        gadgets.append(labeled)
            else:
                digests = component_digests(
                    function_fingerprints(case.source),
                    ast_call_edges(program.unit))
                groups: list[tuple[str, list]] = []
                for criterion in criteria:
                    if groups and groups[-1][0] == criterion.function:
                        groups[-1][1].append(criterion)
                    else:
                        groups.append((criterion.function, [criterion]))
                token = config.cache_token()
                for fn_name, fn_criteria in groups:
                    key = fn_cache.key_for_function(
                        case, fn_name, token,
                        digests.get(fn_name, ""))
                    hit = fn_cache.get_function(key, case.name)
                    if hit is not None:
                        local.count("fn_cache_hits")
                        gadgets.extend(hit)
                        continue
                    local.count("fn_cache_misses")
                    fresh: list[LabeledGadget] = []
                    for criterion in fn_criteria:
                        labeled = _criterion_gadget(program, criterion,
                                                    manifest, case,
                                                    config, local)
                        if labeled is not None:
                            fresh.append(labeled)
                    fn_cache.put_function(key, fresh)
                    gadgets.extend(fresh)
    except ParseError as error:
        failure = CaseFailure(case.name, "parse-error", str(error))
    except CaseTimeout:
        failure = CaseFailure(
            case.name, "timeout",
            f"exceeded the {config.case_timeout:g}s case budget")
    except RecursionError:
        failure = CaseFailure(case.name, "recursion",
                              "recursion limit while parsing/slicing")
    except MemoryError:
        failure = CaseFailure(case.name, "memory",
                              "out of memory while extracting")
    except (UnicodeError, OverflowError) as error:
        failure = CaseFailure(case.name, "error", repr(error))
    if failure is not None:
        local.count("cases_skipped")
        return [], local.as_dict(), failure
    local.count("cases_parsed")
    local.count("gadgets_extracted", len(gadgets))
    return gadgets, local.as_dict(), None


def _extract_chunk(cases: list[TestCase], config: _ExtractConfig,
                   fn_cache=None) -> list[_CaseOutcome]:
    """Worker-side batch body: one pickle round-trip per chunk."""
    return [_extract_case(case, config, fn_cache) for case in cases]


def _pool_extract(cases: Sequence[TestCase], pending: list[int],
                  config: _ExtractConfig, workers: int,
                  telemetry: Telemetry,
                  pool: ProcessPoolExecutor | None = None,
                  fn_cache=None
                  ) -> tuple[dict[int, _CaseOutcome], list[int]]:
    """Fan ``pending`` out over a process pool, chunk by chunk.

    Returns the per-index outcomes plus the indices whose chunk was
    lost to pool breakage (a worker died mid-chunk); the caller decides
    whether to retry those inline.  Unlike ``pool.map``, per-chunk
    futures keep every already-completed chunk when the pool breaks.
    A caller-owned ``pool`` is reused across calls (the streaming
    engine amortizes worker startup over many chunks); when None, a
    temporary pool lives for just this call.
    """
    outcomes: dict[int, _CaseOutcome] = {}
    lost: list[int] = []
    chunksize = max(1, len(pending) // (workers * 4))
    chunks = [pending[i:i + chunksize]
              for i in range(0, len(pending), chunksize)]
    broke = False

    def note_break() -> None:
        nonlocal broke
        if not broke:
            broke = True
            telemetry.count("pool_breaks")
            logger.warning(
                "extract_gadgets: process pool broke (worker died); "
                "unfinished cases fall back to inline extraction")

    own_pool = pool is None
    if own_pool:
        pool = ProcessPoolExecutor(max_workers=workers)
    try:
        submitted: list[tuple] = []
        for chunk in chunks:
            try:
                future = pool.submit(_extract_chunk,
                                     [cases[i] for i in chunk], config,
                                     fn_cache)
            except (BrokenExecutor, RuntimeError):
                # a previous run broke this (persistent) pool
                note_break()
                lost.extend(chunk)
                continue
            submitted.append((future, chunk))
        for future, chunk in submitted:
            try:
                results = future.result()
            except BrokenExecutor:
                note_break()
                lost.extend(chunk)
            else:
                outcomes.update(zip(chunk, results))
    finally:
        if own_pool:
            pool.shutdown()
    return outcomes, lost


def _coerce_cache(cache):
    """Accept a GadgetCache, a directory path, or None."""
    if cache is None:
        return None
    if isinstance(cache, (str, Path)):
        from .cache import GadgetCache
        return GadgetCache(cache)
    return cache


def _coerce_fn_cache(fn_cache):
    """Accept a FunctionGadgetCache, a directory path, or None."""
    if fn_cache is None:
        return None
    if isinstance(fn_cache, (str, Path)):
        from .cache import FunctionGadgetCache
        return FunctionGadgetCache(fn_cache)
    return fn_cache


@dataclass
class CaseResult:
    """One case's extraction outcome: its gadgets or its failure."""

    case: TestCase
    gadgets: list[LabeledGadget]
    failure: CaseFailure | None = None


class CorpusExtractor:
    """Reusable per-case extraction core (cache, pool, quarantine).

    One :meth:`run` call reproduces the scheduling-independent
    semantics of :func:`extract_gadgets` over its cases: quarantine
    pre-skips, cache lookups, optional process-pool fan-out with
    inline retry of chunks lost to pool breakage, per-reason failure
    accounting, and cache stores — returning *per-case* results in
    corpus order (no deduplication; that is corpus-level policy).

    With ``keep_pool=True`` the process pool survives across
    :meth:`run` calls, so a streaming consumer extracting chunk after
    chunk pays worker startup once; a pool broken by a dying worker is
    discarded and lazily recreated for the next call.  Call
    :meth:`close` (or use as a context manager) to release it.
    """

    def __init__(self, config: _ExtractConfig, *, workers: int = 0,
                 cache=None, quarantine=None,
                 telemetry: Telemetry | None = None, retries: int = 1,
                 keep_pool: bool = False, fn_cache=None):
        self.config = config
        self.workers = workers
        self.cache = _coerce_cache(cache)
        # per-function incremental cache; persists raw gadget objects
        # no better than the case cache does, so keep_gadget runs
        # bypass it inside _extract_case
        self.fn_cache = _coerce_fn_cache(fn_cache)
        self.quarantine = coerce_quarantine(quarantine)
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.retries = retries
        self.keep_pool = keep_pool
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent pool, if one was created."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CorpusExtractor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _acquire_pool(self) -> ProcessPoolExecutor | None:
        if not self.keep_pool:
            return None  # _pool_extract manages a temporary pool
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    # -- extraction ----------------------------------------------------------

    def run(self, cases: Sequence[TestCase],
            failures: list[CaseFailure] | None = None
            ) -> list[CaseResult]:
        """Extract every case; results come back in corpus order."""
        telemetry = self.telemetry
        config = self.config
        quarantine = self.quarantine
        gadget_cache = self.cache

        telemetry.count("cases_total", len(cases))
        per_case: list[list[LabeledGadget] | None] = [None] * len(cases)
        case_failure: list[CaseFailure | None] = [None] * len(cases)
        keys: list[str | None] = [None] * len(cases)
        case_failures: list[CaseFailure] = []
        skipped_names: list[str] = []

        pending: list[int] = []
        for index, case in enumerate(cases):
            if quarantine is not None and case in quarantine:
                per_case[index] = []
                quarantine.note_skip(case)
                telemetry.count("cases_skipped")
                telemetry.count("quarantine_skips")
                telemetry.event("case-skip", case=case.name,
                                reason="quarantined")
                failure = CaseFailure(
                    case.name, "quarantined",
                    f"listed in {quarantine.path}", attempts=0,
                    quarantined=True)
                case_failure[index] = failure
                case_failures.append(failure)
                skipped_names.append(case.name)
            else:
                pending.append(index)

        if gadget_cache is not None:
            lookup, pending = pending, []
            with telemetry.stage("cache-lookup"):
                for index in lookup:
                    key = gadget_cache.key_for(cases[index],
                                               config.cache_token())
                    keys[index] = key
                    hit = gadget_cache.get(key)
                    if hit is None:
                        telemetry.count("cache_misses")
                        pending.append(index)
                    else:
                        telemetry.count("cache_hits")
                        per_case[index] = hit

        outcomes: dict[int, _CaseOutcome] = {}
        if self.workers > 1 and len(pending) > 1:
            with telemetry.stage("extract"):
                pool = self._acquire_pool()
                outcomes, lost = _pool_extract(cases, pending, config,
                                               self.workers, telemetry,
                                               pool=pool,
                                               fn_cache=self.fn_cache)
                if lost and pool is not None:
                    # a broken persistent pool poisons later runs too
                    pool.shutdown(wait=False)
                    self._pool = None
                for index in lost:
                    case = cases[index]
                    if self.retries > 0:
                        telemetry.count("case_retries")
                        telemetry.event("inline-fallback",
                                        case=case.name)
                        outcome = _extract_case(case, config,
                                                self.fn_cache)
                        if outcome[2] is not None:
                            outcome[2].attempts = 2
                        outcomes[index] = outcome
                    else:
                        outcomes[index] = (
                            [], {"counters": {"cases_skipped": 1}},
                            CaseFailure(case.name, "worker-crash",
                                        "process pool broke while "
                                        "extracting this chunk"))
        elif pending:
            with telemetry.stage("extract"):
                for index in pending:
                    outcomes[index] = _extract_case(cases[index], config,
                                                    self.fn_cache)

        for index in sorted(outcomes):
            gadgets, stats, failure = outcomes[index]
            per_case[index] = gadgets
            telemetry.merge_dict(stats)
            case = cases[index]
            if failure is not None:
                skipped_names.append(case.name)
                telemetry.count(
                    "skip_" + failure.reason.replace("-", "_"))
                if failure.reason == "timeout":
                    telemetry.count("case_timeouts")
                if (quarantine is not None
                        and failure.reason in QUARANTINE_REASONS):
                    if quarantine.add(case, failure.reason,
                                      failure.detail):
                        telemetry.count("quarantined_cases")
                    failure.quarantined = True
                telemetry.event("case-skip", case=case.name,
                                reason=failure.reason,
                                detail=failure.detail)
                logger.warning("extract_gadgets: %s skipped (%s%s)%s",
                               case.name, failure.reason,
                               f": {failure.detail}" if failure.detail
                               else "",
                               "; quarantined" if failure.quarantined
                               else "")
                case_failure[index] = failure
                case_failures.append(failure)
                continue
            if quarantine is not None and quarantine.listed(case):
                # a formerly-quarantined case made it through a retry:
                # retire the entry so future runs stop re-litigating it
                quarantine.discharge(case)
                telemetry.count("quarantine_discharges")
                telemetry.event("quarantine-discharge", case=case.name)
            if gadget_cache is not None:
                # failed cases are deliberately not cached: parse
                # failures are cheap to re-fail and poison cases belong
                # to the quarantine, so skip diagnostics stay visible
                # on reruns
                with telemetry.stage("cache-store"):
                    gadget_cache.put(keys[index], gadgets)

        if failures is not None:
            failures.extend(case_failures)
        if skipped_names:
            shown = ", ".join(skipped_names[:5])
            if len(skipped_names) > 5:
                shown += ", ..."
            logger.warning("extract_gadgets: skipped %d/%d case(s): %s",
                           len(skipped_names), len(cases), shown)
        return [CaseResult(case, gadgets or [], case_failure[index])
                for index, (case, gadgets)
                in enumerate(zip(cases, per_case))]


class GadgetDeduplicator:
    """Corpus-order (tokens, label) exact-duplicate filter.

    Stateful across calls so a streaming consumer filtering chunk
    after chunk drops exactly the duplicates a one-shot pass over the
    concatenated corpus would — the property the engine's equivalence
    tests pin.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.hits = 0
        self._seen: set[tuple[tuple[str, ...], int]] = set()

    def filter(self, gadgets: Sequence[LabeledGadget]
               ) -> list[LabeledGadget]:
        if not self.enabled:
            return list(gadgets)
        kept: list[LabeledGadget] = []
        for labeled in gadgets:
            key = (labeled.tokens, labeled.label)
            if key in self._seen:
                self.hits += 1
                continue
            self._seen.add(key)
            kept.append(labeled)
        return kept


def extract_gadgets(
    cases: Sequence[TestCase],
    kind: str = "path-sensitive",
    categories: tuple[str, ...] | None = None,
    *,
    use_control: bool = True,
    deduplicate: bool = True,
    keep_gadget: bool = False,
    workers: int = 0,
    cache=None,
    telemetry: Telemetry | None = None,
    case_timeout: float | None = None,
    retries: int = 1,
    quarantine=None,
    failures: list[CaseFailure] | None = None,
) -> list[LabeledGadget]:
    """Steps I-III: slice, assemble, label, and normalize every case.

    Cases are processed independently (optionally fanned out over a
    process pool and/or served from a content-addressed cache) and the
    per-case gadget lists are concatenated in corpus order before
    deduplication, so the output is byte-identical no matter how the
    work was scheduled — including runs where workers crashed and
    their cases were re-extracted inline.

    A pathological case can only ever cost its own result: hangs are
    cut off by ``case_timeout``, crashes break at most one pool chunk
    (whose cases fall back to inline extraction), deep nesting and
    memory exhaustion are caught at the per-case boundary, and cases
    listed in the ``quarantine`` are skipped before any work happens.

    Args:
        cases: corpus programs.
        kind: 'path-sensitive' (Algorithm 1) or 'classic' (the CG
            baseline the paper compares against in Table II).
        categories: restrict criteria to these families.
        use_control: follow control-dependence edges while slicing
            (False reproduces VulDeePecker's data-only gadgets; only
            meaningful for kind='classic').
        deduplicate: drop exact (tokens, label) duplicates, as the
            paper does after merging corpora.
        keep_gadget: retain the raw gadget object (needed by the
            attention visualization, costs memory otherwise).
        workers: fan the per-case work out over this many processes
            (0 or 1 keeps the serial in-process path).
        cache: a :class:`~repro.core.cache.GadgetCache`, a cache
            directory path, or None.  Hits skip the frontend entirely;
            ignored when ``keep_gadget`` is set because the on-disk
            record format does not persist raw gadget objects.
        telemetry: optional accumulator for stage timings and counters
            (cases parsed/skipped, gadgets, dedup and cache hits, and
            every recovery event).
        case_timeout: per-case wall-clock budget in seconds; a case
            that exceeds it is recorded as a 'timeout' failure (and
            quarantined, when a quarantine is attached) instead of
            hanging the run.  None disables the budget.
        retries: inline re-extraction attempts for cases lost to a
            broken process pool (0 records them as 'worker-crash'
            failures instead).
        quarantine: a :class:`~repro.core.resilience.Quarantine`, a
            JSONL path, or None.  Known-poison cases are skipped
            cheaply; new timeouts/crashes are appended for next time.
        failures: optional list that receives one structured
            :class:`CaseFailure` per case that produced no gadgets.
    """
    config = _make_config(kind, categories, use_control=use_control,
                          keep_gadget=keep_gadget,
                          case_timeout=case_timeout)
    if cache is not None and keep_gadget:
        logger.warning("extract_gadgets: cache disabled because "
                       "keep_gadget=True retains raw gadget objects "
                       "the cache format does not persist")
    extractor = CorpusExtractor(
        config, workers=workers,
        cache=None if keep_gadget else cache,
        quarantine=quarantine, telemetry=telemetry,
        retries=retries)
    telemetry = extractor.telemetry
    case_results = extractor.run(cases, failures=failures)

    deduper = GadgetDeduplicator(enabled=deduplicate)
    results: list[LabeledGadget] = []
    for case_result in case_results:
        results.extend(deduper.filter(case_result.gadgets))
    telemetry.count("dedup_hits", deduper.hits)
    telemetry.count("gadgets_emitted", len(results))
    return results
