"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

VULN_SOURCE = """\
void f(char *data) {
    char buf[4];
    strcpy(buf, data);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line);
    return 0;
}
"""

HANG_SOURCE = """\
int main() {
    char line[16];
    fgets(line, 16, 0);
    int n = atoi(line);
    int left = 50;
    while (left > 0) {
        left = left - n;
    }
    return 0;
}
"""


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--cases", "10", "--out", "m.npz"])
        assert args.command == "train"
        assert args.cases == 10

    def test_scale_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "train",
                                       "--out", "m.npz"])


class TestGadgetsCommand:
    def test_prints_gadgets(self, tmp_path, capsys):
        target = tmp_path / "t.c"
        target.write_text(VULN_SOURCE)
        assert main(["gadgets", str(target)]) == 0
        out = capsys.readouterr().out
        assert "strcpy" in out
        assert "path-sensitive" in out

    def test_unparseable_file(self, tmp_path, capsys):
        target = tmp_path / "bad.c"
        target.write_text("not a C file {{{")
        assert main(["gadgets", str(target)]) == 1


class TestFuzzCommand:
    def test_finds_hang(self, tmp_path, capsys):
        target = tmp_path / "hang.c"
        target.write_text(HANG_SOURCE)
        code = main(["fuzz", str(target), "--execs", "300",
                     "--max-steps", "3000"])
        out = capsys.readouterr().out
        assert code == 1
        assert "HANG" in out

    def test_clean_target_exit_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.c"
        target.write_text(
            "int main() { printf(\"ok\"); return 0; }")
        assert main(["fuzz", str(target), "--execs", "100"]) == 0


class TestTrainScanRoundtrip:
    def test_train_then_scan(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        code = main(["train", "--cases", "60", "--nvd-cases", "0",
                     "--seed", "3", "--out", str(model)])
        assert code == 0
        assert model.exists()

        target = tmp_path / "vuln.c"
        target.write_text(VULN_SOURCE)
        clean = tmp_path / "clean.c"
        clean.write_text("int main() { int a = 1; return a; }")
        capsys.readouterr()
        exit_code = main(["scan", str(target), str(clean),
                          "--model", str(model),
                          "--threshold", "0.5"])
        out = capsys.readouterr().out
        assert f"{clean}: clean" in out
        # the vulnerable file should be flagged by the trained model
        assert exit_code == 1
        assert "suspicious" in out


class TestExtractCommand:
    def test_extract_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "gadgets.jsonl"
        code = main(["extract", "--cases", "8", "--seed", "5",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        from repro.core.store import load_gadgets
        gadgets = load_gadgets(out)
        assert gadgets
        assert f"extracted {len(gadgets)} gadgets" in \
            capsys.readouterr().out

    def test_extract_stats_and_cache(self, tmp_path, capsys):
        out = tmp_path / "gadgets.jsonl"
        cache = tmp_path / "cache"
        for _ in range(2):
            assert main(["extract", "--cases", "6", "--seed", "5",
                         "--workers", "2", "--cache-dir", str(cache),
                         "--out", str(out), "--stats"]) == 0
        stats = capsys.readouterr().out
        assert "telemetry:" in stats
        assert "cache_hits" in stats

    def test_extract_parallel_matches_serial_output(self, tmp_path):
        from repro.core.store import load_gadgets
        serial_out = tmp_path / "serial.jsonl"
        parallel_out = tmp_path / "parallel.jsonl"
        main(["extract", "--cases", "6", "--seed", "5",
              "--out", str(serial_out)])
        main(["extract", "--cases", "6", "--seed", "5",
              "--workers", "2", "--out", str(parallel_out)])
        assert serial_out.read_text() == parallel_out.read_text()
        assert load_gadgets(serial_out) == load_gadgets(parallel_out)


class TestExportCorpus:
    def test_export_and_reimport(self, tmp_path, capsys):
        code = main(["export-corpus", "--cases", "8", "--seed", "2",
                     "--dir", str(tmp_path / "corpus")])
        assert code == 0
        from repro.datasets.manifest_xml import import_corpus
        cases = import_corpus(tmp_path / "corpus")
        assert len(cases) == 8

    def test_export_xen_kind(self, tmp_path):
        code = main(["export-corpus", "--cases", "10", "--kind", "xen",
                     "--dir", str(tmp_path / "xen")])
        assert code == 0
        from repro.datasets.manifest_xml import import_corpus
        cases = import_corpus(tmp_path / "xen")
        assert any("cve" in case.meta for case in cases)


class TestEndToEndSmoke:
    """extract -> train -> scan on a tiny synthetic corpus, sharing
    one gadget cache across subcommands (the engine's RunContext)."""

    def test_full_pipeline_smoke(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        gadgets_out = tmp_path / "gadgets.jsonl"
        model = tmp_path / "model.npz"

        assert main(["extract", "--cases", "20", "--seed", "3",
                     "--cache-dir", cache,
                     "--out", str(gadgets_out), "--stats"]) == 0
        extract_stats = capsys.readouterr().out
        assert gadgets_out.exists()
        assert "cache_misses" in extract_stats

        assert main(["train", "--cases", "20", "--nvd-cases", "0",
                     "--seed", "3", "--cache-dir", cache,
                     "--out", str(model), "--stats"]) == 0
        train_stats = capsys.readouterr().out
        assert model.exists()
        # training re-extracts the same corpus through the shared
        # cache: every case is a hit
        assert "cache_hits" in train_stats

        target = tmp_path / "vuln.c"
        target.write_text(VULN_SOURCE)
        clean = tmp_path / "clean.c"
        clean.write_text("int main() { int a = 1; return a; }")
        jsonl = tmp_path / "verdicts.jsonl"
        code = main(["scan", str(target), str(clean),
                     "--model", str(model), "--threshold", "0.5",
                     "--jsonl", str(jsonl), "--stats"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # flagged or clean; must not error
        assert f"{clean}: clean" in out
        assert jsonl.exists()
        import json as json_mod
        records = [json_mod.loads(line)
                   for line in jsonl.read_text().splitlines()]
        assert {r["name"] for r in records} == \
            {str(target), str(clean)}


BETA_SOURCE = """\
int helper(int n) {
    char buf[8];
    buf[0] = n;
    return buf[0] + 1;
}
int compute(int n) {
    char out[8];
    out[0] = helper(n);
    return out[0];
}
"""


class TestDiffAndWatchCli:
    """`scan --diff` / `scan --watch` / streamed `--jsonl` surface."""

    @pytest.fixture(scope="class")
    def model(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("model") / "model.npz"
        assert main(["train", "--cases", "60", "--nvd-cases", "0",
                     "--seed", "3", "--out", str(path)]) == 0
        return path

    @staticmethod
    def _tree(root, files):
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return root

    def test_diff_two_trees(self, model, tmp_path, capsys):
        base = self._tree(tmp_path / "base", {
            "pkg/clean.c": BETA_SOURCE,
            "pkg/stable.c": "int main() { int a = 1; return a; }\n"})
        target = self._tree(tmp_path / "target", {
            "pkg/clean.c": VULN_SOURCE,  # turns vulnerable
            "pkg/stable.c": "int main() { int a = 1; return a; }\n"})
        jsonl = tmp_path / "deltas.jsonl"
        code = main(["scan", str(target), "--model", str(model),
                     "--threshold", "0.5", "--diff", str(base),
                     "--jsonl", str(jsonl)])
        out = capsys.readouterr().out
        assert code == 1  # a new finding gates the diff
        assert "pkg/clean.c" in out
        assert "1 changed file(s)" in out
        import json as json_mod
        records = [json_mod.loads(line)
                   for line in jsonl.read_text().splitlines()]
        assert [(r["event"], r["name"]) for r in records] == \
            [("added", "pkg/clean.c")]

    def test_diff_clean_edit_exits_zero(self, model, tmp_path,
                                        capsys):
        base = self._tree(tmp_path / "base",
                          {"pkg/clean.c": BETA_SOURCE})
        # an identifier rename: normalization maps it to the same
        # canonical tokens, so the verdict stays clean while the
        # fingerprints (and thus the frontier) move
        target = self._tree(tmp_path / "target", {
            "pkg/clean.c": BETA_SOURCE.replace("buf", "acc")})
        code = main(["scan", str(target), "--model", str(model),
                     "--threshold", "0.5", "--diff", str(base)])
        out = capsys.readouterr().out
        assert code == 0
        # the frontier names the edited function and its caller
        assert "re-slicing compute, helper" in out

    def test_diff_names_file(self, model, tmp_path, capsys):
        target = self._tree(tmp_path / "target", {
            "pkg/vuln.c": VULN_SOURCE,
            "pkg/clean.c": BETA_SOURCE})
        names = tmp_path / "changed.txt"
        names.write_text("pkg/vuln.c\npkg/gone.c\nREADME.md\n")
        code = main(["scan", str(target), "--model", str(model),
                     "--threshold", "0.5", "--diff", str(names)])
        out = capsys.readouterr().out
        assert code == 1
        assert "added: pkg/vuln.c" in out

    def test_watch_bounded_polls(self, model, tmp_path, capsys):
        root = self._tree(tmp_path / "tree",
                          {"pkg/vuln.c": VULN_SOURCE})
        jsonl = tmp_path / "deltas.jsonl"
        code = main(["scan", str(root), "--model", str(model),
                     "--threshold", "0.5", "--watch",
                     "--max-polls", "2", "--interval", "0",
                     "--jsonl", str(jsonl)])
        out = capsys.readouterr().out
        assert code == 0  # watch mode never gates
        import json as json_mod
        records = [json_mod.loads(line)
                   for line in jsonl.read_text().splitlines()]
        assert [(r["event"], r["name"]) for r in records] == \
            [("added", "pkg/vuln.c")]
        assert '"event": "added"' in out

    def test_diff_and_watch_are_exclusive(self, tmp_path, capsys):
        code = main(["scan", str(tmp_path), "--model", "m.npz",
                     "--diff", str(tmp_path), "--watch"])
        assert code == 2

    def test_jsonl_bytes_stable_across_workers(self, model, tmp_path,
                                               capsys):
        tree = self._tree(tmp_path / "tree", {
            "a.c": VULN_SOURCE, "b.c": BETA_SOURCE,
            "c.c": "int main() { int a = 1; return a; }\n",
            "d.c": VULN_SOURCE.replace("sink", "drain")})
        outputs = []
        for workers in ("1", "4", "4"):
            jsonl = tmp_path / f"run{len(outputs)}.jsonl"
            main(["scan", str(tree), "--model", str(model),
                  "--threshold", "0.5", "--workers", workers,
                  "--jsonl", str(jsonl)])
            capsys.readouterr()
            outputs.append(jsonl.read_bytes())
        # input-ordered release: byte-identical at any worker count
        assert outputs[0] == outputs[1] == outputs[2]
