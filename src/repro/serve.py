"""Convenience alias: ``from repro.serve import ScanService``.

The implementation lives in :mod:`repro.core.serve`; this module gives
service embedders a stable top-level import path mirroring
``repro.cli``.
"""

from .core.serve import CaseVerdict, ResultCache, ScanService

__all__ = ["CaseVerdict", "ResultCache", "ScanService"]
