"""Function fingerprints, invalidation frontiers, component digests.

The contract that makes incremental scanning sound: a fingerprint
changes exactly when the function's token stream (including absolute
line numbers — findings carry them) changes, and a component digest
changes exactly when *any* member of the weakly-connected call
component changes.  Cached slices keyed by component digest are then
byte-identical to cold re-slicing, because interprocedural slices
never read outside their component.
"""

import pytest

from repro.core.fingerprint import (DEFAULT_FRONTIER_DEPTH,
                                    changed_functions,
                                    component_digests,
                                    function_fingerprints,
                                    invalidation_frontier,
                                    lexer_function_spans,
                                    weak_components)
from repro.lang.callgraph import ast_call_edges
from repro.lang.parser import parse

SOURCE = """\
int helper(int n) {
    int buf = n + 1;
    return buf;
}

int caller(int n) {
    int x = helper(n);
    return x * 2;
}

int lonely(void) {
    return 7;
}
"""


class TestSpans:
    def test_spans_match_parser_lines(self):
        spans = {s.name: s for s in lexer_function_spans(SOURCE)}
        unit = parse(SOURCE)
        assert set(spans) == {f.name for f in unit.functions}
        for fn in unit.functions:
            assert spans[fn.name].start_line == fn.line
            assert spans[fn.name].end_line == fn.body.end_line

    def test_prototypes_excluded(self):
        source = "int helper(int n);\nint used(void) { return 1; }\n"
        names = [s.name for s in lexer_function_spans(source)]
        assert names == ["used"]

    def test_covers_line(self):
        spans = {s.name: s for s in lexer_function_spans(SOURCE)}
        assert spans["helper"].covers_line(2)
        assert not spans["helper"].covers_line(7)


class TestFingerprints:
    def test_stable_across_identical_sources(self):
        assert function_fingerprints(SOURCE) == \
            function_fingerprints(SOURCE)

    def test_comment_edit_on_same_line_changes_nothing(self):
        edited = SOURCE.replace("return buf;",
                                "return buf; /* reviewed */")
        base = function_fingerprints(SOURCE)
        assert function_fingerprints(edited) == base
        assert changed_functions(SOURCE, edited) == set()

    def test_body_edit_changes_only_that_function(self):
        edited = SOURCE.replace("int buf = n + 1;",
                                "int buf = n + 2;")
        assert changed_functions(SOURCE, edited) == {"helper"}

    def test_line_shift_invalidates_following_functions(self):
        # a new line above helper shifts every later function's
        # absolute lines; findings carry absolute lines, so all
        # shifted functions must re-slice
        edited = "\n" + SOURCE
        assert changed_functions(SOURCE, edited) == \
            {"helper", "caller", "lonely"}

    def test_added_and_removed_functions_are_changed(self):
        extra = SOURCE + "\nint fresh(void) { return 0; }\n"
        assert "fresh" in changed_functions(SOURCE, extra)
        assert "fresh" in changed_functions(extra, SOURCE)


class TestFrontier:
    def test_frontier_includes_transitive_callers(self):
        edges = ast_call_edges(parse(SOURCE))
        frontier = invalidation_frontier(edges, {"helper"})
        assert frontier == {"helper", "caller"}

    def test_frontier_depth_bound(self):
        # chain a -> b -> c -> d (a calls b calls c calls d); editing
        # d at depth 1 reaches only its direct caller
        chain = """\
int d(void) { return 1; }
int c(void) { return d(); }
int b(void) { return c(); }
int a(void) { return b(); }
"""
        edges = ast_call_edges(parse(chain))
        assert invalidation_frontier(edges, {"d"}, depth=1) == \
            {"d", "c"}
        assert invalidation_frontier(edges, {"d"}, depth=2) == \
            {"d", "c", "b"}
        assert invalidation_frontier(
            edges, {"d"}, depth=DEFAULT_FRONTIER_DEPTH) == \
            {"d", "c", "b", "a"}

    def test_empty_change_set(self):
        edges = ast_call_edges(parse(SOURCE))
        assert invalidation_frontier(edges, set()) == set()


class TestComponents:
    def test_call_edge_merges_components(self):
        comps = weak_components(ast_call_edges(parse(SOURCE)))
        assert comps["helper"] == comps["caller"]
        assert comps["lonely"] != comps["helper"]

    def test_component_digest_changes_with_any_member(self):
        edited = SOURCE.replace("int buf = n + 1;",
                                "int buf = n + 2;")
        edges = ast_call_edges(parse(SOURCE))
        base = component_digests(function_fingerprints(SOURCE), edges)
        after = component_digests(function_fingerprints(edited),
                                  edges)
        # helper changed -> its whole component (helper+caller)
        # re-keys; lonely's digest is untouched
        assert after["helper"] != base["helper"]
        assert after["caller"] != base["caller"]
        assert after["helper"] == after["caller"]
        assert after["lonely"] == base["lonely"]

    def test_members_share_one_digest(self):
        edges = ast_call_edges(parse(SOURCE))
        digests = component_digests(function_fingerprints(SOURCE),
                                    edges)
        assert digests["helper"] == digests["caller"]
