"""Gradient and shape tests for convolution and pooling ops."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.ops import (adaptive_avg_pool1d, adaptive_max_pool1d,
                          avg_pool1d, conv1d, max_pool1d)

from .conftest import assert_grad_close, numerical_gradient


class TestConv1d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 10)))
        w = Tensor(rng.normal(size=(5, 3, 3)))
        assert conv1d(x, w).shape == (2, 5, 8)

    def test_padding_preserves_length(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 7)))
        w = Tensor(rng.normal(size=(4, 2, 3)))
        assert conv1d(x, w, padding=1).shape == (1, 4, 7)

    def test_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 9)))
        w = Tensor(rng.normal(size=(4, 2, 3)))
        assert conv1d(x, w, stride=2).shape == (1, 4, 4)

    def test_known_values(self):
        # Single channel, identity-ish kernel.
        x = Tensor(np.array([[[1.0, 2.0, 3.0, 4.0]]]))
        w = Tensor(np.array([[[1.0, 0.0]]]))
        out = conv1d(x, w)
        assert np.allclose(out.data, [[[1.0, 2.0, 3.0]]])

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (conv1d(x, w, b, padding=1) ** 2).sum().backward()

        def loss():
            return float((conv1d(Tensor(x.data), Tensor(w.data),
                                 Tensor(b.data), padding=1).data ** 2
                          ).sum())

        assert_grad_close(x.grad, numerical_gradient(loss, x.data), 1e-5)
        assert_grad_close(w.grad, numerical_gradient(loss, w.data), 1e-5)
        assert_grad_close(b.grad, numerical_gradient(loss, b.data), 1e-5)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 8)))
        w = Tensor(rng.normal(size=(4, 2, 3)))
        with pytest.raises(ValueError):
            conv1d(x, w)

    def test_too_short_input_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 2)))
        w = Tensor(rng.normal(size=(4, 2, 5)))
        with pytest.raises(ValueError):
            conv1d(x, w)


class TestFixedPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]))
        out = max_pool1d(x, kernel=2)
        assert np.allclose(out.data, [[[3.0, 5.0]]])

    def test_avg_pool_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 6.0]]]))
        out = avg_pool1d(x, kernel=2)
        assert np.allclose(out.data, [[[2.0, 4.0]]])

    def test_max_pool_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        (max_pool1d(x, 2) ** 2).sum().backward()
        numeric = numerical_gradient(
            lambda: float((max_pool1d(Tensor(x.data), 2).data ** 2
                           ).sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)

    def test_avg_pool_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        (avg_pool1d(x, 2) ** 2).sum().backward()
        numeric = numerical_gradient(
            lambda: float((avg_pool1d(Tensor(x.data), 2).data ** 2
                           ).sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)

    def test_window_larger_than_input_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3)))
        with pytest.raises(ValueError):
            max_pool1d(x, kernel=5)


class TestAdaptivePooling:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 7, 16, 100])
    @pytest.mark.parametrize("bins", [1, 2, 4])
    def test_output_always_bins_wide(self, rng, length, bins):
        x = Tensor(rng.normal(size=(2, 3, length)))
        assert adaptive_max_pool1d(x, bins).shape == (2, 3, bins)
        assert adaptive_avg_pool1d(x, bins).shape == (2, 3, bins)

    def test_bins_partition_input(self):
        x = Tensor(np.arange(8.0).reshape(1, 1, 8))
        out = adaptive_max_pool1d(x, 4)
        assert np.allclose(out.data, [[[1.0, 3.0, 5.0, 7.0]]])

    def test_single_bin_is_global_max(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 17)))
        out = adaptive_max_pool1d(x, 1)
        assert np.allclose(out.data[:, :, 0], x.data.max(axis=2))

    def test_avg_single_bin_is_global_mean(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 9)))
        out = adaptive_avg_pool1d(x, 1)
        assert np.allclose(out.data[:, :, 0], x.data.mean(axis=2))

    def test_adaptive_max_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 7)), requires_grad=True)
        (adaptive_max_pool1d(x, 4) ** 2).sum().backward()
        numeric = numerical_gradient(
            lambda: float((adaptive_max_pool1d(Tensor(x.data), 4).data
                           ** 2).sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)

    def test_adaptive_avg_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 7)), requires_grad=True)
        (adaptive_avg_pool1d(x, 4) ** 2).sum().backward()
        numeric = numerical_gradient(
            lambda: float((adaptive_avg_pool1d(Tensor(x.data), 4).data
                           ** 2).sum()), x.data)
        assert_grad_close(x.grad, numeric, 1e-5)

    def test_shorter_than_bins_input(self, rng):
        # length 2 with 4 bins: bins reuse elements, never crash
        x = Tensor(rng.normal(size=(1, 2, 2)), requires_grad=True)
        out = adaptive_max_pool1d(x, 4)
        assert out.shape == (1, 2, 4)
        out.sum().backward()
