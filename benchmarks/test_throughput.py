"""Pipeline-kernel throughput benchmarks (regression guardrails).

Unlike the table/figure benches (one-shot experiments), these are
classic multi-round pytest-benchmark timings of the hot kernels:
frontend analysis, gadget extraction, normalization, and model
forward passes at several sequence lengths.
"""

import numpy as np
import pytest

from repro.core.pipeline import extract_gadgets
from repro.datasets.cwe_templates import TEMPLATES, generate_case
from repro.lang.callgraph import analyze
from repro.models.blstm import BLSTMNet
from repro.models.sevuldet import SEVulDetNet
from repro.nn import no_grad
from repro.slicing.normalize import normalize_gadget
from repro.slicing.path_sensitive import path_sensitive_gadget
from repro.slicing.special_tokens import find_special_tokens


@pytest.fixture(scope="module")
def sample_case():
    return generate_case(TEMPLATES[0], vulnerable=True, seed=5)


@pytest.fixture(scope="module")
def sample_program(sample_case):
    return analyze(sample_case.source, path=sample_case.name)


def test_frontend_analyze_throughput(benchmark, sample_case):
    """Full frontend: parse -> CFG -> dependences -> PDG -> call graph."""
    result = benchmark(analyze, sample_case.source)
    assert result.function_names


def test_path_sensitive_gadget_throughput(benchmark, sample_program):
    criterion = [c for c in find_special_tokens(sample_program)
                 if c.token == "strcpy"][0]
    gadget = benchmark(path_sensitive_gadget, sample_program, criterion)
    assert gadget.lines


def test_normalization_throughput(benchmark, sample_program):
    criterion = [c for c in find_special_tokens(sample_program)
                 if c.token == "strcpy"][0]
    gadget = path_sensitive_gadget(sample_program, criterion)
    normalized = benchmark(normalize_gadget, gadget)
    assert normalized.tokens


def test_extract_gadgets_per_case_throughput(benchmark, sample_case):
    gadgets = benchmark(extract_gadgets, [sample_case])
    assert gadgets


@pytest.mark.parametrize("length", [32, 128, 512])
def test_sevuldet_forward_throughput(benchmark, length):
    """Flexible-length forward pass cost vs sequence length."""
    model = SEVulDetNet(vocab_size=200, dim=16, channels=16, seed=0)
    model.eval()
    ids = np.random.default_rng(0).integers(0, 200, size=(16, length))

    def forward():
        with no_grad():
            return model(ids)

    logits = benchmark(forward)
    assert logits.shape == (16,)


def test_blstm_forward_throughput(benchmark):
    """Fixed-length BRNN forward pass (the baseline cost profile)."""
    model = BLSTMNet(vocab_size=200, dim=16, hidden=16, time_steps=80,
                     seed=0)
    model.eval()
    ids = np.random.default_rng(0).integers(0, 200, size=(16, 80))

    def forward():
        with no_grad():
            return model(ids)

    logits = benchmark(forward)
    assert logits.shape == (16,)
