#!/usr/bin/env python3
"""Hunting the three Xen/QEMU CVEs (paper Table VII / RQ4).

Trains SEVulDet on the synthetic SARD corpus, then applies it — plus a
coverage-guided AFL campaign — to faithful miniatures of
CVE-2016-9776 (mcf_fec infinite loop), CVE-2016-4453 (vmware_vga
unbounded FIFO loop), and CVE-2016-9104 (9pfs integer-overflow bounds
bypass).  Reproduces the paper's matrix: fuzzing finds the two
reachable hangs but misses the magic-offset overflow; the learned
detector flags all three.
"""

from repro import SEVulDet, generate_sard_corpus
from repro.baselines.afl import AFLFuzzer
from repro.core.config import SCALE_PRESETS
from repro.core.pipeline import extract_gadgets
from repro.datasets.xen import CVE_CASES, generate_xen_corpus


def main() -> None:
    print("=== CVE hunting on the Xen miniatures ===\n")

    print("[1/3] training SEVulDet on synthetic SARD + Xen-flavoured "
          "templates\n      (the CVE miniatures themselves are held "
          "out) ...")
    xen_templates = [case for case
                     in generate_xen_corpus(60, seed=777)
                     if "cve" not in case.meta]
    detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=5,
                        threshold=0.5)
    detector.fit(generate_sard_corpus(130, seed=3) + xen_templates)

    print("[2/3] running AFL campaigns (600 execs each) ...")
    afl_found = {}
    for cve, build in CVE_CASES.items():
        case = build(vulnerable=True)
        report = AFLFuzzer(case.source, max_execs=600, max_steps=4000,
                           seed=9).run()
        afl_found[cve] = report
        outcome = []
        if report.crashes:
            outcome.append(f"{len(report.crashes)} crash(es)")
        if report.hangs:
            outcome.append(f"{len(report.hangs)} hang(s)")
        print(f"      {cve}: "
              f"{', '.join(outcome) if outcome else 'nothing found'} "
              f"({report.executions} execs)")

    print("[3/3] scoring path-sensitive gadgets with SEVulDet ...\n")
    print(f"{'CVE':16s} {'AFL':8s} {'SEVulDet':10s} best-score")
    print("-" * 48)
    for cve, build in CVE_CASES.items():
        case = build(vulnerable=True)
        gadgets = extract_gadgets([case], deduplicate=False)
        scores = detector.score_gadgets(gadgets)
        detected = scores.max() >= detector.threshold
        print(f"{cve:16s} "
              f"{'yes' if afl_found[cve].found_anything else 'NO':8s} "
              f"{'yes' if detected else 'NO':10s} "
              f"{scores.max():.3f}")

    print("\nPaper Table VII shape: AFL finds 9776 and 4453 (hangs) "
          "but not 9104\n(the bounds bypass needs an offset within 16 "
          "of INT_MAX — byte mutation\nnever forms it); SEVulDet "
          "detects all three.")


if __name__ == "__main__":
    main()
