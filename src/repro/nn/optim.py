"""Optimizers: SGD (with momentum) and Adam.

The paper trains with the hyper-parameters of Table IV (Adam-style
training, learning rate 1e-4 for SEVulDet); both optimizers support
gradient clipping, which keeps the small-corpus numpy training stable.
"""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Resumable internal state (empty for stateless optimizers)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict`."""

    def _check_buffer(self, name: str, array: np.ndarray,
                      param: Parameter) -> np.ndarray:
        array = np.asarray(array, dtype=param.data.dtype)
        if array.shape != param.data.shape:
            raise ValueError(
                f"optimizer state {name!r} has shape {array.shape} "
                f"but its parameter has shape {param.data.shape}")
        return array.copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity{i}": v
                for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, param in enumerate(self.params):
            self._velocity[i] = self._check_buffer(
                f"velocity{i}", state[f"velocity{i}"], param)

    def step(self) -> None:
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                self._velocity[index] = (self.momentum
                                         * self._velocity[index] - self.lr
                                         * grad)
                param.data += self._velocity[index]
            else:
                param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction.

    The moment buffers and a per-parameter scratch array are allocated
    once; every step runs as in-place ``out=`` ufunc updates, so a
    step allocates nothing regardless of model size.
    """

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._grad_buf = [np.zeros_like(p.data) for p in self.params]
        self._temp = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> dict[str, np.ndarray]:
        """Moments + step count, enough to resume bit-identically."""
        state: dict[str, np.ndarray] = {
            "t": np.array(self._t, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m{i}"] = m
            state[f"v{i}"] = v
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._t = int(state["t"])
        for i, param in enumerate(self.params):
            self._m[i] = self._check_buffer(f"m{i}", state[f"m{i}"],
                                            param)
            self._v[i] = self._check_buffer(f"v{i}", state[f"v{i}"],
                                            param)
            self._grad_buf[i] = np.zeros_like(param.data)
            self._temp[i] = np.zeros_like(param.data)

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            m = self._m[index]
            v = self._v[index]
            if m.shape != param.data.shape \
                    or m.dtype != param.data.dtype:
                # load_state_dict may swap a parameter's array; re-home
                # the buffers rather than corrupt the update
                m = self._m[index] = np.zeros_like(param.data)
                v = self._v[index] = np.zeros_like(param.data)
                self._grad_buf[index] = np.zeros_like(param.data)
                self._temp[index] = np.zeros_like(param.data)
            temp = self._temp[index]
            if self.weight_decay:
                grad_buf = self._grad_buf[index]
                np.multiply(param.data, self.weight_decay,
                            out=grad_buf)
                np.add(grad_buf, grad, out=grad_buf)
                grad = grad_buf
            # m = beta1*m + (1-beta1)*grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1 - self.beta1, out=temp)
            np.add(m, temp, out=m)
            # v = beta2*v + (1-beta2)*grad^2
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=temp)
            np.multiply(temp, 1 - self.beta2, out=temp)
            np.add(v, temp, out=v)
            # param -= (lr/c1) * m / (sqrt(v/c2) + eps)
            np.divide(v, correction2, out=temp)
            np.sqrt(temp, out=temp)
            np.add(temp, self.eps, out=temp)
            np.divide(m, temp, out=temp)
            np.multiply(temp, self.lr / correction1, out=temp)
            np.subtract(param.data, temp, out=param.data)
