"""Global floating-point dtype policy for the numpy framework.

Training and inference default to float32: every Tensor, gradient,
optimizer moment buffer, and batch of labels is created in the default
dtype, halving the memory bandwidth of every kernel relative to
numpy's float64 default.  Numerical-gradient tests pin float64 (central
differences with eps=1e-6 need ~15 significant digits) via
:func:`set_default_dtype`, and ``REPRO_DTYPE=float64`` in the
environment restores the old behavior process-wide.

float16 is allowed as a *storage/inference* dtype: the fused inference
kernel (:mod:`repro.models.fused`) runs half-precision models with
float32 matmul accumulation, and :mod:`repro.nn.quantize` casts a
trained model down for serving.  Training in float16 is unsupported
(gradients underflow), so the default stays float32 unless explicitly
overridden.

Persisted archives are dtype-agnostic: ``load_state_dict`` casts
whatever was saved into the active default, so a float64-trained model
loads cleanly into a float32 session and vice versa.

Inference dtypes are a separate, wider vocabulary
(:data:`INFERENCE_DTYPES`): ``int8`` is a weight-quantization scheme
(per-tensor scale/zero-point, dequantized into float32 for the
matmuls), not a compute dtype — it can never become the default.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np
from contextlib import contextmanager

__all__ = ["get_default_dtype", "set_default_dtype", "default_dtype",
           "INFERENCE_DTYPES", "coerce_inference_dtype"]

_ALLOWED = (np.float16, np.float32, np.float64)

#: Inference-time weight representations accepted by ``scan --dtype``
#: and :meth:`repro.core.detector.SEVulDet.quantize`.  ``int8`` is a
#: quantization scheme (stored scale/zero-point per tensor), so it is
#: valid here but *not* a default compute dtype.
INFERENCE_DTYPES = ("float32", "float16", "int8")


def _coerce(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in [np.dtype(d) for d in _ALLOWED]:
        raise ValueError(
            f"unsupported compute dtype {dtype!r}; choose float16, "
            f"float32 or float64")
    return resolved


def coerce_inference_dtype(name: str) -> str:
    """Validate an inference dtype name (``scan --dtype`` values)."""
    if name not in INFERENCE_DTYPES:
        raise ValueError(
            f"unsupported inference dtype {name!r}; choose from "
            f"{', '.join(INFERENCE_DTYPES)}")
    return name


_DEFAULT_DTYPE = _coerce(os.environ.get("REPRO_DTYPE", "float32"))


def get_default_dtype() -> np.dtype:
    """The dtype new tensors/gradients/buffers are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the global compute dtype; returns the previous one."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _coerce(dtype)
    return previous


@contextmanager
def default_dtype(dtype) -> Iterator[np.dtype]:
    """Context manager scoping :func:`set_default_dtype`."""
    previous = set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)
