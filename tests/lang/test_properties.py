"""Property-based tests (hypothesis) for the language frontend."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.cfg import build_cfg
from repro.lang.dataflow import collect_def_use, reaching_definitions
from repro.lang.dominance import post_dominator_tree
from repro.lang.lexer import TokenKind, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.source import strip_preprocessor

# -- random-source strategies -------------------------------------------------

printable = st.text(alphabet=string.printable, max_size=200)

identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True)
numbers = st.integers(min_value=0, max_value=10_000).map(str)


@st.composite
def random_programs(draw):
    """Small syntactically-valid programs from a statement grammar."""
    var = draw(identifiers.filter(lambda s: s not in ("if", "do", "for",
                                                      "int", "char")))
    statements = []
    depth = draw(st.integers(min_value=1, max_value=4))
    statements.append(f"int {var} = {draw(numbers)};")
    for _ in range(depth):
        kind = draw(st.integers(min_value=0, max_value=4))
        value = draw(numbers)
        if kind == 0:
            statements.append(f"{var} = {var} + {value};")
        elif kind == 1:
            statements.append(
                f"if ({var} > {value}) {{ {var} = {value}; }}")
        elif kind == 2:
            statements.append(
                f"while ({var} > {value}) {{ {var}--; }}")
        elif kind == 3:
            statements.append(
                f"for (int i = 0; i < 3; i++) {{ {var} += i; }}")
        else:
            statements.append(
                f"switch ({var}) {{ case 1: {var} = 0; break; "
                f"default: break; }}")
    body = "\n".join(statements)
    return f"void f(int n) {{\n{body}\nreturn;\n}}"


class TestLexerProperties:
    @given(printable)
    @settings(max_examples=200)
    def test_lexer_never_crashes(self, text):
        tokenize(text)

    @given(printable)
    @settings(max_examples=200)
    def test_lexer_terminates_with_single_eof(self, text):
        toks = tokenize(text)
        assert toks[-1].kind is TokenKind.EOF
        assert sum(1 for t in toks if t.kind is TokenKind.EOF) == 1

    @given(printable)
    @settings(max_examples=100)
    def test_token_positions_monotone(self, text):
        toks = tokenize(text, keep_comments=True)
        positions = [(t.line, t.col) for t in toks]
        assert positions == sorted(positions)

    @given(st.lists(identifiers, min_size=1, max_size=10))
    def test_identifier_roundtrip(self, names):
        source = " ".join(names)
        texts = [t.text for t in tokenize(source)[:-1]]
        assert texts == names


class TestParserProperties:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_random_programs_parse(self, source):
        unit = parse(source)
        assert unit.functions[0].name == "f"

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_build_cfgs(self, source):
        unit = parse(source)
        cfg = build_cfg(unit.functions[0])
        # every statement node is reachable from entry in these
        # straight-line-with-structured-control programs
        assert cfg.statement_nodes()

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_every_node_has_postdominator(self, source):
        unit = parse(source)
        cfg = build_cfg(unit.functions[0])
        ipdom = post_dominator_tree(cfg)
        assert set(ipdom) >= set(cfg.nodes)

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_reaching_definitions_terminate_and_are_sound(self, source):
        unit = parse(source)
        cfg = build_cfg(unit.functions[0])
        def_use = collect_def_use(cfg)
        reach = reaching_definitions(cfg, def_use)
        for facts in reach.values():
            for var, def_node in facts:
                assert var in def_use[def_node].defs

    @given(printable)
    @settings(max_examples=100)
    def test_parser_raises_cleanly_or_succeeds(self, text):
        try:
            parse(text)
        except ParseError:
            pass  # garbage is allowed to fail, but only with ParseError


class TestSourceProperties:
    @given(printable)
    @settings(max_examples=100)
    def test_strip_preprocessor_preserves_line_count(self, text):
        assert strip_preprocessor(text).count("\n") == text.count("\n")

    @given(st.lists(st.sampled_from(
        ["int x;", "#define A 1", "#include <x.h>", "y = 2;"]),
        min_size=1, max_size=8))
    def test_directives_blanked_code_kept(self, lines):
        source = "\n".join(lines)
        stripped = strip_preprocessor(source).split("\n")
        for original, result in zip(lines, stripped):
            if original.startswith("#"):
                assert result == ""
            else:
                assert result == original
