"""Def/use extraction and reaching-definitions dataflow.

Data dependence (paper Definition 2) is computed from reaching
definitions over the CFG: statement *u* is data dependent on *d* when a
definition of variable *v* at *d* reaches *u* and *u* uses *v*.

Writes through pointers and writes performed by library calls (e.g.
``strncpy(dest, src, n)`` writes ``dest``) are modelled as *weak* (may)
definitions: they generate but do not kill, so earlier definitions still
reach — matching the conservative treatment in slicing-based detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A
from .cfg import CFG, CFGNode, NodeKind

__all__ = [
    "LIBRARY_WRITE_ARGS", "LIBRARY_FUNCTIONS", "DefUse",
    "collect_def_use", "reaching_definitions", "data_dependences",
]

#: Which argument indices a C library function writes through.
LIBRARY_WRITE_ARGS: dict[str, tuple[int, ...]] = {
    "memcpy": (0,), "memmove": (0,), "memset": (0,),
    "strcpy": (0,), "strncpy": (0,), "strcat": (0,), "strncat": (0,),
    "sprintf": (0,), "snprintf": (0,), "vsprintf": (0,), "vsnprintf": (0,),
    "gets": (0,), "fgets": (0,), "fread": (0,),
    "read": (1,), "recv": (1,), "recvfrom": (1,),
    "scanf": (1, 2, 3, 4), "fscanf": (2, 3, 4), "sscanf": (2, 3, 4),
    "getcwd": (0,), "realpath": (1,), "gethostname": (0,),
}

#: Library/API functions known to the frontend (superset of the write
#: table; used by special-token detection and the baselines' rule DBs).
LIBRARY_FUNCTIONS = frozenset(LIBRARY_WRITE_ARGS) | frozenset(
    {
        "malloc", "calloc", "realloc", "free", "alloca",
        "strlen", "strcmp", "strncmp", "strchr", "strrchr", "strstr",
        "strdup", "strndup", "strtok", "atoi", "atol", "atoll", "strtol",
        "strtoul", "abs", "labs",
        "printf", "fprintf", "puts", "fputs", "putchar", "perror",
        "open", "close", "write", "fopen", "fclose", "fwrite", "fflush",
        "socket", "bind", "listen", "accept", "connect", "send", "sendto",
        "exit", "abort", "assert", "system", "popen", "execl", "execlp",
        "execv", "execvp", "getenv", "setenv", "rand", "srand", "time",
        "wcscpy", "wcsncpy", "wcscat", "wcslen", "memchr", "qsort",
    }
)


@dataclass
class DefUse:
    """Definition/use facts for one CFG node.

    ``strong_defs`` kill earlier definitions of the same variable;
    ``weak_defs`` (pointer/library writes) only generate.
    """

    strong_defs: set[str] = field(default_factory=set)
    weak_defs: set[str] = field(default_factory=set)
    uses: set[str] = field(default_factory=set)
    called: set[str] = field(default_factory=set)

    @property
    def defs(self) -> set[str]:
        return self.strong_defs | self.weak_defs


def _base_variable(expr: A.Expr) -> str | None:
    """Peel indexing/member/deref layers down to the root identifier."""
    while True:
        if isinstance(expr, A.Ident):
            return expr.name
        if isinstance(expr, A.Index):
            expr = expr.base
        elif isinstance(expr, A.Member):
            expr = expr.base
        elif isinstance(expr, A.Unary) and expr.op == "*":
            expr = expr.operand
        elif isinstance(expr, A.Cast):
            expr = expr.expr
        else:
            return None


class _ExprVisitor:
    """Accumulates def/use facts from expressions."""

    def __init__(self, pointer_vars: set[str]):
        self.info = DefUse()
        self._pointer_vars = pointer_vars

    def visit(self, expr: A.Expr) -> None:
        if isinstance(expr, A.Ident):
            if expr.name not in ("NULL", "true", "false"):
                self.info.uses.add(expr.name)
        elif isinstance(expr, A.Assign):
            self._visit_assignment(expr)
        elif isinstance(expr, A.Unary) and expr.op in ("++", "--"):
            base = _base_variable(expr.operand)
            if base is not None:
                self.info.strong_defs.add(base)
            self.visit(expr.operand)
        elif isinstance(expr, A.Call):
            self._visit_call(expr)
        elif isinstance(expr, A.Member):
            self.visit(expr.base)
        elif isinstance(expr, A.SizeOf):
            if isinstance(expr.arg, A.Node):
                # sizeof does not evaluate its operand; still record the
                # variable as used so slices keep the declaration.
                self.visit(expr.arg)
        else:
            for child in expr.children():
                self.visit(child)  # type: ignore[arg-type]

    def _visit_assignment(self, expr: A.Assign) -> None:
        target = expr.target
        base = _base_variable(target)
        if isinstance(target, A.Ident):
            if expr.op == "=":
                self.info.strong_defs.add(target.name)
            else:  # compound assignment reads the old value
                self.info.strong_defs.add(target.name)
                self.info.uses.add(target.name)
        elif base is not None:
            # Write through an lvalue path (a[i], p->f, *p): weak def of
            # the base, which is also read to compute the location.
            self.info.weak_defs.add(base)
            self._visit_lvalue_path(target)
        else:
            self.visit(target)
        self.visit(expr.value)

    def _visit_lvalue_path(self, target: A.Expr) -> None:
        """Record uses occurring inside a compound lvalue."""
        if isinstance(target, A.Index):
            self._visit_lvalue_path(target.base)
            self.visit(target.index)
        elif isinstance(target, A.Member):
            self._visit_lvalue_path(target.base)
        elif isinstance(target, A.Unary) and target.op == "*":
            self._visit_lvalue_path(target.operand)
        elif isinstance(target, A.Ident):
            self.info.uses.add(target.name)
        else:
            self.visit(target)

    def _visit_call(self, expr: A.Call) -> None:
        name = expr.callee_name
        if name is not None:
            self.info.called.add(name)
        else:
            self.visit(expr.func)
        write_indices = LIBRARY_WRITE_ARGS.get(name or "", ())
        known_library = name in LIBRARY_FUNCTIONS if name else False
        for index, arg in enumerate(expr.args):
            self.visit(arg)
            base = _base_variable(arg)
            if base is None and isinstance(arg, A.Unary) and arg.op == "&":
                base = _base_variable(arg.operand)
                if base is not None:
                    # &x passed to any call: may-write of x.
                    self.info.weak_defs.add(base)
                    continue
            if base is None:
                continue
            if index in write_indices:
                self.info.weak_defs.add(base)
            elif not known_library and base in self._pointer_vars:
                # Pointer/array handed to an unknown (user) function:
                # conservatively a may-write.
                self.info.weak_defs.add(base)


def _pointer_variables(function: A.FunctionDef) -> set[str]:
    """Names of pointer- or array-typed variables in scope."""
    pointers: set[str] = set()
    for param in function.params:
        if param.pointer_depth > 0 or param.is_array:
            pointers.add(param.name)
    for node in A.walk(function.body):
        if isinstance(node, A.Decl):
            for decl in node.declarators:
                if decl.is_pointer or decl.is_array:
                    pointers.add(decl.name)
    return pointers


def collect_def_use(cfg: CFG) -> dict[int, DefUse]:
    """Compute def/use facts per CFG node (keyed by node id).

    The entry node strongly defines every parameter.
    """
    pointer_vars = _pointer_variables(cfg.function)
    result: dict[int, DefUse] = {}
    for node in cfg.nodes.values():
        info = DefUse()
        if node.kind is NodeKind.ENTRY:
            info.strong_defs.update(p.name for p in cfg.function.params
                                    if p.name)
        elif node.ast is not None:
            info = _node_def_use(node, pointer_vars)
        result[node.id] = info
    return result


def _node_def_use(node: CFGNode, pointer_vars: set[str]) -> DefUse:
    visitor = _ExprVisitor(pointer_vars)
    ast = node.ast
    if isinstance(ast, A.Decl):
        for decl in ast.declarators:
            visitor.info.strong_defs.add(decl.name)
            for size in decl.array_sizes:
                if size is not None:
                    visitor.visit(size)
            if decl.init is not None:
                visitor.visit(decl.init)
    elif isinstance(ast, A.ExprStmt):
        visitor.visit(ast.expr)
    elif isinstance(ast, A.Return):
        if ast.value is not None:
            visitor.visit(ast.value)
    elif isinstance(ast, (A.If, A.While)):
        visitor.visit(ast.cond)
    elif isinstance(ast, A.DoWhile):
        visitor.visit(ast.cond)
    elif isinstance(ast, A.For):
        if node.kind is NodeKind.CONDITION and ast.cond is not None:
            visitor.visit(ast.cond)
    elif isinstance(ast, A.Switch):
        visitor.visit(ast.expr)
    # Break/Continue/Goto/Label/Empty contribute nothing.
    return visitor.info


def reaching_definitions(
    cfg: CFG, def_use: dict[int, DefUse] | None = None
) -> dict[int, set[tuple[str, int]]]:
    """Reaching definitions at node *entry*: sets of (variable, def node id).

    Classic forward may-analysis with a worklist; weak defs generate but
    do not kill.
    """
    if def_use is None:
        def_use = collect_def_use(cfg)
    gen: dict[int, set[tuple[str, int]]] = {}
    kill_vars: dict[int, set[str]] = {}
    for node_id, info in def_use.items():
        gen[node_id] = {(v, node_id) for v in info.defs}
        kill_vars[node_id] = set(info.strong_defs)

    in_sets: dict[int, set[tuple[str, int]]] = {
        node_id: set() for node_id in cfg.nodes
    }
    worklist = list(cfg.nodes.values())
    while worklist:
        node = worklist.pop()
        new_in: set[tuple[str, int]] = set()
        for pred in cfg.predecessors(node):
            out = {
                (v, d) for (v, d) in in_sets[pred.id]
                if v not in kill_vars[pred.id]
            } | gen[pred.id]
            new_in |= out
        if new_in != in_sets[node.id]:
            in_sets[node.id] = new_in
            worklist.extend(cfg.successors(node))
    return in_sets


def data_dependences(
    cfg: CFG, def_use: dict[int, DefUse] | None = None
) -> list[tuple[CFGNode, CFGNode, str]]:
    """Data-dependence triples ``(def_node, use_node, variable)``."""
    if def_use is None:
        def_use = collect_def_use(cfg)
    reach_in = reaching_definitions(cfg, def_use)
    deps: list[tuple[CFGNode, CFGNode, str]] = []
    seen: set[tuple[int, int, str]] = set()
    for node in cfg.nodes.values():
        uses = def_use[node.id].uses
        if not uses:
            continue
        for var, def_id in reach_in[node.id]:
            if var in uses and def_id != node.id:
                key = (def_id, node.id, var)
                if key not in seen:
                    seen.add(key)
                    deps.append((cfg.nodes[def_id], node, var))
    return deps
