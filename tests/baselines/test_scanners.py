"""Tests for the lexical and dataflow static-analysis baselines."""

from repro.baselines.checkmarx import CheckmarxScanner
from repro.baselines.flawfinder import FlawfinderScanner
from repro.baselines.rats import RatsScanner

STRCPY_BAD = """\
void f(char *data) {
    char buf[8];
    strcpy(buf, data);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line);
    return 0;
}
"""

GUARDED_STRCPY = STRCPY_BAD.replace(
    "    strcpy(buf, data);",
    "    if (strlen(data) < 8) {\n        strcpy(buf, data);\n    }")

INDEX_BUG = """\
void f(char *data, int n) {
    int table[8];
    table[n] = 1;
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line, atoi(line));
    return 0;
}
"""


class TestFlawfinder:
    def test_flags_strcpy(self):
        scanner = FlawfinderScanner()
        findings = scanner.scan(STRCPY_BAD)
        assert any(f.function == "strcpy" for f in findings)
        assert scanner.flags(STRCPY_BAD)

    def test_guarded_strcpy_still_flagged(self):
        """No dataflow: guards don't silence it — the FP source."""
        assert FlawfinderScanner().flags(GUARDED_STRCPY)

    def test_misses_index_bug(self):
        """No risky call involved — the FN source."""
        assert not FlawfinderScanner().flags(INDEX_BUG)

    def test_constant_format_downgraded(self):
        source = 'void f() { printf("hello\\n"); }'
        findings = FlawfinderScanner(min_risk=2).scan(source)
        assert not any(f.function == "printf" for f in findings)

    def test_variable_format_flagged(self):
        source = "void f(char *s) { printf(s); }"
        findings = FlawfinderScanner(min_risk=2).scan(source)
        assert any(f.function == "printf" for f in findings)

    def test_identifier_without_call_not_flagged(self):
        source = "void f() { int strcpy = 1; strcpy = 2; }"
        assert not FlawfinderScanner().scan(source)

    def test_min_risk_threshold(self):
        low = FlawfinderScanner(min_risk=1).scan(STRCPY_BAD)
        high = FlawfinderScanner(min_risk=5).scan(STRCPY_BAD)
        assert len(low) > len(high)

    def test_finding_carries_line(self):
        findings = FlawfinderScanner().scan(STRCPY_BAD)
        strcpy = next(f for f in findings if f.function == "strcpy")
        assert strcpy.line == 3


class TestRats:
    def test_flags_strcpy(self):
        assert RatsScanner().flags(STRCPY_BAD)

    def test_severity_threshold(self):
        high_only = RatsScanner(min_severity="High")
        medium = RatsScanner(min_severity="Medium")
        source = "void f(char *d) { memcpy(d, d, 4); }"
        assert medium.flags(source)
        assert not high_only.flags(source)

    def test_unknown_severity_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            RatsScanner(min_severity="Extreme")

    def test_constant_format_downgraded(self):
        source = 'void f() { printf("x"); }'
        assert not RatsScanner().flags(source)

    def test_differs_from_flawfinder(self):
        """The two rule DBs disagree somewhere (free is Medium in our
        RATS DB, absent from Flawfinder's)."""
        source = "void f(char *p) { free(p); }"
        assert RatsScanner().flags(source)
        assert not FlawfinderScanner().flags(source)


class TestCheckmarx:
    def test_taint_source_to_sink(self):
        assert CheckmarxScanner().flags(STRCPY_BAD)

    def test_guard_on_flow_suppresses(self):
        """Placement-blind sanitizer recognition: the guard silences
        the finding even though a cleverer attacker-chosen path might
        not be covered."""
        assert not CheckmarxScanner().flags(GUARDED_STRCPY)

    def test_placement_blindness_fig1(self):
        """The Fig 1 vulnerable variant fools Checkmarx: the guard
        exists somewhere on the chain, so the flow looks sanitized."""
        vuln = """\
void f(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 0;
    }
    strncpy(dest, data, n);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    f(line, atoi(line));
    return 0;
}
"""
        assert not CheckmarxScanner().flags(vuln)  # false negative

    def test_audit_mode_reports_sanitized(self):
        scanner = CheckmarxScanner(report_sanitized=True)
        findings = scanner.scan(GUARDED_STRCPY)
        assert any(f.sanitized for f in findings)

    def test_constant_sink_args_safe(self):
        source = 'void f() { char b[16]; strcpy(b, "const"); }'
        assert not CheckmarxScanner().flags(source)

    def test_unparseable_source_no_crash(self):
        assert not CheckmarxScanner().flags("this is not C at all {{{")

    def test_finding_fields(self):
        findings = CheckmarxScanner().scan(STRCPY_BAD)
        finding = findings[0]
        assert finding.sink == "strcpy"
        assert finding.function == "f"
        assert finding.sink_line == 3
