"""Juliet-style synthetic corpus: paired bad/good cases per CWE.

NIST's Juliet test suite organises C test cases as one directory per
CWE (``CWE121_Stack_Based_Buffer_Overflow/...``), each test case id
shipping a ``bad`` function and one or more ``good`` counterparts that
share the same surrounding code shape.  :func:`generate_juliet_corpus`
reproduces that structure from the CWE templates: every logical test
case is a *pair* — the flaw variant and the patched variant generated
from the same seed, so they share identifier names, buffer sizes, and
noise — filed under a per-CWE directory path.

This differs from the SARD substitute (:mod:`repro.datasets.sard`) in
two ways that matter to detectors: the corpus is exactly 50%
vulnerable by construction (paired variants), and each pair's variants
are near-clones — telling them apart requires the flaw itself, not
distributional shortcuts.
"""

from __future__ import annotations

import numpy as np

from .cwe_templates import TEMPLATES, Template, generate_case
from .manifest import TestCase

__all__ = ["generate_juliet_corpus", "juliet_layout"]


def generate_juliet_corpus(
    count: int,
    seed: int = 0,
    categories: tuple[str, ...] | None = None,
) -> list[TestCase]:
    """Generate ``count`` Juliet-style cases (``count // 2`` pairs).

    Args:
        count: number of programs; odd counts are rounded down to the
            nearest full bad/good pair.
        seed: master seed (pair i derives seed*52361 + i).
        categories: restrict template families to these special-token
            categories ('FC', 'AU', 'PU', 'AE').

    Each pair shares one generation seed: the bad and good variants of
    a pair differ only where the template's flaw lives.  Case names
    follow Juliet's per-CWE directory layout, e.g.
    ``juliet/CWE-121/strcpy_stack_overflow__314_bad.c``.
    """
    pool: list[Template] = [
        template for template in TEMPLATES
        if categories is None or template.category in categories
    ]
    if not pool:
        raise ValueError(f"no templates for categories {categories!r}")
    rng = np.random.default_rng(seed ^ 0x30C1)
    cases: list[TestCase] = []
    pairs = count // 2
    # Round-robin over templates (shuffled per cycle) so every CWE
    # family is covered before any repeats — Juliet's exhaustive
    # per-CWE coverage, not a uniform draw.
    order: list[int] = []
    for index in range(pairs):
        if not order:
            order = [int(i) for i in rng.permutation(len(pool))]
        template = pool[order.pop()]
        pair_seed = seed * 52_361 + index
        for vulnerable in (True, False):
            suffix = "bad" if vulnerable else "good"
            case = generate_case(
                template, vulnerable=vulnerable, seed=pair_seed,
                origin="juliet",
                case_name=(f"juliet/{template.cwe}/"
                           f"{template.name}__{pair_seed}_{suffix}.c"))
            case.meta["juliet_pair"] = index
            case.meta["variant"] = suffix
            cases.append(case)
    return cases


def juliet_layout(cases: list[TestCase]) -> dict[str, list[TestCase]]:
    """Group cases by their per-CWE directory (``juliet/CWE-121``).

    Mirrors how the Juliet tree (and UTSV-style preprocessed corpora)
    keep one directory per weakness class.
    """
    layout: dict[str, list[TestCase]] = {}
    for case in cases:
        directory = "/".join(case.name.split("/")[:2])
        layout.setdefault(directory, []).append(case)
    return layout
