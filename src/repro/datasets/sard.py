"""Synthetic SARD corpus (the paper's primary training set substitute).

SARD/Juliet organises test cases as good/bad function pairs across CWE
families; :func:`generate_sard_corpus` reproduces that shape from the
CWE templates, deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from .cwe_templates import TEMPLATES, Template, generate_case
from .manifest import TestCase

__all__ = ["generate_sard_corpus", "corpus_statistics"]


def generate_sard_corpus(
    count: int,
    seed: int = 0,
    vulnerable_fraction: float = 0.5,
    categories: tuple[str, ...] | None = None,
) -> list[TestCase]:
    """Generate ``count`` SARD-style cases.

    Args:
        count: number of programs.
        seed: master seed (case i derives seed*100003 + i).
        vulnerable_fraction: fraction built from the flaw variant.
        categories: restrict template families to these special-token
            categories ('FC', 'AU', 'PU', 'AE').
    """
    pool: list[Template] = [
        template for template in TEMPLATES
        if categories is None or template.category in categories
    ]
    if not pool:
        raise ValueError(f"no templates for categories {categories!r}")
    rng = np.random.default_rng(seed)
    # Stratified coverage, Juliet-style: round-robin over templates
    # (shuffled per cycle) with variants drawn at vulnerable_fraction,
    # then a repair pass guaranteeing every (template, variant) combo
    # appears when the corpus is big enough.  A plain uniform draw
    # leaves whole families without one variant at small corpus sizes,
    # silently blinding detectors to those CWEs.
    plan: list[tuple[Template, bool]] = []
    while len(plan) < count:
        order = rng.permutation(len(pool))
        for pick in order:
            if len(plan) >= count:
                break
            plan.append((pool[int(pick)],
                         bool(rng.random() < vulnerable_fraction)))
    if count >= 2 * len(pool):
        by_template: dict[str, list[int]] = {}
        for index, (template, _) in enumerate(plan):
            by_template.setdefault(template.name, []).append(index)
        for indices in by_template.values():
            variants = {plan[i][1] for i in indices}
            if len(variants) == 1 and len(indices) >= 2:
                flip = indices[int(rng.integers(0, len(indices)))]
                template, vulnerable = plan[flip]
                plan[flip] = (template, not vulnerable)
    cases: list[TestCase] = []
    for index, (template, vulnerable) in enumerate(plan):
        case_seed = seed * 100_003 + index
        cases.append(
            generate_case(template, vulnerable=vulnerable,
                          seed=case_seed, origin="sard",
                          case_name=(f"sard/{template.name}"
                                     f"_{case_seed}.c")))
    return cases


def corpus_statistics(cases: list[TestCase]) -> dict[str, dict[str, int]]:
    """Counts per category and per CWE (Table I style summary)."""
    by_category: dict[str, dict[str, int]] = {}
    for case in cases:
        bucket = by_category.setdefault(
            case.category, {"vulnerable": 0, "non_vulnerable": 0,
                            "total": 0})
        bucket["total"] += 1
        if case.vulnerable:
            bucket["vulnerable"] += 1
        else:
            bucket["non_vulnerable"] += 1
    return by_category
