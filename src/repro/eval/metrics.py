"""Detection metrics (paper Section IV-A).

FPR, FNR, Accuracy, Precision and F1 exactly as the paper defines them:
``A = (TP+TN)/all``, ``P = TP/(TP+FP)``, ``F1 = 2*P*(1-FNR) /
(P + (1-FNR))`` — note F1 uses recall expressed as ``1 - FNR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Confusion", "Metrics", "confusion_from", "metrics_from"]


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn


@dataclass(frozen=True)
class Metrics:
    """The paper's five indicators, as fractions in [0, 1]."""

    fpr: float
    fnr: float
    accuracy: float
    precision: float
    f1: float

    def as_percentages(self) -> dict[str, float]:
        """Rounded percentage view (matches the tables' formatting)."""
        return {
            "FPR(%)": round(self.fpr * 100, 1),
            "FNR(%)": round(self.fnr * 100, 1),
            "A(%)": round(self.accuracy * 100, 1),
            "P(%)": round(self.precision * 100, 1),
            "F1(%)": round(self.f1 * 100, 1),
        }


def confusion_from(predictions: Sequence[int],
                   labels: Sequence[int]) -> Confusion:
    """Build confusion counts from parallel 0/1 sequences."""
    if len(predictions) != len(labels):
        raise ValueError(f"length mismatch: {len(predictions)} predictions"
                         f" vs {len(labels)} labels")
    tp = fp = tn = fn = 0
    for predicted, actual in zip(predictions, labels):
        if actual:
            if predicted:
                tp += 1
            else:
                fn += 1
        else:
            if predicted:
                fp += 1
            else:
                tn += 1
    return Confusion(tp, fp, tn, fn)


def metrics_from(confusion: Confusion) -> Metrics:
    """Derive the five indicators; empty denominators yield 0."""
    negatives = confusion.fp + confusion.tn
    positives = confusion.tp + confusion.fn
    fpr = confusion.fp / negatives if negatives else 0.0
    fnr = confusion.fn / positives if positives else 0.0
    accuracy = ((confusion.tp + confusion.tn) / confusion.total
                if confusion.total else 0.0)
    predicted_pos = confusion.tp + confusion.fp
    precision = confusion.tp / predicted_pos if predicted_pos else 0.0
    recall = 1.0 - fnr
    f1 = (2 * precision * recall / (precision + recall)
          if (precision + recall) > 0 else 0.0)
    return Metrics(fpr, fnr, accuracy, precision, f1)
