"""Numpy deep-learning framework (the offline PyTorch substitute)."""

from .dtype import (default_dtype, get_default_dtype, set_default_dtype,
                    INFERENCE_DTYPES, coerce_inference_dtype)
from .tensor import Tensor, as_tensor, no_grad
from .layers import (Parameter, Module, Linear, Embedding, Dropout,
                     Conv1d, Sequential, ReLU, Tanh, Sigmoid, Flatten)
from .ops import (conv1d, max_pool1d, avg_pool1d, adaptive_max_pool1d,
                  adaptive_avg_pool1d, stable_sigmoid)
from .rnn import LSTMCell, GRUCell, RNNLayer, Bidirectional
from .attention import TokenAttention, ChannelAttention, SpatialAttention, CBAM
from .spp import SpatialPyramidPooling1d
from .optim import SGD, Adam, clip_grad_norm
from .losses import bce_loss, bce_with_logits, cross_entropy, mse_loss
from .serialize import save_model, load_model
from .quantize import (QuantizedTensor, QuantizationReport,
                       quantize_tensor, dequantize_tensor,
                       apply_inference_dtype, weights_nbytes)
from .data import Sample, pad_or_truncate, fixed_length_batches, bucketed_batches

__all__ = [
    "Tensor", "as_tensor", "no_grad",
    "default_dtype", "get_default_dtype", "set_default_dtype",
    "INFERENCE_DTYPES", "coerce_inference_dtype",
    "Parameter", "Module", "Linear", "Embedding", "Dropout", "Conv1d",
    "Sequential", "ReLU", "Tanh", "Sigmoid", "Flatten",
    "conv1d", "max_pool1d", "avg_pool1d", "adaptive_max_pool1d",
    "adaptive_avg_pool1d", "stable_sigmoid",
    "LSTMCell", "GRUCell", "RNNLayer", "Bidirectional",
    "TokenAttention", "ChannelAttention", "SpatialAttention", "CBAM",
    "SpatialPyramidPooling1d",
    "SGD", "Adam", "clip_grad_norm",
    "bce_loss", "bce_with_logits", "cross_entropy", "mse_loss",
    "save_model", "load_model",
    "QuantizedTensor", "QuantizationReport", "quantize_tensor",
    "dequantize_tensor", "apply_inference_dtype", "weights_nbytes",
    "Sample", "pad_or_truncate", "fixed_length_batches", "bucketed_batches",
]
