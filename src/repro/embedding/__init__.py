"""Token vocabulary and word2vec embedding (gensim substitute)."""

from .vocab import PAD_TOKEN, UNK_TOKEN, Vocabulary
from .word2vec import Word2Vec

__all__ = ["PAD_TOKEN", "UNK_TOKEN", "Vocabulary", "Word2Vec"]
