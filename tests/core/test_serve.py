"""End-to-end tests for the batched scan service.

The load-bearing property is *byte identity*: the micro-batching
scheduler may pack gadgets from many cases into shared batches, but
every verdict must exactly equal what a serial
``detector.detect_case`` loop produces — same findings, same scores,
same ordering.  The rest covers the result cache (warm re-scans are
hits, config changes are misses), quarantine/fault handling, and the
CLI surface.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.core import SCALE_PRESETS, Quarantine, SEVulDet
from repro.core.serve import (CaseVerdict, ResultCache, ScanService,
                              ShardedResultCache)
from repro.datasets.sard import generate_sard_corpus
from repro.testing import faults


@pytest.fixture(scope="module")
def detector():
    det = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
    det.fit(generate_sard_corpus(80, seed=31))
    return det


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(30, seed=99)


class TestByteIdentity:
    def test_batched_matches_serial_detect_case(self, detector,
                                                corpus):
        serial = [detector.detect_case(case) for case in corpus]
        with ScanService(detector, workers=2,
                         batch_size=16) as service:
            verdicts = service.scan_cases(corpus)
        assert len(verdicts) == len(corpus)
        for case, verdict, findings in zip(corpus, verdicts, serial):
            assert verdict.name == case.name
            assert list(verdict.findings) == findings
            assert verdict.flagged == bool(findings)

    def test_identity_across_batching_configs(self, detector, corpus):
        reference = None
        for workers, batch_size in ((1, 1), (2, 8), (4, 64)):
            with ScanService(detector, workers=workers,
                             batch_size=batch_size) as service:
                records = [v.as_record()
                           for v in service.scan_cases(corpus)]
            if reference is None:
                reference = records
            else:
                assert records == reference

    def test_scores_match_serial_exactly(self, detector, corpus):
        with ScanService(detector, workers=2,
                         batch_size=16) as service:
            verdicts = service.scan_cases(corpus)
        for case, verdict in zip(corpus, verdicts):
            serial = detector.detect_case(case)
            for batched, single in zip(verdict.findings, serial):
                assert batched.score == single.score  # bit-equal


class TestResultCaching:
    def test_rescan_hits_result_cache(self, detector, corpus):
        with ScanService(detector, workers=2,
                         batch_size=16) as service:
            cold = service.scan_cases(corpus)
            warm = service.scan_cases(corpus)
            stats = service.stats()
        assert all(not v.cached for v in cold)
        assert all(v.cached for v in warm)
        assert [v.as_record() for v in warm] == \
            [v.as_record() for v in cold]
        # acceptance: >= 95% hit rate on the warm re-scan
        assert stats["result_cache"]["hit_rate"] >= 0.5  # 30/60 here
        assert stats["result_cache"]["hits"] == len(corpus)

    def test_threshold_change_invalidates_shared_cache(self, detector,
                                                       corpus):
        shared = ResultCache(capacity=64)
        with ScanService(detector, workers=1, batch_size=16,
                         result_cache=shared) as service:
            service.scan_cases(corpus[:5])
        original = detector.threshold
        detector.threshold = 0.11
        try:
            with ScanService(detector, workers=1, batch_size=16,
                             result_cache=shared) as service:
                changed = service.scan_cases(corpus[:5])
        finally:
            detector.threshold = original
        # same fingerprints, different config token: all misses
        assert all(not v.cached for v in changed)
        # restored config hits the entries the first service stored
        with ScanService(detector, workers=1, batch_size=16,
                         result_cache=shared) as service:
            restored = service.scan_cases(corpus[:5])
        assert all(v.cached for v in restored)

    def test_lru_capacity_and_eviction(self):
        cache = ResultCache(capacity=2)
        token = "cfg"
        for i in range(3):
            cache.put(f"fp{i}", token, CaseVerdict(
                name=f"c{i}", fingerprint=f"fp{i}", status="clean"))
        assert len(cache) == 2
        assert cache.get("fp0", token) is None  # evicted
        assert cache.get("fp2", token) is not None
        assert cache.get("fp1", token) is not None

    def test_config_token_separates_entries(self):
        cache = ResultCache(capacity=8)
        verdict = CaseVerdict(name="c", fingerprint="fp",
                              status="clean")
        cache.put("fp", "model-a", verdict)
        assert cache.get("fp", "model-b") is None
        assert cache.get("fp", "model-a") is verdict


class TestFailureHandling:
    def test_quarantined_case_is_skipped(self, detector, corpus,
                                         tmp_path):
        quarantine = Quarantine(tmp_path / "quarantine.jsonl")
        quarantine.add(corpus[0], "timeout", "seeded for test")
        detector.quarantine = quarantine
        try:
            with ScanService(detector, workers=1,
                             batch_size=16) as service:
                verdicts = service.scan_cases(corpus[:3])
        finally:
            detector.quarantine = None
        assert verdicts[0].status == "skipped"
        assert verdicts[0].reason == "quarantined"
        assert verdicts[1].status in ("flagged", "clean")
        record = verdicts[0].as_record()
        assert record["status"] == "skipped"
        assert record["findings"] == []

    def test_fault_injected_case_quarantined_scan_completes(
            self, detector, corpus, tmp_path):
        poisoned = corpus[1].name
        quarantine = Quarantine(tmp_path / "quarantine.jsonl")
        detector.quarantine = quarantine
        try:
            with faults.injected(f"raise@case:{poisoned}:MemoryError"):
                with ScanService(detector, workers=1,
                                 batch_size=16) as service:
                    verdicts = service.scan_cases(corpus[:4])
        finally:
            detector.quarantine = None
        assert verdicts[1].status == "skipped"
        assert verdicts[1].reason == "memory"
        assert corpus[1] in quarantine  # poisoned for next time
        # every other case still got a real verdict
        assert all(v.status in ("flagged", "clean")
                   for i, v in enumerate(verdicts) if i != 1)

    def test_zero_gadget_source_is_clean(self, detector):
        with ScanService(detector, workers=1,
                         batch_size=16) as service:
            verdict = service.scan_paths([])
            assert verdict == []
        # a source with no special tokens produces no gadgets
        from repro.datasets.manifest import TestCase
        trivial = TestCase(name="t.c",
                           source="int main() { return 0; }",
                           vulnerable=False,
                           vulnerable_lines=frozenset(), cwe="",
                           category="", origin="test")
        with ScanService(detector, workers=1,
                         batch_size=16) as service:
            verdict = service.scan_case(trivial)
        assert verdict.status == "clean"
        assert verdict.gadgets == 0
        assert verdict.max_score == 0.0


class TestServiceLifecycle:
    def test_closed_service_rejects_scans(self, detector, corpus):
        service = ScanService(detector, workers=1, batch_size=4)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.scan_cases(corpus[:1])
        service.close()  # idempotent

    def test_stats_shape(self, detector, corpus):
        with ScanService(detector, workers=2,
                         batch_size=8) as service:
            service.scan_cases(corpus[:5])
            stats = service.stats()
        assert stats["cases"] == 5
        assert stats["cases_per_sec"] > 0
        assert stats["scored_gadgets"] > 0
        assert stats["latency_seconds"]["count"] == 5
        assert 0 < stats["batch_fill"]["mean"] <= 1.0

    def test_missing_path_raises(self, detector, tmp_path):
        with ScanService(detector, workers=1,
                         batch_size=4) as service:
            with pytest.raises(FileNotFoundError):
                service.scan_paths([tmp_path / "nope.c"])


class TestScanCLI:
    @pytest.fixture(scope="class")
    def model_path(self, detector, tmp_path_factory):
        path = tmp_path_factory.mktemp("model") / "model.npz"
        detector.save(path)
        return path

    def test_scan_directory_jsonl_and_stats(self, detector,
                                            model_path, corpus,
                                            tmp_path, capsys):
        from repro.cli import main

        src_dir = tmp_path / "src"
        src_dir.mkdir()
        for case in corpus[:4]:
            stem = case.name.rsplit("/", 1)[-1]
            (src_dir / stem).write_text(case.source)
        jsonl = tmp_path / "verdicts.jsonl"
        code = main(["scan", str(src_dir), "--model",
                     str(model_path), "--jsonl", str(jsonl),
                     "--workers", "2", "--batch-size", "8",
                     "--stats"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "scanned 4 case(s):" in out
        assert "result cache:" in out
        records = [json.loads(line)
                   for line in jsonl.read_text().splitlines()]
        assert len(records) == 4
        assert all(r["status"] in ("flagged", "clean", "skipped")
                   for r in records)

    def test_warm_rescan_jsonl_byte_identical(self, model_path,
                                              corpus, tmp_path,
                                              capsys):
        from repro.cli import main

        target = tmp_path / "case.c"
        target.write_text(corpus[0].source)
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        main(["scan", str(target), "--model", str(model_path),
              "--jsonl", str(first)])
        main(["scan", str(target), "--model", str(model_path),
              "--jsonl", str(second)])
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()


class TestConcurrentCallers:
    """Regression: ``scan_cases`` used to hold ``_submit_lock`` across
    the whole extract+submit pass, so one caller stuck in extraction
    serialized every other thread behind it.  The lock now covers only
    the cache-lookup/dedup bookkeeping."""

    def test_fast_caller_is_not_serialized_behind_slow_one(
            self, detector, corpus):
        slow_case, fast_case = corpus[0], corpus[1]
        results: dict[str, list] = {}
        with ScanService(detector, workers=1,
                         batch_size=4) as service:
            def scan(tag, case):
                results[tag] = service.scan_cases([case])

            with faults.injected(
                    f"hang@case:{slow_case.name}:6"):
                slow = threading.Thread(
                    target=scan, args=("slow", slow_case))
                slow.start()
                time.sleep(0.5)  # let the slow scan enter extraction
                fast = threading.Thread(
                    target=scan, args=("fast", fast_case))
                started = time.perf_counter()
                fast.start()
                fast.join(timeout=3.0)
                fast_seconds = time.perf_counter() - started
                stuck = fast.is_alive()
                slow.join(timeout=20.0)
        assert not stuck, (
            "concurrent caller waited on the submission lock for the "
            "whole extract pass")
        assert fast_seconds < 3.0
        assert results["fast"][0].status in ("flagged", "clean")
        assert results["slow"][0].status in ("flagged", "clean")

    def test_concurrent_callers_byte_identical(self, detector,
                                               corpus):
        with ScanService(detector, workers=2,
                         batch_size=8) as service:
            expected = [v.as_record()
                        for v in service.scan_cases(corpus)]
        outcomes: list[list] = [None] * 4
        with ScanService(detector, workers=2,
                         batch_size=8) as service:
            def scan(slot):
                outcomes[slot] = [v.as_record()
                                  for v in service.scan_cases(corpus)]

            threads = [threading.Thread(target=scan, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert all(records == expected for records in outcomes)

    def test_duplicate_fingerprints_are_single_flighted(
            self, detector, corpus):
        with ScanService(detector, workers=1,
                         batch_size=8) as service:
            baseline = service.scan_cases(corpus[:2])
            scored_unique = service.telemetry.get(
                "scan_scored_gadgets")
        with ScanService(detector, workers=1,
                         batch_size=8) as service:
            verdicts = service.scan_cases(
                [corpus[0], corpus[1], corpus[0], corpus[0]])
            assert service.telemetry.get("scan_dedup_hits") == 2
            # the duplicates were never re-extracted or re-scored
            assert (service.telemetry.get("scan_scored_gadgets")
                    == scored_unique)
        records = [v.as_record() for v in verdicts]
        assert records[0] == records[2] == records[3]
        assert records[0] == baseline[0].as_record()
        assert records[1] == baseline[1].as_record()


class TestScorerBackends:
    def test_process_backend_matches_thread_backend(self, detector,
                                                    corpus):
        with ScanService(detector, workers=2, batch_size=16,
                         scorer="process") as service:
            process_records = [v.as_record()
                               for v in service.scan_cases(corpus)]
            assert service.stats()["scored_gadgets"] > 0
        with ScanService(detector, workers=2, batch_size=16,
                         scorer="thread") as service:
            thread_records = [v.as_record()
                              for v in service.scan_cases(corpus)]
        assert process_records == thread_records

    def test_unknown_backend_rejected(self, detector):
        with pytest.raises(ValueError, match="unknown scorer"):
            ScanService(detector, scorer="gpu")


class TestShardedResultCache:
    def test_roundtrip_and_stats(self):
        cache = ShardedResultCache(capacity=64, shards=4)
        verdicts = {}
        for i in range(16):
            fingerprint = f"{i:08x}{'0' * 56}"
            verdict = CaseVerdict(name=f"c{i}",
                                  fingerprint=fingerprint,
                                  status="clean")
            cache.put(fingerprint, "cfg", verdict)
            verdicts[fingerprint] = verdict
        assert len(cache) == 16
        for fingerprint, verdict in verdicts.items():
            assert cache.get(fingerprint, "cfg") is verdict
        assert cache.get("f" * 64, "cfg") is None
        assert cache.hits == 16
        assert cache.misses == 1
        assert cache.hit_rate() == 16 / 17
        # keys actually spread across shards
        assert sum(1 for shard in cache.shards if len(shard)) > 1

    def test_config_token_separates_entries(self):
        cache = ShardedResultCache(capacity=8, shards=2)
        verdict = CaseVerdict(name="c", fingerprint="ab" * 32,
                              status="clean")
        cache.put("ab" * 32, "model-a", verdict)
        assert cache.get("ab" * 32, "model-b") is None
        assert cache.get("ab" * 32, "model-a") is verdict

    def test_service_accepts_sharded_cache(self, detector, corpus):
        shared = ShardedResultCache(capacity=256, shards=4)
        with ScanService(detector, workers=1, batch_size=8,
                         result_cache=shared) as service:
            cold = service.scan_cases(corpus[:6])
            warm = service.scan_cases(corpus[:6])
        assert all(not v.cached for v in cold)
        assert all(v.cached for v in warm)
        assert [v.as_record() for v in warm] == \
            [v.as_record() for v in cold]
