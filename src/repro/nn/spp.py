"""Spatial pyramid pooling for flexible-length sequences (paper Step V).

The SPP layer maps a ``(batch, channels, length)`` feature map of *any*
length to a fixed ``(batch, (4 + 2 + 1) * channels)`` vector by max-
pooling over 4, 2, and 1 adaptive spatial bins and concatenating — the
mechanism that frees SEVulDet from the RNNs' truncate/pad requirement
(Definition 8).
"""

from __future__ import annotations

from .layers import Module
from .ops import adaptive_avg_pool1d, adaptive_max_pool1d
from .tensor import Tensor

__all__ = ["SpatialPyramidPooling1d"]


class SpatialPyramidPooling1d(Module):
    """Concatenated adaptive pooling over a bin pyramid.

    Args:
        bins: pyramid levels; the paper uses (4, 2, 1).
        mode: 'max' (paper) or 'avg'.
    """

    def __init__(self, bins: tuple[int, ...] = (4, 2, 1),
                 mode: str = "max"):
        super().__init__()
        if not bins:
            raise ValueError("SPP needs at least one bin level")
        if mode not in ("max", "avg"):
            raise ValueError(f"unknown SPP mode {mode!r}")
        self.bins = tuple(bins)
        self.mode = mode

    def output_features(self, channels: int) -> int:
        """Fixed output width for a given channel count."""
        return sum(self.bins) * channels

    def forward(self, x: Tensor) -> Tensor:
        """(batch, channels, length) -> (batch, sum(bins) * channels)."""
        batch, channels, length = x.shape
        if length < 1:
            raise ValueError("SPP input must have length >= 1")
        pool = adaptive_max_pool1d if self.mode == "max" \
            else adaptive_avg_pool1d
        pieces = []
        for bin_count in self.bins:
            pooled = pool(x, bin_count)              # (B, C, bin)
            pieces.append(pooled.reshape(batch, channels * bin_count))
        return Tensor.concat(pieces, axis=1)
