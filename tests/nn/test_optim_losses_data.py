"""Tests for optimizers, losses, batching, and serialization."""

import numpy as np
import pytest

from repro.nn import (Adam, Linear, Parameter, SGD, Sample, Tensor,
                      bce_loss, bce_with_logits, bucketed_batches,
                      clip_grad_norm, fixed_length_batches, load_model,
                      mse_loss, pad_or_truncate, save_model)

from .conftest import assert_grad_close, numerical_gradient


def quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        plain, heavy = quadratic_param(), quadratic_param()
        for p, momentum in ((plain, 0.0), (heavy, 0.9)):
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        assert np.abs(heavy.data).sum() < np.abs(plain.data).sum()

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward happened; must not crash
        assert np.allclose(p.data, [5.0, -3.0])


class TestAdam:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-2

    def test_bias_correction_first_step_magnitude(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * 2.0).sum().backward()
        opt.step()
        # first Adam step is ~lr regardless of gradient scale
        assert abs((1.0 - p.data[0]) - 0.1) < 1e-6

    def test_clip_grad_norm(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([30.0, 40.0])
        norm = clip_grad_norm([p], max_norm=5.0)
        assert abs(norm - 50.0) < 1e-9
        assert abs(np.linalg.norm(p.grad) - 5.0) < 1e-9

    def test_clip_noop_under_limit(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=5.0)
        assert np.allclose(p.grad, [0.5])


class TestLosses:
    def test_bce_with_logits_matches_reference(self, rng):
        logits = Tensor(rng.normal(size=(8,)), requires_grad=True)
        targets = rng.integers(0, 2, size=8).astype(float)
        loss = bce_with_logits(logits, targets)
        probs = 1 / (1 + np.exp(-logits.data))
        reference = -(targets * np.log(probs)
                      + (1 - targets) * np.log(1 - probs)).mean()
        assert abs(float(loss.data) - reference) < 1e-9

    def test_bce_with_logits_gradient(self, rng):
        logits = Tensor(rng.normal(size=(6,)), requires_grad=True)
        targets = rng.integers(0, 2, size=6).astype(float)
        bce_with_logits(logits, targets).backward()
        numeric = numerical_gradient(
            lambda: float(bce_with_logits(Tensor(logits.data),
                                          targets).data),
            logits.data)
        assert_grad_close(logits.grad, numeric, 1e-6)

    def test_bce_with_logits_stable_at_extremes(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert float(loss.data) < 1e-6

    def test_bce_loss_on_probabilities(self, rng):
        probs = Tensor(rng.uniform(0.1, 0.9, size=(5,)),
                       requires_grad=True)
        targets = rng.integers(0, 2, size=5).astype(float)
        bce_loss(probs, targets).backward()
        numeric = numerical_gradient(
            lambda: float(bce_loss(Tensor(probs.data), targets).data),
            probs.data)
        assert_grad_close(probs.grad, numeric, 1e-5)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert abs(float(loss.data) - 2.5) < 1e-9


class TestBatching:
    def samples(self):
        return [Sample(tuple(range(length)), length % 2)
                for length in (3, 3, 5, 5, 5, 8)]

    def test_pad_or_truncate(self):
        assert pad_or_truncate([1, 2, 3], 5) == [1, 2, 3, 0, 0]
        assert pad_or_truncate([1, 2, 3, 4], 2) == [1, 2]

    def test_fixed_length_batches_shapes(self):
        batches = list(fixed_length_batches(self.samples(), length=4,
                                            batch_size=4))
        assert all(ids.shape[1] == 4 for ids, _ in batches)
        assert sum(len(labels) for _, labels in batches) == 6

    def test_bucketed_batches_no_padding(self):
        batches = list(bucketed_batches(self.samples(), batch_size=8))
        lengths = sorted(ids.shape[1] for ids, _ in batches)
        assert lengths == [3, 5, 8]

    def test_bucketed_batches_cover_all_samples(self):
        total = sum(len(labels) for _, labels
                    in bucketed_batches(self.samples(), batch_size=2))
        assert total == 6

    def test_bucketed_min_length_pads_tiny(self):
        samples = [Sample((1,), 0)]
        ((ids, _),) = list(bucketed_batches(samples, 4, min_length=4))
        assert ids.shape == (1, 4)

    def test_shuffling_is_seeded(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = [ids.tolist() for ids, _ in
             fixed_length_batches(self.samples(), 4, 2, rng1)]
        b = [ids.tolist() for ids, _ in
             fixed_length_batches(self.samples(), 4, 2, rng2)]
        assert a == b


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        src = Linear(4, 3, rng)
        path = tmp_path / "model.npz"
        save_model(src, path, metadata={"kind": "test"})
        dst = Linear(4, 3, np.random.default_rng(999))
        metadata = load_model(dst, path)
        assert metadata == {"kind": "test"}
        assert np.allclose(src.weight.data, dst.weight.data)
        assert np.allclose(src.bias.data, dst.bias.data)

    def test_save_without_metadata(self, rng, tmp_path):
        src = Linear(2, 2, rng)
        path = tmp_path / "model.npz"
        save_model(src, path)
        assert load_model(Linear(2, 2, rng), path) == {}
