"""Tests for paired bootstrap significance comparison."""

import numpy as np
import pytest

from repro.eval.significance import paired_bootstrap


def make_data(n=400, quality_a=0.9, quality_b=0.6, seed=0):
    """Synthetic scores: each system outputs label-correlated scores
    with its own noise level (lower quality = more noise)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    noise_a = rng.normal(0, 1 - quality_a, size=n)
    noise_b = rng.normal(0, 1 - quality_b, size=n)
    scores_a = np.clip(labels * quality_a + 0.5 * (1 - quality_a)
                       + noise_a, 0, 1)
    scores_b = np.clip(labels * quality_b + 0.5 * (1 - quality_b)
                       + noise_b, 0, 1)
    return scores_a, scores_b, labels


class TestPairedBootstrap:
    def test_clear_winner_significant(self):
        scores_a, scores_b, labels = make_data()
        result = paired_bootstrap(scores_a, scores_b, labels,
                                  resamples=500, seed=1)
        assert result.delta > 0
        assert result.significant
        assert result.wins > 0.95
        assert result.p_value < 0.05

    def test_identical_systems_not_significant(self):
        scores_a, _, labels = make_data()
        result = paired_bootstrap(scores_a, scores_a, labels,
                                  resamples=300, seed=1)
        assert result.delta == 0.0
        assert not result.significant
        assert result.ci_low <= 0.0 <= result.ci_high

    def test_symmetry(self):
        scores_a, scores_b, labels = make_data()
        forward = paired_bootstrap(scores_a, scores_b, labels,
                                   resamples=300, seed=2)
        backward = paired_bootstrap(scores_b, scores_a, labels,
                                    resamples=300, seed=2)
        assert abs(forward.delta + backward.delta) < 1e-12

    def test_ci_ordered(self):
        scores_a, scores_b, labels = make_data(seed=5)
        result = paired_bootstrap(scores_a, scores_b, labels,
                                  resamples=200, seed=3)
        assert result.ci_low <= result.ci_high

    def test_input_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap([0.5], [0.5, 0.6], [1, 0])
        with pytest.raises(ValueError):
            paired_bootstrap([], [], [])

    def test_deterministic_given_seed(self):
        scores_a, scores_b, labels = make_data()
        one = paired_bootstrap(scores_a, scores_b, labels,
                               resamples=200, seed=7)
        two = paired_bootstrap(scores_a, scores_b, labels,
                               resamples=200, seed=7)
        assert one == two
