#!/usr/bin/env python3
"""The paper's Fig 1 motivating example, end to end.

Shows why path-insensitive code gadgets are fundamentally limited: the
guarded and unguarded programs below yield *identical* classic gadgets
(so no classifier can separate them) but *distinct* path-sensitive
gadgets (Algorithm 1 keeps the scope boundaries).  The script prints
both gadget forms side by side and verifies the claim, then executes
both programs in the bundled memory-safety interpreter to demonstrate
the semantic difference is real.
"""

from repro.lang.callgraph import analyze
from repro.lang.interp import run_program
from repro.slicing.gadget import classic_gadget
from repro.slicing.path_sensitive import path_sensitive_gadget
from repro.slicing.special_tokens import find_special_tokens

SAFE = """\
void fun1(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 0;
        strncpy(dest, data, n);
    }
    printf("%s", dest);
}

int main() {
    char line[64];
    fgets(line, 64, 0);
    fun1(line, atoi(line));
    return 0;
}
"""

VULN = """\
void fun1(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 0;
    }
    strncpy(dest, data, n);
    printf("%s", dest);
}

int main() {
    char line[64];
    fgets(line, 64, 0);
    fun1(line, atoi(line));
    return 0;
}
"""


def gadget_pair(source: str):
    program = analyze(source)
    criterion = [c for c in find_special_tokens(program)
                 if c.token == "strncpy"][0]
    return (classic_gadget(program, criterion),
            path_sensitive_gadget(program, criterion))


def main() -> None:
    print("=== Fig 1: the motivating example ===\n")
    cg_safe, ps_safe = gadget_pair(SAFE)
    cg_vuln, ps_vuln = gadget_pair(VULN)

    print("--- classic gadget (guarded program) ---")
    print(cg_safe.text())
    print("\n--- classic gadget (unguarded program) ---")
    print(cg_vuln.text())
    identical = cg_safe.text() == cg_vuln.text()
    print(f"\nclassic gadgets identical: {identical}")
    assert identical, "expected identical classic gadgets"

    print("\n--- path-sensitive gadget (guarded) ---")
    for line in ps_safe.lines:
        print(f"  [{line.role:15s}] {line.text}")
    print("\n--- path-sensitive gadget (unguarded) ---")
    for line in ps_vuln.lines:
        print(f"  [{line.role:15s}] {line.text}")
    print(f"\npath-sensitive gadgets identical: "
          f"{ps_safe.text() == ps_vuln.text()}")
    assert ps_safe.text() != ps_vuln.text()

    print("\n--- execution oracle (input: '31') ---")
    attack = b"31\n"  # n = 31: the guard skips the copy; the
    # unguarded variant copies 31 bytes into dest[10]
    safe_result = run_program(SAFE, stdin=attack, max_steps=20_000)
    vuln_result = run_program(VULN, stdin=attack, max_steps=20_000)
    print(f"guarded program : crashed={safe_result.crashed}")
    print(f"unguarded program: crashed={vuln_result.crashed} "
          f"({vuln_result.violation})")
    assert not safe_result.crashed and vuln_result.crashed

    print("\nConclusion: identical classic gadgets, different ground "
          "truth — any\npath-insensitive detector scores 50% on this "
          "pair; Algorithm 1's scope\nboundaries make the pair "
          "separable.")


if __name__ == "__main__":
    main()
