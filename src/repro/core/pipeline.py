"""End-to-end dataset preparation and training (paper Fig 2 glue).

The pipeline turns :class:`~repro.datasets.manifest.TestCase` programs
into labeled, normalized, encoded gadget samples (Steps I-IV's data
path) and provides the generic train/evaluate loops both the SEVulDet
model and the BRNN baselines share (Step V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..datasets.manifest import TestCase
from ..embedding.vocab import Vocabulary
from ..embedding.word2vec import Word2Vec
from ..eval.metrics import Metrics, confusion_from, metrics_from
from ..lang.callgraph import analyze
from ..lang.parser import ParseError
from ..nn import (Adam, Module, Sample, bce_with_logits,
                  bucketed_batches, clip_grad_norm, fixed_length_batches,
                  no_grad, pad_or_truncate)
from ..slicing.gadget import CodeGadget, classic_gadget
from ..slicing.labeling import label_gadget
from ..slicing.normalize import NormalizedGadget, normalize_gadget
from ..slicing.path_sensitive import path_sensitive_gadget
from ..slicing.special_tokens import (SlicingCriterion, TokenCategory,
                                      find_special_tokens)

__all__ = ["LabeledGadget", "EncodedDataset", "extract_gadgets",
           "encode_gadgets", "train_classifier", "predict_proba",
           "evaluate_classifier", "TrainReport"]

_CATEGORY_MAP = {
    "FC": TokenCategory.FUNCTION_CALL,
    "AU": TokenCategory.ARRAY_USAGE,
    "PU": TokenCategory.POINTER_USAGE,
    "AE": TokenCategory.ARITHMETIC_EXPR,
}


@dataclass
class LabeledGadget:
    """A normalized gadget with label and provenance."""

    tokens: tuple[str, ...]
    label: int
    category: str
    case_name: str
    criterion: SlicingCriterion
    kind: str  # 'classic' | 'path-sensitive'
    gadget: CodeGadget | None = None
    cwe: str = ""  # CWE id of the originating case ('' when unknown)

    def sample(self, vocab: Vocabulary) -> Sample:
        return Sample(tuple(vocab.encode(list(self.tokens))), self.label)


def extract_gadgets(
    cases: Sequence[TestCase],
    kind: str = "path-sensitive",
    categories: tuple[str, ...] | None = None,
    *,
    use_control: bool = True,
    deduplicate: bool = True,
    keep_gadget: bool = False,
) -> list[LabeledGadget]:
    """Steps I-III: slice, assemble, label, and normalize every case.

    Args:
        cases: corpus programs.
        kind: 'path-sensitive' (Algorithm 1) or 'classic' (the CG
            baseline the paper compares against in Table II).
        categories: restrict criteria to these families.
        use_control: follow control-dependence edges while slicing
            (False reproduces VulDeePecker's data-only gadgets; only
            meaningful for kind='classic').
        deduplicate: drop exact (tokens, label) duplicates, as the
            paper does after merging corpora.
        keep_gadget: retain the raw gadget object (needed by the
            attention visualization, costs memory otherwise).
    """
    if kind not in ("path-sensitive", "classic"):
        raise ValueError(f"unknown gadget kind {kind!r}")
    wanted = None
    if categories is not None:
        wanted = frozenset(_CATEGORY_MAP[c] for c in categories)
    results: list[LabeledGadget] = []
    seen: set[tuple[tuple[str, ...], int]] = set()
    for case in cases:
        try:
            program = analyze(case.source, path=case.name)
        except ParseError:
            continue  # real pipelines skip unparseable units
        manifest = case.manifest()
        for criterion in find_special_tokens(program, wanted):
            if kind == "path-sensitive":
                gadget = path_sensitive_gadget(program, criterion)
            else:
                gadget = classic_gadget(program, criterion,
                                        use_control=use_control)
            if not gadget.lines:
                continue
            gadget.label = label_gadget(gadget, manifest)
            normalized = normalize_gadget(gadget)
            key = (tuple(normalized.tokens), gadget.label)
            if deduplicate and key in seen:
                continue
            seen.add(key)
            results.append(
                LabeledGadget(
                    tokens=tuple(normalized.tokens),
                    label=gadget.label,
                    category=criterion.category.value,
                    case_name=case.name,
                    criterion=criterion,
                    kind=kind,
                    gadget=gadget if keep_gadget else None,
                    cwe=case.cwe))
    return results


@dataclass
class EncodedDataset:
    """Vocabulary + pretrained embeddings + encoded samples."""

    samples: list[Sample]
    vocab: Vocabulary
    word2vec: Word2Vec
    gadgets: list[LabeledGadget] = field(default_factory=list)

    @property
    def labels(self) -> np.ndarray:
        return np.array([sample.label for sample in self.samples])

    def subset(self, indices: Sequence[int]) -> list[Sample]:
        return [self.samples[i] for i in indices]


def encode_gadgets(gadgets: Sequence[LabeledGadget], dim: int = 30,
                   w2v_epochs: int = 2, seed: int = 13,
                   vocab: Vocabulary | None = None,
                   word2vec: Word2Vec | None = None,
                   min_count: int = 2) -> EncodedDataset:
    """Step IV input side: build vocab, pretrain word2vec, encode.

    ``min_count`` trims tokens (mostly rare numeric constants) seen
    fewer times from the vocabulary; they encode as UNK, exactly as
    gensim's word2vec (min_count=5 by default) did in the paper's
    toolchain.  Rare-constant trimming is what lets patterns learned
    on one instantiation of a CWE template transfer to instantiations
    with different buffer sizes and thresholds.
    """
    if vocab is None:
        vocab = Vocabulary.build([list(g.tokens) for g in gadgets],
                                 min_count=min_count)
    if word2vec is None:
        word2vec = Word2Vec(vocab, dim=dim, seed=seed)
        corpora = [vocab.encode(list(g.tokens)) for g in gadgets]
        word2vec.train(corpora, epochs=w2v_epochs)
    samples = [g.sample(vocab) for g in gadgets]
    return EncodedDataset(samples, vocab, word2vec, list(gadgets))


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    val_f1: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_classifier(model: Module, samples: Sequence[Sample], *,
                     epochs: int = 8, batch_size: int = 16,
                     lr: float = 3e-3, seed: int = 0,
                     grad_clip: float = 5.0,
                     class_balance: bool = True,
                     validation: Sequence[Sample] | None = None,
                     patience: int | None = None) -> TrainReport:
    """Train any gadget classifier (fixed- or flexible-length).

    Models advertising ``fixed_length`` get padded/truncated batches
    (Definition 8); flexible models get length-bucketed batches with no
    padding.  With ``class_balance`` the minority class is oversampled
    to a 1:2 ratio, compensating for the gadget-level imbalance the
    paper reports (and chooses not to rebalance at the *data* level —
    we rebalance only the sampling, keeping the data unbalanced).

    With a ``validation`` set and ``patience``, training stops when
    validation F1 has not improved for ``patience`` consecutive epochs
    and the best-epoch weights are restored (early stopping).
    """
    rng = np.random.default_rng(seed)
    fixed = getattr(model, "fixed_length", None)
    train_samples = list(samples)
    if class_balance:
        train_samples = _oversample(train_samples, rng)
    params = list(model.parameters())
    optimizer = Adam(params, lr=lr)
    report = TrainReport()
    best_f1 = -1.0
    best_state: dict[str, np.ndarray] | None = None
    stale = 0
    model.train()
    for _ in range(epochs):
        epoch_losses: list[float] = []
        if fixed is not None:
            batches = fixed_length_batches(train_samples, fixed,
                                           batch_size, rng)
        else:
            batches = bucketed_batches(train_samples, batch_size, rng,
                                       min_length=4)
        for ids, labels in batches:
            optimizer.zero_grad()
            logits = model(ids)
            loss = bce_with_logits(logits, labels)
            loss.backward()
            clip_grad_norm(params, grad_clip)
            optimizer.step()
            epoch_losses.append(float(loss.data))
        report.losses.append(float(np.mean(epoch_losses))
                             if epoch_losses else float("nan"))
        if validation is not None:
            metrics = evaluate_classifier(model, validation)
            model.train()
            report.val_f1.append(metrics.f1)
            if metrics.f1 > best_f1:
                best_f1 = metrics.f1
                best_state = {key: value.copy() for key, value
                              in model.state_dict().items()}
                report.best_epoch = len(report.losses) - 1
                stale = 0
            else:
                stale += 1
                if patience is not None and stale >= patience:
                    report.stopped_early = True
                    break
    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return report


def _oversample(samples: list[Sample],
                rng: np.random.Generator) -> list[Sample]:
    positives = [s for s in samples if s.label == 1]
    negatives = [s for s in samples if s.label == 0]
    if not positives or not negatives:
        return samples
    minority, majority = ((positives, negatives)
                          if len(positives) < len(negatives)
                          else (negatives, positives))
    target = max(len(majority) // 2, len(minority))
    extra = target - len(minority)
    if extra <= 0:
        return samples
    picks = rng.integers(0, len(minority), size=extra)
    return samples + [minority[int(i)] for i in picks]


def predict_proba(model: Module,
                  samples: Sequence[Sample]) -> np.ndarray:
    """Sigmoid scores per sample (order-preserving)."""
    fixed = getattr(model, "fixed_length", None)
    scores = np.zeros(len(samples))
    model.eval()
    with no_grad():
        if fixed is not None:
            for start in range(0, len(samples), 64):
                chunk = samples[start : start + 64]
                ids = np.array(
                    [pad_or_truncate(s.token_ids, fixed) for s in chunk],
                    dtype=np.int64)
                scores[start : start + 64] = model.predict_proba(ids)
        else:
            by_length: dict[int, list[int]] = {}
            for index, sample in enumerate(samples):
                by_length.setdefault(max(len(sample), 4),
                                     []).append(index)
            for length, indices in by_length.items():
                for start in range(0, len(indices), 64):
                    chunk = indices[start : start + 64]
                    ids = np.array(
                        [pad_or_truncate(samples[i].token_ids, length)
                         for i in chunk], dtype=np.int64)
                    scores[chunk] = model.predict_proba(ids)
    return scores


def evaluate_classifier(model: Module, samples: Sequence[Sample],
                        threshold: float = 0.5) -> Metrics:
    """Confusion-matrix metrics at a decision threshold."""
    scores = predict_proba(model, samples)
    predictions = (scores >= threshold).astype(int)
    labels = [sample.label for sample in samples]
    return metrics_from(confusion_from(predictions.tolist(), labels))
