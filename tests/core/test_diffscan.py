"""Diff-aware and watch-mode incremental scanning, end to end.

The load-bearing invariant: incremental verdicts are *byte-identical*
to a cold scan of the same tree — every cache layer (in-memory
verdicts, per-function components) only ever skips work, never changes
results.  On top of that, the accounting tests pin exactly which
functions re-slice after an edit: the edited call component and
nothing else.
"""

import json

import pytest

from repro.core import SCALE_PRESETS, SEVulDet
from repro.core.diffscan import (DiffScanner, VerdictDelta, WatchLoop,
                                 compute_deltas, deltas_as_jsonl)
from repro.core.serve import ScanService, case_for_file
from repro.datasets.sard import generate_sard_corpus

VULN_SOURCE = """\
void sink(char *data) {
    char buf[4];
    strcpy(buf, data);
}
int main() {
    char line[64];
    fgets(line, 64, 0);
    sink(line);
    return 0;
}
"""

BETA_SOURCE = """\
int helper(int n) {
    char buf[8];
    buf[0] = n;
    return buf[0] + 1;
}
int compute(int n) {
    char out[8];
    out[0] = helper(n);
    return out[0];
}
"""

GAMMA_SOURCE = """\
int gamma_one(int n) {
    char buf[8];
    buf[0] = n;
    return buf[0] + 3;
}
int gamma_two(int n) {
    char out[8];
    out[0] = n;
    return out[0] + 5;
}
"""

CLEAN_SOURCE = "int main() { int a = 1; return a; }\n"


@pytest.fixture(scope="module")
def detector():
    det = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
    det.fit(generate_sard_corpus(80, seed=31))
    det.threshold = 0.5
    return det


def write_tree(root, files):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


BASE_FILES = {
    "pkg/alpha.c": VULN_SOURCE,
    "pkg/beta.c": BETA_SOURCE,
    "pkg/gamma.c": GAMMA_SOURCE,
}

TARGET_FILES = {
    # unchanged: must not re-scan at all
    "pkg/alpha.c": VULN_SOURCE,
    # callee body edit: helper's component is {helper, compute}
    "pkg/beta.c": BETA_SOURCE.replace("return buf[0] + 1;",
                                      "return buf[0] + 2;"),
    # comment-only edit on an existing line: no fingerprint moves
    "pkg/gamma.c": GAMMA_SOURCE.replace(
        "return buf[0] + 3;", "return buf[0] + 3; /* audited */"),
}


def _rec(status, score=None):
    record = {"status": status, "findings": []}
    if score is not None:
        record["findings"] = [{"score": score}]
    return record


class TestComputeDeltas:
    def test_added_changed_cleared(self):
        before = {"a.c": _rec("flagged", 0.9), "b.c": _rec("clean"),
                  "c.c": _rec("flagged", 0.8), "d.c": _rec("clean")}
        after = {"a.c": _rec("flagged", 0.7), "b.c": _rec("flagged", 0.6),
                 "c.c": _rec("clean"), "d.c": _rec("clean")}
        deltas = compute_deltas(before, after)
        assert [(d.event, d.name) for d in deltas] == [
            ("changed", "a.c"), ("added", "b.c"), ("cleared", "c.c")]

    def test_removed_flagged_file_clears(self):
        deltas = compute_deltas({"gone.c": _rec("flagged", 0.9)}, {})
        assert [(d.event, d.name, d.verdict) for d in deltas] == [
            ("cleared", "gone.c", None)]

    def test_quiet_transitions_emit_nothing(self):
        before = {"a.c": _rec("clean")}
        after = {"a.c": _rec("skipped"), "new.c": _rec("clean")}
        assert compute_deltas(before, after) == []

    def test_identical_flagged_record_is_silent(self):
        record = _rec("flagged", 0.9)
        assert compute_deltas({"a.c": record}, {"a.c": dict(record)}) \
            == []

    def test_jsonl_lines_are_stable(self):
        deltas = [VerdictDelta("added", "a.c", _rec("flagged", 0.5),
                               None)]
        lines = list(deltas_as_jsonl(deltas))
        assert lines == list(deltas_as_jsonl(deltas))
        assert json.loads(lines[0])["event"] == "added"


class TestDiffScanner:
    def test_verdicts_byte_identical_to_cold_scan(self, detector,
                                                  tmp_path):
        base = write_tree(tmp_path / "base", BASE_FILES)
        target = write_tree(tmp_path / "target", TARGET_FILES)
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            report = DiffScanner(service).diff(base, target)
        # a fresh service, no function cache, scanning the target
        # alone: the incremental run must reproduce it byte for byte
        with ScanService(detector, workers=2,
                         batch_size=8) as fresh:
            cold = DiffScanner(fresh).scan_tree(target)
        assert report.verdicts == cold

    def test_changed_files_and_frontier(self, detector, tmp_path):
        base = write_tree(tmp_path / "base", BASE_FILES)
        target = write_tree(tmp_path / "target", TARGET_FILES)
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            report = DiffScanner(service).diff(base, target)
        assert report.changed_files == ["pkg/beta.c", "pkg/gamma.c"]
        # editing helper invalidates its caller too
        assert report.frontier["pkg/beta.c"] == ["compute", "helper"]
        # a comment-only edit moves no fingerprints
        assert report.frontier["pkg/gamma.c"] == []
        # nothing went from clean to flagged
        assert report.deltas == []
        assert not report.dirty

    def test_only_the_edited_component_reslices(self, detector,
                                                tmp_path):
        base = write_tree(tmp_path / "base", BASE_FILES)
        target = write_tree(tmp_path / "target", TARGET_FILES)
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            scanner = DiffScanner(service)
            scanner.scan_tree(base)
            telemetry = service.telemetry
            analyzed = telemetry.calls("analyze")
            misses = telemetry.get("fn_cache_misses") or 0
            hits = telemetry.get("fn_cache_hits") or 0
            # base scan was all-cold: every function group missed
            assert misses == 6 and hits == 0
            scanner.scan_tree(target)
            # alpha.c is byte-identical -> result-cache hit, not even
            # re-analyzed; only the two changed files parse again
            assert telemetry.calls("analyze") - analyzed == 2
            # beta.c: helper's edit invalidates {helper, compute};
            # gamma.c's comment edit invalidates nothing, so both its
            # function groups come back from the cache
            assert (telemetry.get("fn_cache_misses") or 0) \
                - misses == 2
            assert (telemetry.get("fn_cache_hits") or 0) - hits == 2

    def test_new_vulnerability_is_added_and_dirty(self, detector,
                                                  tmp_path):
        base = write_tree(tmp_path / "base", dict(
            BASE_FILES, **{"pkg/delta.c": CLEAN_SOURCE}))
        target = write_tree(tmp_path / "target", dict(
            TARGET_FILES, **{"pkg/delta.c": VULN_SOURCE}))
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            report = DiffScanner(service).diff(base, target)
        assert [(d.event, d.name) for d in report.deltas] == [
            ("added", "pkg/delta.c")]
        assert report.dirty
        # alpha.c is flagged in both trees with an identical record:
        # no delta for it
        assert report.verdicts["pkg/alpha.c"]["status"] == "flagged"

    def test_fixed_vulnerability_clears(self, detector, tmp_path):
        base = write_tree(tmp_path / "base", BASE_FILES)
        target = write_tree(tmp_path / "target", dict(
            TARGET_FILES, **{"pkg/alpha.c": CLEAN_SOURCE}))
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            report = DiffScanner(service).diff(base, target)
        assert [(d.event, d.name) for d in report.deltas] == [
            ("cleared", "pkg/alpha.c")]
        assert not report.dirty  # clearing a finding never gates

    def test_scan_names_mode(self, detector, tmp_path):
        target = write_tree(tmp_path / "target", dict(
            TARGET_FILES, **{"README.md": "# docs\n"}))
        names = ["pkg/alpha.c", "pkg/beta.c", "README.md",
                 "pkg/removed.c", "", "  "]
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            report = DiffScanner(service).scan_names(target, names)
        # non-.c and missing names are skipped silently
        assert report.changed_files == ["pkg/alpha.c", "pkg/beta.c"]
        assert set(report.verdicts) == {"pkg/alpha.c", "pkg/beta.c"}
        # no baseline: flagged listed files surface as added
        assert [(d.event, d.name) for d in report.deltas] == [
            ("added", "pkg/alpha.c")]
        assert report.dirty


class TestWatchLoop:
    def test_first_poll_emits_added_for_flagged(self, detector,
                                                tmp_path):
        root = write_tree(tmp_path / "tree", BASE_FILES)
        emitted = []
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            loop = WatchLoop(service, root, emit=emitted.append)
            deltas = loop.poll()
        assert [(d.event, d.name) for d in deltas] == [
            ("added", "pkg/alpha.c")]
        assert emitted == deltas

    def test_quiet_poll_rescans_nothing(self, detector, tmp_path):
        root = write_tree(tmp_path / "tree", BASE_FILES)
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            loop = WatchLoop(service, root)
            loop.poll()
            analyzed = service.telemetry.calls("analyze")
            assert loop.poll() == []
            # untouched tree: not a single case re-entered the engine
            assert service.telemetry.calls("analyze") == analyzed

    def test_edit_emits_delta_without_reemitting_others(
            self, detector, tmp_path):
        root = write_tree(tmp_path / "tree", BASE_FILES)
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            loop = WatchLoop(service, root)
            loop.poll()
            # beta.c turns vulnerable; alpha.c stays flagged but must
            # not re-emit
            (root / "pkg/beta.c").write_text(VULN_SOURCE)
            deltas = loop.poll()
            assert [(d.event, d.name) for d in deltas] == [
                ("added", "pkg/beta.c")]
            # ...and turns clean again
            (root / "pkg/beta.c").write_text(BETA_SOURCE)
            deltas = loop.poll()
            assert [(d.event, d.name) for d in deltas] == [
                ("cleared", "pkg/beta.c")]

    def test_removed_flagged_file_clears(self, detector, tmp_path):
        root = write_tree(tmp_path / "tree", BASE_FILES)
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            loop = WatchLoop(service, root)
            loop.poll()
            (root / "pkg/alpha.c").unlink()
            deltas = loop.poll()
        assert [(d.event, d.name, d.verdict) for d in deltas] == [
            ("cleared", "pkg/alpha.c", None)]

    def test_run_paces_with_injected_clock(self, detector, tmp_path):
        root = write_tree(tmp_path / "tree",
                          {"pkg/gamma.c": GAMMA_SOURCE})
        ticks = iter(range(1000))
        sleeps = []
        with ScanService(detector, workers=2, batch_size=8,
                         fn_cache=tmp_path / "fncache") as service:
            loop = WatchLoop(service, root, interval=5.0, max_polls=3,
                             clock=lambda: float(next(ticks)),
                             sleep=sleeps.append)
            polls = loop.run()
        assert polls == 3
        # two sleeps between three polls, each interval minus the
        # 1-tick poll cost
        assert sleeps == [4.0, 4.0]


class TestScanStreamDeterminism:
    def test_workers_4_stream_matches_workers_1(self, detector):
        corpus = generate_sard_corpus(24, seed=77)
        with ScanService(detector, workers=1,
                         batch_size=4) as service:
            reference = [v.as_record()
                         for v in service.scan_stream(corpus)]
        with ScanService(detector, workers=4,
                         batch_size=8) as service:
            streamed = [v.as_record()
                        for v in service.scan_stream(corpus)]
        assert [r["name"] for r in streamed] == \
            [case.name for case in corpus]
        assert streamed == reference

    def test_stream_jsonl_bytes_reproducible(self, detector):
        corpus = generate_sard_corpus(24, seed=78)
        runs = []
        for _ in range(2):
            with ScanService(detector, workers=4,
                             batch_size=8) as service:
                runs.append("\n".join(
                    json.dumps(v.as_record(), sort_keys=True)
                    for v in service.scan_stream(corpus)))
        assert runs[0] == runs[1]
