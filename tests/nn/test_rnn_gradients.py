"""Numerical gradient checks for the recurrent cells and layers."""

import numpy as np

from repro.nn import Bidirectional, GRUCell, LSTMCell, RNNLayer, Tensor

from .conftest import assert_grad_close, numerical_gradient


class TestLSTMGradients:
    def test_cell_weight_gradient(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = rng.normal(size=(2, 3))
        h0 = rng.normal(size=(2, 4))
        c0 = rng.normal(size=(2, 4))

        def loss():
            h, c = cell(Tensor(x), Tensor(h0), Tensor(c0))
            return float((h.data ** 2).sum() + (c.data ** 2).sum())

        h, c = cell(Tensor(x), Tensor(h0), Tensor(c0))
        ((h * h).sum() + (c * c).sum()).backward()
        assert_grad_close(cell.w.grad,
                          numerical_gradient(loss, cell.w.data), 1e-5)
        assert_grad_close(cell.b.grad,
                          numerical_gradient(loss, cell.b.data), 1e-5)

    def test_unrolled_sequence_gradient(self, rng):
        layer = RNNLayer(2, 3, rng, kind="lstm")
        x_data = rng.normal(size=(1, 4, 2))

        def loss():
            outputs, final = layer(Tensor(x_data))
            return float((final.data ** 2).sum())

        x = Tensor(x_data.copy(), requires_grad=True)
        _, final = layer(x)
        (final * final).sum().backward()
        assert_grad_close(x.grad, numerical_gradient(loss, x_data),
                          1e-5)


class TestGRUGradients:
    def test_cell_weight_gradients(self, rng):
        cell = GRUCell(3, 4, rng)
        x = rng.normal(size=(2, 3))
        h0 = rng.normal(size=(2, 4))

        def loss():
            h = cell(Tensor(x), Tensor(h0))
            return float((h.data ** 2).sum())

        h = cell(Tensor(x), Tensor(h0))
        (h * h).sum().backward()
        for param in (cell.w_zr, cell.b_zr, cell.w_h, cell.b_h):
            assert_grad_close(param.grad,
                              numerical_gradient(loss, param.data),
                              1e-5)

    def test_input_gradient_through_time(self, rng):
        layer = RNNLayer(2, 3, rng, kind="gru", reverse=True)
        x_data = rng.normal(size=(1, 3, 2))

        def loss():
            outputs, _ = layer(Tensor(x_data))
            return float((outputs.data ** 2).sum())

        x = Tensor(x_data.copy(), requires_grad=True)
        outputs, _ = layer(x)
        (outputs * outputs).sum().backward()
        assert_grad_close(x.grad, numerical_gradient(loss, x_data),
                          1e-5)


class TestBidirectionalGradients:
    def test_both_directions_receive_gradient(self, rng):
        layer = Bidirectional(2, 3, rng, kind="gru")
        x = Tensor(rng.normal(size=(2, 4, 2)), requires_grad=True)
        _, final = layer(x)
        (final * final).sum().backward()
        fwd_grad = sum(
            float(np.abs(p.grad).sum())
            for p in layer.forward_rnn.parameters()
            if p.grad is not None)
        bwd_grad = sum(
            float(np.abs(p.grad).sum())
            for p in layer.backward_rnn.parameters()
            if p.grad is not None)
        assert fwd_grad > 0 and bwd_grad > 0

    def test_input_gradient_numerical(self, rng):
        layer = Bidirectional(2, 2, rng, kind="lstm")
        x_data = rng.normal(size=(1, 3, 2))

        def loss():
            _, final = layer(Tensor(x_data))
            return float((final.data ** 2).sum())

        x = Tensor(x_data.copy(), requires_grad=True)
        _, final = layer(x)
        (final * final).sum().backward()
        assert_grad_close(x.grad, numerical_gradient(loss, x_data),
                          1e-5)
