"""Table V (RQ3) — SEVulDet vs VulDeePecker vs SySeVR per category.

Each vulnerability category is one matrix column (a
:class:`FixedCorpusAdapter` over its restricted corpus) and each
framework one :class:`FrameworkDetector` row; VulDeePecker only rides
the FC column, exactly as in the paper.  Paper shape: SEVulDet's F1
exceeds the baselines in every category (FC/AU/PU/AE and All);
single-type F1 >= all-type F1 for SEVulDet.
"""

from repro.datasets.adapters import FixedCorpusAdapter
from repro.datasets.sard import generate_sard_corpus
from repro.eval.detector import FrameworkDetector
from repro.eval.matrix import MatrixRunner

from conftest import run_once

PAPER_F1 = {
    ("VulDeePecker", "FC"): 81.0, ("SySeVR", "FC"): 90.9,
    ("SEVulDet", "FC"): 94.9,
    ("SySeVR", "AU"): 90.2, ("SEVulDet", "AU"): 94.8,
    ("SySeVR", "PU"): 80.1, ("SEVulDet", "PU"): 91.9,
    ("SySeVR", "AE"): 94.9, ("SEVulDet", "AE"): 96.3,
    ("SySeVR", "All"): 85.9, ("SEVulDet", "All"): 91.3,
}

RUNS = [
    ("VulDeePecker", "FC"), ("SySeVR", "FC"), ("SEVulDet", "FC"),
    ("SySeVR", "AU"), ("SEVulDet", "AU"),
    ("SySeVR", "PU"), ("SEVulDet", "PU"),
    ("SySeVR", "AE"), ("SEVulDet", "AE"),
    ("SySeVR", "All"), ("SEVulDet", "All"),
]

CATEGORIES = ("FC", "AU", "PU", "AE", "All")


def _corpora(scale, category):
    # Single-category corpora yield fewer in-category gadgets per
    # program, so they get proportionally more programs.
    restrict = None if category == "All" else (category,)
    multiplier = 1 if category == "All" else 5 / 3
    count = int(scale.cases_per_experiment * multiplier)
    train = generate_sard_corpus(count, seed=301, categories=restrict)
    test = generate_sard_corpus(max(count // 2, 20), seed=302,
                                categories=restrict)
    return train, test


def test_table5_rq3_framework_comparison(benchmark, reporter, scale):
    def experiment():
        # One matrix per category column: the detector lineup differs
        # (VulDeePecker is FC-only), so the grid is ragged.
        cells = {}
        for category in CATEGORIES:
            train, test = _corpora(scale, category)
            wanted = None if category == "All" else (category,)
            frameworks = [f for f, c in RUNS if c == category]
            detectors = [
                FrameworkDetector(name, scale, seed=29,
                                  categories=wanted)
                for name in frameworks
            ]
            result = MatrixRunner(
                detectors,
                [FixedCorpusAdapter(f"sard-{category}", train, test)],
                baseline="SySeVR", seed=29, resamples=200).run()
            for framework in frameworks:
                cells[(framework, category)] = result.cell(
                    framework, f"sard-{category}")
        return cells

    cells = run_once(benchmark, experiment)

    for key, cell in cells.items():
        assert cell.ok, (key, cell.error)
    results = {key: cell.metrics for key, cell in cells.items()}

    table = reporter("table5_rq3",
                     "Table V — RQ3: deep-learning framework comparison")
    for framework, category in RUNS:
        row = results[(framework, category)].as_percentages()
        table.add(work=f"{framework}-{category}", **row,
                  paper_F1=PAPER_F1[(framework, category)])
    table.save_and_print()

    # Shape 1: SEVulDet wins every category on F1 (small tolerance for
    # scaled-down training noise).
    for category in CATEGORIES:
        sevuldet = results[("SEVulDet", category)].f1
        sysevr = results[("SySeVR", category)].f1
        assert sevuldet >= sysevr - 0.02, (category, sevuldet, sysevr)
    assert results[("SEVulDet", "FC")].f1 >= \
        results[("VulDeePecker", "FC")].f1 - 0.02

    # Shape 2: the average single-type F1 of SEVulDet is at least its
    # all-type F1 (paper: specialisation helps).
    singles = [results[("SEVulDet", c)].f1
               for c in ("FC", "AU", "PU", "AE")]
    assert sum(singles) / 4 >= results[("SEVulDet", "All")].f1 - 0.05
