"""Loss functions for binary vulnerability classification."""

from __future__ import annotations

import numpy as np

from .ops import stable_sigmoid
from .tensor import Tensor, as_tensor

__all__ = ["bce_loss", "bce_with_logits", "mse_loss",
           "cross_entropy"]


def bce_loss(predictions: Tensor, targets, eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy over probabilities in (0, 1)."""
    targets = as_tensor(targets)
    clipped = Tensor(np.clip(predictions.data, eps, 1.0 - eps))
    # Re-route the graph through a clip that passes gradient where valid.
    mask = ((predictions.data > eps)
            & (predictions.data < 1.0 - eps)).astype(predictions.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if predictions.requires_grad:
            predictions._accumulate(grad * mask)

    probe = Tensor(0.0)
    safe = probe._make(clipped.data, (predictions,), backward)
    loss = -(targets * safe.log()
             + (1.0 - targets) * (1.0 - safe).log())
    return loss.mean()


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically-stable BCE on raw logits:
    ``max(z, 0) - z*y + log(1 + exp(-|z|))``."""
    targets = as_tensor(targets)
    z = logits.data
    out_data = np.maximum(z, 0) - z * targets.data \
        + np.log1p(np.exp(-np.abs(z)))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            sigmoid = stable_sigmoid(z)
            logits._accumulate(grad * (sigmoid - targets.data))

    probe = Tensor(0.0)
    per_sample = probe._make(out_data, (logits,), backward)
    return per_sample.mean()


def mse_loss(predictions: Tensor, targets) -> Tensor:
    """Mean squared error."""
    targets = as_tensor(targets)
    diff = predictions - targets
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, class_ids) -> Tensor:
    """Softmax cross-entropy over (batch, classes) logits.

    ``class_ids`` is an int array of target class indices.
    """
    targets = np.asarray(class_ids, dtype=np.int64)
    z = logits.data
    shifted = z - z.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1,
                                                     keepdims=True))
    batch = z.shape[0]
    out_data = -log_probs[np.arange(batch), targets]

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            softmax = np.exp(log_probs)
            softmax[np.arange(batch), targets] -= 1.0
            logits._accumulate(grad[:, None] * softmax)

    probe = Tensor(0.0)
    per_sample = probe._make(out_data, (logits,), backward)
    return per_sample.mean()
