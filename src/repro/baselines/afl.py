"""AFL simulacrum: coverage-guided greybox fuzzing on the interpreter.

The paper's Table VII runs 24-hour AFL campaigns against the Xen
miniatures; here the instrumented target is
:mod:`repro.lang.interp` (branch coverage = (line, taken) pairs) and
the campaign is an execution budget.  The mutation stack is AFL's
classic deterministic + havoc mix: bit/byte flips, arithmetic, ASCII-
digit tweaks, interesting values, block ops, and splicing.

Hangs (step-budget exhaustion) count as findings, which is how the
CVE-2016-9776/4453 infinite loops surface; CVE-2016-9104 needs a magic
near-INT_MAX decimal that byte-level mutation essentially never forms,
reproducing the paper's observation that AFL misses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lang.interp import ExecutionResult, Interpreter
from ..lang.parser import parse

__all__ = ["CrashRecord", "FuzzReport", "AFLFuzzer"]

_INTERESTING_BYTES = (0, 1, 16, 32, 64, 100, 127, 128, 200, 255)


@dataclass(frozen=True)
class CrashRecord:
    """One deduplicated crash/hang."""

    kind: str       # violation kind value, or 'hang'
    line: int       # 0 for hangs
    example: bytes


@dataclass
class FuzzReport:
    """Campaign outcome."""

    executions: int = 0
    crashes: list[CrashRecord] = field(default_factory=list)
    hangs: list[CrashRecord] = field(default_factory=list)
    coverage: set[tuple[int, bool]] = field(default_factory=set)
    queue_size: int = 0

    @property
    def found_anything(self) -> bool:
        return bool(self.crashes or self.hangs)


@dataclass
class _QueueEntry:
    data: bytes
    new_edges: int


class AFLFuzzer:
    """Coverage-guided mutational fuzzer.

    Args:
        source: C source of the target (must define ``main``).
        max_execs: execution budget (the "24 hours" stand-in).
        max_steps: interpreter step budget per execution; exceeding it
            is recorded as a hang.
        seed: RNG seed for the mutation schedule.
    """

    name = "AFL"

    def __init__(self, source: str, max_execs: int = 1500,
                 max_steps: int = 20_000, seed: int = 0):
        self.unit = parse(source)
        self.max_execs = max_execs
        self.max_steps = max_steps
        self.rng = np.random.default_rng(seed)

    def _execute(self, data: bytes) -> ExecutionResult:
        interp = Interpreter(self.unit, stdin=data,
                             max_steps=self.max_steps)
        return interp.run()

    def run(self, seeds: tuple[bytes, ...] = (b"0\n", b"10\n", b"100\n")
            ) -> FuzzReport:
        """Run the campaign; returns the deduplicated findings."""
        report = FuzzReport()
        queue: list[_QueueEntry] = []
        seen_crashes: set[tuple[str, int]] = set()

        def run_one(data: bytes) -> None:
            if report.executions >= self.max_execs:
                return
            report.executions += 1
            result = self._execute(data)
            new_edges = len(set(result.coverage) - report.coverage)
            if new_edges:
                report.coverage |= set(result.coverage)
                queue.append(_QueueEntry(data, new_edges))
            if result.crashed and result.violation is not None:
                key = (result.violation.kind.value, result.violation.line)
                if key not in seen_crashes:
                    seen_crashes.add(key)
                    report.crashes.append(
                        CrashRecord(result.violation.kind.value,
                                    result.violation.line, data))
            elif result.hung:
                key = ("hang", 0)
                if key not in seen_crashes:
                    seen_crashes.add(key)
                    report.hangs.append(CrashRecord("hang", 0, data))

        for seed_input in seeds:
            run_one(seed_input)
        cursor = 0
        while report.executions < self.max_execs and queue:
            entry = queue[cursor % len(queue)]
            cursor += 1
            for mutated in self._mutations(entry.data):
                if report.executions >= self.max_execs:
                    break
                run_one(mutated)
        report.queue_size = len(queue)
        return report

    # -- mutation stack -------------------------------------------------------

    def _mutations(self, data: bytes) -> list[bytes]:
        out: list[bytes] = []
        buf = bytearray(data if data else b"0")
        out.extend(self._bitflips(buf))
        out.extend(self._arith(buf))
        out.extend(self._interesting(buf))
        out.extend(self._digit_tweaks(buf))
        out.extend(self._havoc(buf, rounds=8))
        return out

    def _bitflips(self, buf: bytearray) -> list[bytes]:
        picks = self.rng.integers(0, len(buf) * 8,
                                  size=min(8, len(buf) * 8))
        out = []
        for bit in picks:
            clone = bytearray(buf)
            clone[bit // 8] ^= 1 << (bit % 8)
            out.append(bytes(clone))
        return out

    def _arith(self, buf: bytearray) -> list[bytes]:
        out = []
        for _ in range(6):
            position = int(self.rng.integers(0, len(buf)))
            delta = int(self.rng.integers(1, 35))
            clone = bytearray(buf)
            clone[position] = (clone[position]
                               + (delta if self.rng.random() < 0.5
                                  else -delta)) % 256
            out.append(bytes(clone))
        return out

    def _interesting(self, buf: bytearray) -> list[bytes]:
        out = []
        for _ in range(4):
            position = int(self.rng.integers(0, len(buf)))
            clone = bytearray(buf)
            clone[position] = int(self.rng.choice(_INTERESTING_BYTES))
            out.append(bytes(clone))
        return out

    def _digit_tweaks(self, buf: bytearray) -> list[bytes]:
        """ASCII-number aware mutations (AFL's `arith` on text often
        stumbles into these via repeated byte arith; modelled directly
        so decimal-driven targets are reachable)."""
        out = []
        digits = bytes(str(int(self.rng.integers(0, 10_000))), "ascii")
        out.append(digits + b"\n")
        out.append(b"-" + digits + b"\n")
        for _ in range(2):
            clone = bytearray(buf)
            position = int(self.rng.integers(0, len(clone)))
            clone[position] = ord(str(int(self.rng.integers(0, 10))))
            out.append(bytes(clone))
        return out

    def _havoc(self, buf: bytearray, rounds: int) -> list[bytes]:
        out = []
        for _ in range(rounds):
            clone = bytearray(buf)
            for _ in range(int(self.rng.integers(1, 5))):
                op = int(self.rng.integers(0, 4))
                if not clone:
                    clone = bytearray(b"0")
                position = int(self.rng.integers(0, len(clone)))
                if op == 0:
                    clone[position] = int(self.rng.integers(0, 256))
                elif op == 1 and len(clone) > 1:
                    del clone[position]
                elif op == 2:
                    clone.insert(position,
                                 int(self.rng.integers(0, 256)))
                else:
                    block = clone[position : position
                                  + int(self.rng.integers(1, 5))]
                    clone[position:position] = block
            out.append(bytes(clone[:128]))
        return out
