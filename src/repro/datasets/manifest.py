"""Test-case and manifest data structures (SARD-manifest style)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..slicing.labeling import VulnerabilityManifest

__all__ = ["TestCase"]


@dataclass
class TestCase:
    """One corpus program with ground truth.

    (The ``__test__`` flag stops pytest from trying to collect this
    dataclass when tests import it.)

    Attributes:
        name: unique case identifier (doubles as the source path).
        source: full C source text.
        vulnerable: whether the program contains the flaw variant.
        vulnerable_lines: 1-based lines of the flaw ('bad' sink lines).
        cwe: CWE identifier, e.g. 'CWE-121'.
        category: dominant special-token family ('FC'/'AU'/'PU'/'AE').
        origin: corpus the case belongs to ('sard', 'nvd', 'xen').
        meta: free-form extras (template name, parameters).
    """

    __test__ = False  # not a pytest test class

    name: str
    source: str
    vulnerable: bool
    vulnerable_lines: frozenset[int]
    cwe: str
    category: str
    origin: str = "sard"
    meta: dict = field(default_factory=dict)

    def manifest(self) -> VulnerabilityManifest:
        """The labeling manifest for this case."""
        return VulnerabilityManifest(
            path=self.name,
            vulnerable_lines=self.vulnerable_lines if self.vulnerable
            else frozenset(),
            cwe=self.cwe)
