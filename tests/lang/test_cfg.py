"""Unit tests for CFG construction."""

from repro.lang.cfg import NodeKind, build_cfg
from repro.lang.parser import parse


def cfg_of(body: str, params: str = "int n"):
    unit = parse(f"void f({params}) {{\n{body}\n}}")
    return build_cfg(unit.functions[0])


def labels_of(cfg, node):
    return sorted(edge.label for edge in cfg.out_edges(node))


class TestLinear:
    def test_straight_line_chain(self):
        cfg = cfg_of("int a = 1;\nint b = a;\nint c = b;")
        stmts = cfg.statement_nodes()
        assert len(stmts) == 3
        # entry -> a -> b -> c -> exit
        assert list(cfg.successors(cfg.entry)) == [stmts[0]]
        assert list(cfg.successors(stmts[2])) == [cfg.exit]

    def test_entry_and_exit_exist(self):
        cfg = cfg_of(";")
        assert cfg.entry.kind is NodeKind.ENTRY
        assert cfg.exit.kind is NodeKind.EXIT

    def test_empty_function_links_entry_to_exit(self):
        cfg = cfg_of("")
        assert cfg.exit in list(cfg.successors(cfg.entry))


class TestIf:
    def test_if_has_true_false_edges(self):
        cfg = cfg_of("if (n) { n = 1; }\nreturn;")
        cond = next(x for x in cfg.nodes.values()
                    if x.kind is NodeKind.CONDITION)
        assert labels_of(cfg, cond) == ["false", "true"]

    def test_if_else_both_branches_reach_join(self):
        cfg = cfg_of("int a;\nif (n) { a = 1; } else { a = 2; }\nint b = a;")
        join = [x for x in cfg.statement_nodes() if x.line == 4][0]
        preds = list(cfg.predecessors(join))
        assert len(preds) == 2

    def test_elseif_condition_labelled(self):
        cfg = cfg_of("if (n) { n = 1; } else if (n > 2) { n = 2; }")
        labels = [x.label for x in cfg.nodes.values()
                  if x.kind is NodeKind.CONDITION]
        assert "if" in labels and "elseif" in labels


class TestLoops:
    def test_while_back_edge(self):
        cfg = cfg_of("while (n) { n--; }")
        cond = next(x for x in cfg.nodes.values()
                    if x.kind is NodeKind.CONDITION)
        body = cfg.statement_nodes()[-1]
        assert cond in list(cfg.successors(body))

    def test_while_false_exit(self):
        cfg = cfg_of("while (n) { n--; }\nreturn;")
        cond = next(x for x in cfg.nodes.values()
                    if x.kind is NodeKind.CONDITION)
        false_edges = [e for e in cfg.out_edges(cond)
                       if e.label == "false"]
        assert len(false_edges) == 1

    def test_for_creates_init_cond_step(self):
        cfg = cfg_of("for (int i = 0; i < n; i++) { n--; }")
        assert any(x.label == "for-step" for x in cfg.nodes.values())
        assert any(x.label == "for" for x in cfg.nodes.values())

    def test_for_without_cond_exits_only_by_break(self):
        cfg = cfg_of("for (;;) { if (n) { break; } }\nreturn;")
        ret = next(x for x in cfg.statement_nodes() if x.label == "return")
        brk = next(x for x in cfg.statement_nodes() if x.label == "break")
        assert ret in list(cfg.successors(brk))

    def test_do_while_body_precedes_condition(self):
        cfg = cfg_of("do { n--; } while (n);")
        cond = next(x for x in cfg.nodes.values() if x.label == "dowhile")
        body = next(x for x in cfg.statement_nodes()
                    if x.label not in ("dowhile",))
        assert cond in list(cfg.successors(body))
        assert body in list(cfg.successors(cond))  # back edge

    def test_continue_targets_loop_head(self):
        cfg = cfg_of("while (n) { if (n > 2) { continue; } n--; }")
        cont = next(x for x in cfg.statement_nodes()
                    if x.label == "continue")
        target = list(cfg.successors(cont))[0]
        assert target.label == "while"

    def test_continue_in_for_targets_step(self):
        cfg = cfg_of("for (int i = 0; i < n; i++) { continue; }")
        cont = next(x for x in cfg.statement_nodes()
                    if x.label == "continue")
        assert list(cfg.successors(cont))[0].label == "for-step"


class TestSwitch:
    def test_switch_case_edges(self):
        cfg = cfg_of(
            "switch (n) { case 1: n = 1; break; default: n = 0; break; }")
        sw = next(x for x in cfg.nodes.values()
                  if x.kind is NodeKind.SWITCH)
        assert labels_of(cfg, sw) == ["case", "default"]

    def test_switch_without_default_falls_through(self):
        cfg = cfg_of("switch (n) { case 1: n = 1; break; }\nreturn;")
        sw = next(x for x in cfg.nodes.values()
                  if x.kind is NodeKind.SWITCH)
        ret = next(x for x in cfg.statement_nodes()
                   if x.label == "return")
        assert ret in list(cfg.successors(sw))

    def test_case_fallthrough(self):
        cfg = cfg_of("switch (n) { case 1: n = 1; case 2: n = 2; }")
        first = next(x for x in cfg.statement_nodes() if x.line == 2)
        succs = list(cfg.successors(first))
        assert any(s.ast is not None for s in succs)


class TestJumps:
    def test_return_goes_to_exit(self):
        cfg = cfg_of("return;\nn = 1;")
        ret = next(x for x in cfg.statement_nodes()
                   if x.label == "return")
        assert list(cfg.successors(ret)) == [cfg.exit]

    def test_statement_after_return_unreachable(self):
        cfg = cfg_of("return;\nn = 1;")
        dead = next(x for x in cfg.statement_nodes() if x.line == 3)
        assert list(cfg.predecessors(dead)) == []

    def test_goto_forward(self):
        cfg = cfg_of("goto out;\nn = 1;\nout: return;")
        goto = next(x for x in cfg.statement_nodes()
                    if x.label.startswith("goto"))
        label = next(x for x in cfg.statement_nodes()
                     if x.label == "out:")
        assert label in list(cfg.successors(goto))

    def test_goto_backward(self):
        cfg = cfg_of("top: n--;\nif (n) { goto top; }")
        goto = next(x for x in cfg.statement_nodes()
                    if x.label.startswith("goto"))
        label = next(x for x in cfg.statement_nodes()
                     if x.label == "top:")
        assert label in list(cfg.successors(goto))

    def test_goto_unknown_label_goes_to_exit(self):
        cfg = cfg_of("goto nowhere;")
        goto = next(x for x in cfg.statement_nodes()
                    if x.label.startswith("goto"))
        assert cfg.exit in list(cfg.successors(goto))


class TestStructure:
    def test_node_ids_dense_and_unique(self):
        cfg = cfg_of("if (n) { n = 1; } else { n = 2; }")
        ids = sorted(cfg.nodes)
        assert ids == list(range(len(ids)))

    def test_no_duplicate_edges(self):
        cfg = cfg_of("if (n) { n = 1; }")
        seen = set()
        for edge in cfg.edges:
            key = (edge.src, edge.dst, edge.label)
            assert key not in seen
            seen.add(key)

    def test_node_for_ast_roundtrip(self):
        cfg = cfg_of("int a = 1;")
        node = cfg.statement_nodes()[0]
        assert cfg.node_for_ast(node.ast) is node

    def test_all_reachable_nodes_reach_exit_or_loop(self):
        cfg = cfg_of("while (n) { n--; }\nreturn;")
        # every statement node has at least one successor
        for node in cfg.statement_nodes():
            assert list(cfg.successors(node))
