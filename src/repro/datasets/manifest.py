"""Test-case and manifest data structures (SARD-manifest style)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..slicing.labeling import VulnerabilityManifest

__all__ = ["TestCase"]


@dataclass
class TestCase:
    """One corpus program with ground truth.

    (The ``__test__`` flag stops pytest from trying to collect this
    dataclass when tests import it.)

    Attributes:
        name: unique case identifier (doubles as the source path).
        source: full C source text.
        vulnerable: whether the program contains the flaw variant.
        vulnerable_lines: 1-based lines of the flaw ('bad' sink lines).
        cwe: CWE identifier, e.g. 'CWE-121'.
        category: dominant special-token family ('FC'/'AU'/'PU'/'AE').
        origin: corpus the case belongs to ('sard', 'nvd', 'xen').
        meta: free-form extras (template name, parameters).
    """

    __test__ = False  # not a pytest test class

    name: str
    source: str
    vulnerable: bool
    vulnerable_lines: frozenset[int]
    cwe: str
    category: str
    origin: str = "sard"
    meta: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Content hash over everything gadget extraction reads.

        Covers the source text plus the ground-truth fields that feed
        labeling (name, vulnerable flag/lines, CWE) — the
        content-addressed extraction cache keys on this, so editing a
        case or relabeling it invalidates its cached gadgets.
        """
        digest = hashlib.sha256()
        parts = (self.name, self.source, str(int(self.vulnerable)),
                 ",".join(str(line) for line
                          in sorted(self.vulnerable_lines)),
                 self.cwe)
        for part in parts:
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def manifest(self) -> VulnerabilityManifest:
        """The labeling manifest for this case."""
        return VulnerabilityManifest(
            path=self.name,
            vulnerable_lines=self.vulnerable_lines if self.vulnerable
            else frozenset(),
            cwe=self.cwe)
