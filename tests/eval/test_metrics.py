"""Tests for metrics and cross-validation utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.crossval import (kfold_indices, kfold_split,
                                 stratified_kfold_indices)
from repro.eval.metrics import (Confusion, confusion_from, metrics_from)


class TestConfusion:
    def test_counts(self):
        confusion = confusion_from([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert (confusion.tp, confusion.fp, confusion.tn,
                confusion.fn) == (2, 1, 1, 1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_from([1], [1, 0])

    def test_total(self):
        assert confusion_from([1, 0], [0, 1]).total == 2


class TestMetrics:
    def test_perfect_classifier(self):
        metrics = metrics_from(confusion_from([1, 0, 1], [1, 0, 1]))
        assert metrics.accuracy == 1.0
        assert metrics.f1 == 1.0
        assert metrics.fpr == 0.0 and metrics.fnr == 0.0

    def test_always_positive(self):
        metrics = metrics_from(confusion_from([1, 1, 1, 1],
                                              [1, 0, 0, 0]))
        assert metrics.fpr == 1.0
        assert metrics.fnr == 0.0
        assert metrics.precision == 0.25

    def test_paper_f1_formula(self):
        """F1 = 2 P (1-FNR) / (P + (1-FNR)) — the paper's wording."""
        confusion = Confusion(tp=6, fp=2, tn=10, fn=4)
        metrics = metrics_from(confusion)
        precision = 6 / 8
        recall = 1 - metrics.fnr
        expected = 2 * precision * recall / (precision + recall)
        assert abs(metrics.f1 - expected) < 1e-12

    def test_empty_denominators_zero(self):
        metrics = metrics_from(Confusion(0, 0, 0, 0))
        assert metrics.f1 == 0.0
        assert metrics.accuracy == 0.0

    def test_percentage_rendering(self):
        metrics = metrics_from(Confusion(tp=1, fp=0, tn=1, fn=0))
        row = metrics.as_percentages()
        assert row["A(%)"] == 100.0 and row["F1(%)"] == 100.0

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=60))
    def test_metric_ranges(self, pairs):
        predictions = [p for p, _ in pairs]
        labels = [l for _, l in pairs]
        metrics = metrics_from(confusion_from(predictions, labels))
        for value in (metrics.fpr, metrics.fnr, metrics.accuracy,
                      metrics.precision, metrics.f1):
            assert 0.0 <= value <= 1.0

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=60))
    def test_accuracy_identity(self, labels):
        metrics = metrics_from(confusion_from(labels, labels))
        assert metrics.accuracy == 1.0


class TestKFold:
    def test_partitions_cover_everything_once(self):
        seen = []
        for _, test in kfold_indices(23, 5):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(23))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(20, 4):
            assert not set(train.tolist()) & set(test.tolist())

    def test_k_validation(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))

    def test_shuffled_with_rng(self):
        plain = [t.tolist() for _, t in kfold_indices(12, 3)]
        shuffled = [t.tolist() for _, t in
                    kfold_indices(12, 3, np.random.default_rng(1))]
        assert plain != shuffled

    def test_stratified_preserves_ratio(self):
        labels = [1] * 10 + [0] * 40
        for _, test in stratified_kfold_indices(labels, 5):
            positives = sum(labels[i] for i in test)
            assert positives == 2  # 10 positives / 5 folds

    def test_kfold_split_returns_items(self):
        items = list("abcdefgh")
        for train, test in kfold_split(items, 4):
            assert set(train) | set(test) == set(items)
            assert not set(train) & set(test)


class TestTableRendering:
    def test_render_alignment(self):
        from repro.eval.report import Table
        table = Table("t", "Title")
        table.add(name="a", value=1)
        table.add(name="longer", value=22)
        text = table.render()
        lines = text.split("\n")
        assert lines[0] == "Title"
        assert "name   | value" in text
        assert len({len(l) for l in lines[1:4]}) == 1  # aligned

    def test_empty_table(self):
        from repro.eval.report import Table
        assert "(no rows)" in Table("t", "Empty").render()

    def test_save_writes_file(self, tmp_path):
        from repro.eval.report import Table
        table = Table("myname", "T")
        table.add(x=1)
        path = table.save(tmp_path)
        assert path.name == "myname.txt"
        assert "x" in path.read_text()
