"""Fig 1 — the motivating example.

Paper claim: the guarded and unguarded strncpy programs produce
*identical* classic code gadgets (so any classifier is stuck at 50%
accuracy on the pair) while path-sensitive gadgets differ.
"""

from repro.lang.callgraph import analyze
from repro.slicing.gadget import classic_gadget
from repro.slicing.path_sensitive import path_sensitive_gadget
from repro.slicing.special_tokens import find_special_tokens

from conftest import run_once

SAFE = """\
void fun1(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 0;
        strncpy(dest, data, n);
    }
    printf("%s", dest);
}
"""

VULN = """\
void fun1(char *data, int n) {
    char dest[10];
    if (n < 10) {
        dest[0] = 0;
    }
    strncpy(dest, data, n);
    printf("%s", dest);
}
"""


def _gadgets(source):
    program = analyze(source)
    criterion = [c for c in find_special_tokens(program)
                 if c.token == "strncpy"][0]
    return (classic_gadget(program, criterion),
            path_sensitive_gadget(program, criterion))


def test_fig1_motivating_example(benchmark, reporter):
    def experiment():
        cg_safe, ps_safe = _gadgets(SAFE)
        cg_vuln, ps_vuln = _gadgets(VULN)
        return cg_safe, ps_safe, cg_vuln, ps_vuln

    cg_safe, ps_safe, cg_vuln, ps_vuln = run_once(benchmark, experiment)

    table = reporter("fig1_motivating",
                     "Fig 1 — classic vs path-sensitive gadget identity")
    table.add(pair="classic (CG)",
              identical=cg_safe.text() == cg_vuln.text(),
              paper_expectation="identical -> detector stuck at 50%")
    table.add(pair="path-sensitive (PS-CG)",
              identical=ps_safe.text() == ps_vuln.text(),
              paper_expectation="distinct -> separable")
    table.save_and_print()

    # The paper's claim, verbatim.
    assert cg_safe.text() == cg_vuln.text()
    assert ps_safe.text() != ps_vuln.text()

    # And the distinguishing element is scope boundaries: the safe
    # variant closes the if-range *after* the copy, the vulnerable one
    # *before* it.
    safe_roles = [line.role for line in ps_safe.lines]
    vuln_roles = [line.role for line in ps_vuln.lines]
    assert safe_roles.index("criterion") < \
        safe_roles.index("control-end")
    assert vuln_roles.index("control-end") < \
        vuln_roles.index("criterion")
