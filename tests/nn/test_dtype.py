"""The global dtype policy (repro.nn.dtype) and its round-trips.

Training and inference default to float32 (half the memory traffic of
the old float64 everywhere); REPRO_DTYPE overrides the default, and
gradient-check suites pin float64 via their conftest.  Save/load must
round-trip across the policy: weights trained under either dtype load
back under either dtype, landing in whatever the *loading* session's
default is.
"""

import numpy as np
import pytest

from repro.nn import (Tensor, default_dtype, get_default_dtype,
                      load_model, save_model, set_default_dtype)
from repro.nn.dtype import _coerce
from repro.models.sevuldet import SEVulDetNet


class TestPolicy:
    def test_conftest_pins_float64_here(self):
        assert get_default_dtype() == np.float64

    def test_set_returns_previous(self):
        previous = set_default_dtype(np.float32)
        try:
            assert previous == np.float64
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        finally:
            set_default_dtype(previous)

    def test_context_manager_restores(self):
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_accepts_string_names(self):
        previous = set_default_dtype("float32")
        try:
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype(previous)

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_coerce_rejects_unknown_env_value(self):
        with pytest.raises(ValueError):
            _coerce("int8")

    def test_float16_is_a_valid_storage_dtype(self):
        with default_dtype(np.float16):
            assert get_default_dtype() == np.float16
            assert Tensor([1.0, 2.0]).data.dtype == np.float16

    def test_inference_dtype_vocabulary(self):
        from repro.nn import INFERENCE_DTYPES, coerce_inference_dtype
        for name in INFERENCE_DTYPES:
            assert coerce_inference_dtype(name) == name
        with pytest.raises(ValueError):
            coerce_inference_dtype("float64")
        with pytest.raises(ValueError):
            coerce_inference_dtype("bfloat16")

    def test_gradients_match_parameter_dtype(self):
        with default_dtype(np.float32):
            x = Tensor([1.0, 2.0], requires_grad=True)
            (x * x).sum().backward()
            assert x.grad.dtype == np.float32


class TestSaveLoadRoundTrip:
    """float32 <-> float64 persistence round-trips."""

    def build(self, seed=1):
        return SEVulDetNet(vocab_size=24, dim=8, channels=8, seed=seed)

    @pytest.mark.parametrize("save_dtype,load_dtype", [
        (np.float32, np.float64),
        (np.float64, np.float32),
        (np.float32, np.float32),
    ])
    def test_cross_dtype_round_trip(self, tmp_path, save_dtype,
                                    load_dtype):
        with default_dtype(save_dtype):
            source = self.build(seed=1)
            path = tmp_path / "model.npz"
            save_model(source, path)
            reference = {k: v.copy()
                         for k, v in source.state_dict().items()}
        with default_dtype(load_dtype):
            target = self.build(seed=99)
            load_model(target, path)
            ids = np.random.default_rng(0).integers(
                0, 24, size=(2, 11))
            for key, value in target.state_dict().items():
                assert value.dtype == load_dtype, key
                assert np.allclose(value, reference[key], atol=1e-6), \
                    key
            target.eval()
            out = target(ids)
            assert out.data.dtype == load_dtype
            assert np.all(np.isfinite(out.data))

    def test_outputs_close_across_dtypes(self, tmp_path):
        """A float64-trained model scores the same inputs nearly
        identically after a float32 round-trip."""
        ids = np.random.default_rng(0).integers(0, 24, size=(2, 11))
        with default_dtype(np.float64):
            source = self.build(seed=1)
            source.eval()
            wide = source(ids).data
            path = tmp_path / "model.npz"
            save_model(source, path)
        with default_dtype(np.float32):
            target = self.build(seed=99)
            load_model(target, path)
            target.eval()
            narrow = target(ids).data
        assert np.allclose(wide, narrow, atol=1e-4)
