"""Tests for validation-driven early stopping in the trainer."""

import numpy as np
import pytest

from repro.core.pipeline import (encode_gadgets, evaluate_classifier,
                                 extract_gadgets, train_classifier)
from repro.datasets.sard import generate_sard_corpus
from repro.models.sevuldet import SEVulDetNet


@pytest.fixture(scope="module")
def dataset():
    gadgets = extract_gadgets(generate_sard_corpus(50, seed=81))
    return encode_gadgets(gadgets, dim=10, w2v_epochs=1, seed=2)


def fresh_model(dataset):
    return SEVulDetNet(len(dataset.vocab), dim=10, channels=10,
                       pretrained=dataset.word2vec.vectors, seed=2)


class TestEarlyStopping:
    def test_val_curve_recorded(self, dataset):
        split = len(dataset.samples) * 3 // 4
        report = train_classifier(
            fresh_model(dataset), dataset.samples[:split],
            epochs=5, seed=2,
            validation=dataset.samples[split:])
        assert len(report.val_f1) == len(report.losses)
        assert report.best_epoch >= 0

    def test_patience_stops_training(self, dataset):
        split = len(dataset.samples) * 3 // 4
        report = train_classifier(
            fresh_model(dataset), dataset.samples[:split],
            epochs=40, seed=2, lr=1e-2,
            validation=dataset.samples[split:], patience=2)
        assert report.stopped_early or len(report.losses) == 40
        # with a high lr and tiny data, 40 epochs should trip patience
        assert len(report.losses) < 40

    def test_best_weights_restored(self, dataset):
        split = len(dataset.samples) * 3 // 4
        model = fresh_model(dataset)
        validation = dataset.samples[split:]
        report = train_classifier(
            model, dataset.samples[:split], epochs=12, seed=2,
            validation=validation, patience=3)
        final = evaluate_classifier(model, validation)
        assert abs(final.f1 - max(report.val_f1)) < 1e-9

    def test_no_validation_keeps_old_behavior(self, dataset):
        report = train_classifier(fresh_model(dataset),
                                  dataset.samples, epochs=3, seed=2)
        assert report.val_f1 == []
        assert not report.stopped_early
        assert len(report.losses) == 3
