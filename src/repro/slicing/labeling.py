"""Gadget labeling (paper Step II).

A gadget heuristically inherits label 1 when it covers any line the
manifest marks vulnerable — the paper notes this can mislabel gadgets
whose statements coincide with vulnerable ones, and prescribes k-fold
cross-validation to *narrow down the check range*: gadgets that are
repeatedly misclassified across folds are surfaced for (in the paper,
manual; here, oracle-driven) relabeling.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .gadget import CodeGadget

__all__ = ["VulnerabilityManifest", "label_gadget", "label_gadgets",
           "MislabelAuditor"]


@dataclass
class VulnerabilityManifest:
    """Ground-truth vulnerable lines, SARD-manifest style.

    Attributes:
        path: source file path the entries refer to.
        vulnerable_lines: line numbers flagged as flawed.
        cwe: CWE identifier of the flaw ('' when unknown).
    """

    path: str
    vulnerable_lines: frozenset[int]
    cwe: str = ""

    def covers(self, gadget: CodeGadget) -> bool:
        return any(line.line in self.vulnerable_lines
                   for line in gadget.lines)


def label_gadget(gadget: CodeGadget,
                 manifest: VulnerabilityManifest | None) -> int:
    """Label one gadget from its manifest (1 = vulnerable)."""
    if manifest is None:
        return 0
    return 1 if manifest.covers(gadget) else 0


def label_gadgets(gadgets: Iterable[CodeGadget],
                  manifests: dict[str, VulnerabilityManifest]
                  ) -> list[CodeGadget]:
    """Label gadgets in place by their source path; returns the list."""
    result = []
    for gadget in gadgets:
        manifest = manifests.get(gadget.source_path)
        gadget.label = label_gadget(gadget, manifest)
        result.append(gadget)
    return result


@dataclass
class MislabelAuditor:
    """k-fold misclassification audit (paper Step II).

    Train/evaluate ``classify`` over k folds and count, per sample, how
    often the prediction disagrees with the current label.  Samples
    crossing ``threshold`` disagreements are relabel candidates; an
    optional ``oracle`` (standing in for the paper's manual judgment)
    decides their final label.
    """

    k: int = 5
    threshold: int = 2
    disagreements: Counter = field(default_factory=Counter)

    def audit(
        self,
        samples: Sequence,
        labels: Sequence[int],
        classify: Callable[[Sequence, Sequence[int], Sequence], list[int]],
        *,
        rounds: int = 1,
    ) -> list[int]:
        """Return indices of samples that look mislabeled.

        Args:
            samples: the gadget feature objects.
            labels: current labels, parallel to samples.
            classify: callable (train_x, train_y, test_x) -> predictions.
            rounds: how many times to repeat the k-fold pass.
        """
        count = len(samples)
        if count < self.k:
            return []
        for _ in range(rounds):
            for fold in range(self.k):
                test_idx = list(range(fold, count, self.k))
                train_idx = [i for i in range(count) if i % self.k != fold]
                train_x = [samples[i] for i in train_idx]
                train_y = [labels[i] for i in train_idx]
                test_x = [samples[i] for i in test_idx]
                predictions = classify(train_x, train_y, test_x)
                for local, sample_index in enumerate(test_idx):
                    if predictions[local] != labels[sample_index]:
                        self.disagreements[sample_index] += 1
        return sorted(index for index, hits in self.disagreements.items()
                      if hits >= self.threshold)

    def relabel(self, labels: list[int], suspicious: list[int],
                oracle: Callable[[int], int]) -> list[int]:
        """Apply the oracle's judgment to the suspicious samples."""
        updated = list(labels)
        for index in suspicious:
            updated[index] = oracle(index)
        return updated
