"""Autograd engine tests: every op checked against numerical gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad

from .conftest import assert_grad_close, numerical_gradient


def check_unary(op, shape, rng, data=None, atol=1e-6):
    x = Tensor(data if data is not None
               else rng.normal(size=shape), requires_grad=True)
    out = op(x)
    out.sum().backward()
    numeric = numerical_gradient(
        lambda: float(op(Tensor(x.data)).data.sum()), x.data)
    assert_grad_close(x.grad, numeric, atol)


class TestElementwiseGradients:
    def test_add(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_mul(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_div(self, rng):
        check_unary(lambda x: x / 3.0, (2, 3), rng)

    def test_rdiv(self, rng):
        x = Tensor(rng.uniform(1.0, 2.0, size=(2, 3)),
                   requires_grad=True)
        (1.0 / x).sum().backward()
        numeric = numerical_gradient(
            lambda: float((1.0 / Tensor(x.data)).data.sum()), x.data)
        assert_grad_close(x.grad, numeric)

    def test_pow(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        (x ** 3).sum().backward()
        assert_grad_close(x.grad, 3 * x.data ** 2)

    def test_neg_and_sub(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, -1.0)

    def test_exp(self, rng):
        check_unary(lambda x: x.exp(), (3, 2), rng)

    def test_log(self, rng):
        x = np.abs(rng.normal(size=(3, 2))) + 0.5
        check_unary(lambda t: t.log(), None, rng, data=x)

    def test_tanh(self, rng):
        check_unary(lambda x: x.tanh(), (5,), rng)

    def test_sigmoid(self, rng):
        check_unary(lambda x: x.sigmoid(), (5,), rng)

    def test_relu(self, rng):
        data = rng.normal(size=(10,))
        data[np.abs(data) < 1e-3] = 0.5  # avoid kink
        check_unary(lambda x: x.relu(), None, rng, data=data)

    def test_leaky_relu(self, rng):
        data = rng.normal(size=(10,))
        data[np.abs(data) < 1e-3] = 0.5
        check_unary(lambda x: x.leaky_relu(0.1), None, rng, data=data)


class TestBroadcasting:
    def test_broadcast_add_reduces_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_mul_keepdim(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3, 1)
        assert_grad_close(b.grad, a.data.sum(axis=1, keepdims=True))

    def test_scalar_broadcast(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        (a * 5.0).sum().backward()
        assert np.allclose(a.grad, 5.0)


class TestMatmul:
    def test_matrix_matrix(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        na = numerical_gradient(
            lambda: float((Tensor(a.data) @ Tensor(b.data)).data.sum()),
            a.data)
        nb = numerical_gradient(
            lambda: float((Tensor(a.data) @ Tensor(b.data)).data.sum()),
            b.data)
        assert_grad_close(a.grad, na)
        assert_grad_close(b.grad, nb)

    def test_batched_matrix(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        nb = numerical_gradient(
            lambda: float((Tensor(a.data) @ Tensor(b.data)).data.sum()),
            b.data)
        assert_grad_close(b.grad, nb)

    def test_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a @ v).sum().backward()
        nv = numerical_gradient(
            lambda: float((Tensor(a.data) @ Tensor(v.data)).data.sum()),
            v.data)
        assert_grad_close(v.grad, nv)

    def test_batched_tensor_vector(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a @ v).sum().backward()
        na = numerical_gradient(
            lambda: float((Tensor(a.data) @ Tensor(v.data)).data.sum()),
            a.data)
        nv = numerical_gradient(
            lambda: float((Tensor(a.data) @ Tensor(v.data)).data.sum()),
            v.data)
        assert_grad_close(a.grad, na)
        assert_grad_close(v.grad, nv)


class TestReductions:
    def test_sum_all(self, rng):
        check_unary(lambda x: x.sum() * 1.0, (3, 4), rng)

    def test_sum_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.sum(axis=1).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean(self, rng):
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 20)

    def test_mean_axis(self, rng):
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        x.mean(axis=0).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_max_routes_gradient_to_argmax(self, rng):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_splits_ties(self):
        x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        out = x.softmax(axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        weights = rng.normal(size=(2, 5))
        (x.softmax(axis=1) * weights).sum().backward()
        numeric = numerical_gradient(
            lambda: float((Tensor(x.data).softmax(axis=1).data
                           * weights).sum()), x.data)
        assert_grad_close(x.grad, numeric)


class TestShapeOps:
    def test_reshape_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        assert x.grad.shape == (2, 6)
        assert np.allclose(x.grad, 1.0)

    def test_transpose_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        weights = rng.normal(size=(4, 3, 2))
        (x.transpose(2, 1, 0) * weights).sum().backward()
        assert_grad_close(x.grad, weights.transpose(2, 1, 0))

    def test_getitem_gradient_scatter(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:3] = 1.0
        assert np.allclose(x.grad, expected)

    def test_concat_gradient_split(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        Tensor.concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (2, 2)

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        weights = rng.normal(size=(2, 3))
        (Tensor.stack([a, b], axis=0) * weights).sum().backward()
        assert_grad_close(a.grad, weights[0])
        assert_grad_close(b.grad, weights[1])

    def test_pad1d_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        x.pad1d(2, 1).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_pad1d_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5)))
        assert x.pad1d(2, 3).shape == (1, 2, 10)


class TestEngine:
    def test_grad_accumulates_over_reuse(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x + x).sum().backward()
        assert np.allclose(x.grad, 2.0)

    def test_diamond_graph(self, rng):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = x * 4.0
        (y + z).sum().backward()
        assert np.allclose(x.grad, 7.0)

    def test_backward_requires_scalar(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_no_grad_context(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with no_grad():
            out = x * 2
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_is_thread_local(self):
        """Interleaved no_grad scopes in other threads must never
        corrupt this thread's grad mode (regression: a shared global
        flag let an exit-order race leave grads off process-wide)."""
        import threading

        from repro.nn.tensor import is_grad_enabled

        a_entered = threading.Event()
        b_entered = threading.Event()
        a_exited = threading.Event()
        inside = {}

        def thread_a():
            with no_grad():
                a_entered.set()
                b_entered.wait(5)  # B enters while A is inside
            a_exited.set()

        def thread_b():
            a_entered.wait(5)
            with no_grad():
                b_entered.set()
                a_exited.wait(5)  # A exits first, then B
                inside["b"] = is_grad_enabled()
            inside["b_after"] = is_grad_enabled()

        threads = [threading.Thread(target=thread_a),
                   threading.Thread(target=thread_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert inside == {"b": False, "b_after": True}
        assert is_grad_enabled()  # main thread untouched
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_zero_grad(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_breaks_graph(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_as_tensor_idempotent(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1, 2]), Tensor)

    def test_dropout_scales_and_masks(self, rng):
        x = Tensor(np.ones((1000,)), requires_grad=True)
        out = x.dropout(0.5, rng)
        kept = out.data != 0
        assert 0.3 < kept.mean() < 0.7
        assert np.allclose(out.data[kept], 2.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        out = x
        for _ in range(3000):
            out = out * 1.0
        out.sum().backward()  # iterative topo sort must handle depth
        assert np.allclose(x.grad, 1.0)
