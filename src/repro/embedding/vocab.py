"""Token vocabulary with reserved PAD/UNK ids."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["PAD_TOKEN", "UNK_TOKEN", "Vocabulary"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


@dataclass
class Vocabulary:
    """Bidirectional token <-> id mapping.

    Id 0 is always PAD and id 1 always UNK; real tokens start at 2 in
    descending frequency order (ties broken lexicographically so builds
    are deterministic).
    """

    token_to_id: dict[str, int] = field(default_factory=dict)
    id_to_token: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.id_to_token:
            self.id_to_token = [PAD_TOKEN, UNK_TOKEN]
            self.token_to_id = {PAD_TOKEN: 0, UNK_TOKEN: 1}

    @classmethod
    def build(cls, token_streams: Iterable[Sequence[str]],
              min_count: int = 1,
              max_size: int | None = None) -> "Vocabulary":
        """Build from an iterable of token sequences."""
        counts: Counter[str] = Counter()
        for stream in token_streams:
            counts.update(stream)
        vocab = cls()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for token, count in ranked:
            if count < min_count:
                continue
            if max_size is not None and len(vocab) >= max_size:
                break
            vocab.add(token)
        return vocab

    def add(self, token: str) -> int:
        """Register a token (idempotent); returns its id."""
        existing = self.token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self.id_to_token)
        self.token_to_id[token] = token_id
        self.id_to_token.append(token)
        return token_id

    def encode(self, tokens: Sequence[str]) -> list[int]:
        unk = self.token_to_id[UNK_TOKEN]
        return [self.token_to_id.get(token, unk) for token in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        return [self.id_to_token[i] if 0 <= i < len(self.id_to_token)
                else UNK_TOKEN for i in ids]

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id
