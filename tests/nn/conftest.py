"""Shared helpers for nn tests: numerical gradient checking."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def numerical_gradient(func, array, eps=1e-6):
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array``
    (mutated in place probe-by-probe)."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_close(analytic, numeric, atol=1e-6):
    __tracebackhide__ = True
    worst = np.abs(analytic - numeric).max()
    assert worst < atol, f"gradient mismatch: max |diff| = {worst}"
