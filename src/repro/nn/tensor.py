"""Reverse-mode autograd over numpy arrays.

The paper's models were built on a GPU DL framework; offline we provide
the same mathematics: a :class:`Tensor` wrapping an ``ndarray`` with a
gradient slot and a backward closure, plus the operator set the SEVulDet
architecture needs (dense algebra, broadcasting arithmetic, activation
functions, reductions, indexing, concatenation).  Convolution and
pooling live in :mod:`repro.nn.ops`.

Gradient correctness is enforced by numerical-gradient property tests
in ``tests/nn``.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from .dtype import get_default_dtype

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

# Grad mode is thread-local: concurrent no_grad scopes (e.g. the scan
# service's scorer threads) must not race a shared flag's save/restore
# — interleaved exits could leave gradients disabled process-wide and
# silently break later training.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc: object) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum-reduce ``grad`` back to ``shape`` (undo numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with reverse-mode autograd.

    Attributes:
        data: the underlying float ndarray (dtype set by
            :func:`repro.nn.dtype.get_default_dtype`, float32 by
            default).
        grad: accumulated gradient (same shape/dtype), or None.
        requires_grad: whether backward should flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False,
                 name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=get_default_dtype())
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple["Tensor", ...] = ()
        self.name = name

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # -- basic protocol ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # -- graph mechanics --------------------------------------------------------

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without grad requires a "
                                 "scalar tensor")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent
                                 * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    # (..., K) @ (K,) -> (...): d_self = grad[..., None]*v
                    self._accumulate(grad[..., None] * other.data)
                elif self.data.ndim == 1:
                    # (K,) @ (K, N) -> (N,): d_self = W @ grad
                    self._accumulate(other.data @ grad)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                elif other.data.ndim == 1:
                    # d_other = sum over leading dims of grad * rows
                    other._accumulate(
                        (grad[..., None] * self.data).reshape(
                            -1, self.data.shape[-1]).sum(axis=0))
                else:
                    left = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(left)

        return self._make(out_data, (self, other), backward)

    # -- elementwise functions ----------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -500, 500))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-300))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-300))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return self._make(out_data, (self,), backward)

    # -- reductions -----------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    expanded = np.expand_dims(expanded, ax)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            max_kept = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == max_kept)
            # Split gradient across ties to keep it a valid subgradient.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(np.broadcast_to(expanded, self.data.shape)
                             * mask / counts)

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward)

    # -- shape ops -------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(order)
        out_data = self.data.transpose(order)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for index, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(offsets[index], offsets[index + 1])
                    tensor._accumulate(grad[tuple(slicer)])

        probe = Tensor(0.0)
        return probe._make(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        datas = [t.data for t in tensors]
        out_data = np.stack(datas, axis=axis)

        def backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for index, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(slices[index])

        probe = Tensor(0.0)
        return probe._make(out_data, tuple(tensors), backward)

    def pad1d(self, left: int, right: int) -> "Tensor":
        """Zero-pad the last axis."""
        width = [(0, 0)] * (self.data.ndim - 1) + [(left, right)]
        out_data = np.pad(self.data, width)
        length = self.data.shape[-1]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slicer = [slice(None)] * (grad.ndim - 1) \
                    + [slice(left, left + length)]
                self._accumulate(grad[tuple(slicer)])

        return self._make(out_data, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator) -> "Tensor":
        """Inverted dropout (scales at train time)."""
        if rate <= 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.data.shape) < keep) / keep
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce numbers / arrays / Tensors into a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
