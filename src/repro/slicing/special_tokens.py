"""Special-token identification (paper Step I.2, Definition 4).

SEVulDet focuses on the four syntactic vulnerability carriers SySeVR
defined: **library/API function calls (FC)**, **array usage (AU)**,
**pointer usage (PU)**, and **arithmetic expressions (AE)**.  Every
occurrence becomes a :class:`SlicingCriterion` anchoring a slice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..lang import ast_nodes as A
from ..lang.callgraph import AnalyzedProgram
from ..lang.dataflow import LIBRARY_FUNCTIONS

__all__ = ["TokenCategory", "SlicingCriterion", "find_special_tokens"]


class TokenCategory(enum.Enum):
    """The four special-token families (paper Table I rows)."""

    FUNCTION_CALL = "FC"
    ARRAY_USAGE = "AU"
    POINTER_USAGE = "PU"
    ARITHMETIC_EXPR = "AE"


@dataclass(frozen=True)
class SlicingCriterion:
    """One special token: where a slice starts.

    Attributes:
        function: enclosing function name.
        line: 1-based source line of the token.
        category: FC/AU/PU/AE.
        token: the token text (callee name, array/pointer variable, or
            the operator of an arithmetic expression).
    """

    function: str
    line: int
    category: TokenCategory
    token: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.category.value}:{self.token}@"
                f"{self.function}:{self.line}")


#: The high-risk library calls that anchor FC criteria (the SySeVR list
#: is 811 functions; this is its intersection with our frontend's
#: library model — every function the corpus generator can emit).
FC_TARGETS = frozenset(
    {
        "memcpy", "memmove", "memset", "strcpy", "strncpy", "strcat",
        "strncat", "sprintf", "snprintf", "vsprintf", "vsnprintf", "gets",
        "fgets", "fread", "read", "recv", "recvfrom", "scanf", "fscanf",
        "sscanf", "getcwd", "realpath", "gethostname", "malloc", "calloc",
        "realloc", "free", "alloca", "strlen", "strtok", "atoi", "strtol",
        "system", "popen", "execl", "execv", "execvp", "printf", "fprintf",
        "wcscpy", "wcsncpy", "wcscat",
    }
)


def _ident_names(expr: A.Expr) -> set[str]:
    names: set[str] = set()
    for node in A.walk(expr):
        if isinstance(node, A.Ident):
            names.add(node.name)
    return names


class _Collector:
    def __init__(self, function: A.FunctionDef):
        self.function = function
        self.criteria: list[SlicingCriterion] = []
        self._seen: set[tuple[int, TokenCategory, str]] = set()
        self._pointer_vars = self._pointer_variables(function)
        self._array_vars = self._array_variables(function)

    @staticmethod
    def _pointer_variables(function: A.FunctionDef) -> set[str]:
        names = {p.name for p in function.params if p.pointer_depth > 0}
        for node in A.walk(function.body):
            if isinstance(node, A.Decl):
                names.update(d.name for d in node.declarators
                             if d.is_pointer)
        return names

    @staticmethod
    def _array_variables(function: A.FunctionDef) -> set[str]:
        names = {p.name for p in function.params if p.is_array}
        for node in A.walk(function.body):
            if isinstance(node, A.Decl):
                names.update(d.name for d in node.declarators if d.is_array)
        return names

    def _add(self, line: int, category: TokenCategory, token: str) -> None:
        key = (line, category, token)
        if key not in self._seen:
            self._seen.add(key)
            self.criteria.append(
                SlicingCriterion(self.function.name, line, category, token))

    def collect(self) -> list[SlicingCriterion]:
        for node in A.walk(self.function.body):
            self._visit(node)
        return self.criteria

    def _visit(self, node: A.Node) -> None:
        if isinstance(node, A.Call):
            name = node.callee_name
            if name is not None and name in FC_TARGETS:
                self._add(node.line, TokenCategory.FUNCTION_CALL, name)
        elif isinstance(node, A.Index):
            # Indexing a declared array is array usage; indexing a raw
            # pointer is pointer usage (SySeVR's taxonomy).
            base_names = _ident_names(node.base)
            array_hits = sorted(base_names & self._array_vars)
            pointer_hits = sorted((base_names & self._pointer_vars)
                                  - self._array_vars)
            for name in array_hits:
                self._add(node.line, TokenCategory.ARRAY_USAGE, name)
            for name in pointer_hits:
                self._add(node.line, TokenCategory.POINTER_USAGE, name)
            if not array_hits and not pointer_hits:
                for name in sorted(base_names):
                    self._add(node.line, TokenCategory.ARRAY_USAGE, name)
        elif isinstance(node, A.Unary) and node.op == "*" and node.prefix:
            for name in sorted(_ident_names(node.operand)
                               & self._pointer_vars):
                self._add(node.line, TokenCategory.POINTER_USAGE, name)
        elif isinstance(node, A.Member) and node.arrow:
            for name in sorted(_ident_names(node.base)):
                self._add(node.line, TokenCategory.POINTER_USAGE, name)
        elif isinstance(node, A.Decl):
            for d in node.declarators:
                if d.is_pointer:
                    self._add(node.line, TokenCategory.POINTER_USAGE, d.name)
        elif isinstance(node, A.Assign) and node.op in \
                ("+=", "-=", "*=", "/=", "%=", "<<=", ">>="):
            self._add(node.line, TokenCategory.ARITHMETIC_EXPR,
                      node.op.rstrip("="))
        elif isinstance(node, A.Binary) and node.op in ("+", "-", "*", "/",
                                                        "%"):
            if self._is_integer_arith(node):
                self._add(node.line, TokenCategory.ARITHMETIC_EXPR, node.op)

    @staticmethod
    def _is_integer_arith(node: A.Binary) -> bool:
        """Arithmetic over at least one variable (constant folds are
        uninteresting as vulnerability anchors)."""
        return any(isinstance(n, A.Ident) for n in A.walk(node))


def find_special_tokens(
    program: AnalyzedProgram,
    categories: frozenset[TokenCategory] | None = None,
) -> list[SlicingCriterion]:
    """All special tokens of a program, in (function, line) order.

    Args:
        program: analyzed program.
        categories: restrict to these categories (default: all four).
    """
    wanted = categories or frozenset(TokenCategory)
    criteria: list[SlicingCriterion] = []
    for fn in program.unit.functions:
        criteria.extend(_Collector(fn).collect())
    criteria = [c for c in criteria if c.category in wanted]
    criteria.sort(key=lambda c: (c.function, c.line, c.category.value,
                                 c.token))
    return criteria
