"""Streaming stage engine: the pipeline as composable typed stages.

The monolithic pipeline ran as full-materialize barriers: extract the
whole corpus, then encode all of it, then train/score.  The engine
recasts the same work as :class:`Stage` objects composed over a
generator chain, with a prefetch thread at every streaming boundary —
so extraction of chunk N+1 overlaps encoding/scoring of chunk N
(extraction waits on worker processes or parses in pure Python while
scoring crunches numpy, so the overlap is real wall-clock, measured by
``scripts/bench_engine.py``).

Outputs are byte-identical to the serial one-shot paths: chunking
never changes results because per-case extraction is pure, the
deduplicator is stateful across chunks (corpus-order semantics), and
scoring buckets by *exact* length so a row's score never depends on
its batch-mates (pinned by ``tests/core/test_engine.py``).

All run-wide services ride in one :class:`RunContext` — the gadget
cache, quarantine, telemetry, checkpoint directory, and the fault
budget (case timeout, worker count, retries) — instead of five loose
keyword arguments threaded through every call.

Typical composition (what :meth:`repro.core.detector.SEVulDet.fit`
does)::

    ctx = RunContext.create(cache=cache_dir, workers=4)
    engine = Engine(ExtractStage(), EncodeStage(dim=30),
                    TrainStage(build_model), ctx=ctx)
    result = engine.run(cases)   # TrainResult(model, report, dataset)
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from ..datasets.manifest import TestCase
from .encode import EncodedDataset, encode_gadgets
from .extract import (CaseResult, CorpusExtractor, GadgetDeduplicator,
                      LabeledGadget, _coerce_cache, _coerce_fn_cache,
                      _make_config)
from .resilience import CaseFailure, Quarantine, coerce_quarantine
from .score import predict_proba
from .telemetry import Telemetry
from .train import TrainReport, train_classifier

__all__ = ["RunContext", "Stage", "ExtractStage", "EncodeStage",
           "TrainStage", "TrainResult", "ScoreStage", "Engine"]


@dataclass
class RunContext:
    """Run-wide services and fault budget, shared by every stage.

    One context per logical run (a fit, a scan sweep, a CV protocol):
    stages read their cache/quarantine/telemetry from it, failure
    records accumulate on it, and sharing one context across several
    engines (e.g. per-fold extraction in cross-validation) shares the
    warm cache and the accumulated counters.

    Build instances with :meth:`create`, which coerces the convenience
    forms (cache directory path, quarantine JSONL path) the CLI deals
    in; the raw constructor expects already-coerced objects.
    """

    cache: Any = None  # GadgetCache | None
    fn_cache: Any = None  # FunctionGadgetCache | None
    quarantine: Quarantine | None = None
    telemetry: Telemetry = field(default_factory=Telemetry)
    checkpoint_dir: Path | None = None
    case_timeout: float | None = None
    workers: int = 0
    retries: int = 1
    resume: bool = False
    failures: list[CaseFailure] = field(default_factory=list)

    @classmethod
    def create(cls, *, cache=None, fn_cache=None, quarantine=None,
               telemetry: Telemetry | None = None,
               checkpoint_dir: str | Path | None = None,
               case_timeout: float | None = None, workers: int = 0,
               retries: int = 1, resume: bool = False,
               failures: list[CaseFailure] | None = None
               ) -> "RunContext":
        """Coercing constructor: accepts a cache directory path for
        ``cache``/``fn_cache``, a JSONL path for ``quarantine``, and
        None for ``telemetry``/``failures`` (fresh instances are
        made)."""
        return cls(
            cache=_coerce_cache(cache),
            fn_cache=_coerce_fn_cache(fn_cache),
            quarantine=coerce_quarantine(quarantine),
            telemetry=telemetry if telemetry is not None else Telemetry(),
            checkpoint_dir=(Path(checkpoint_dir)
                            if checkpoint_dir is not None else None),
            case_timeout=case_timeout,
            workers=workers,
            retries=retries,
            resume=resume,
            failures=failures if failures is not None else [])


class Stage:
    """One pipeline step in an :class:`Engine` chain.

    A stage transforms the upstream chunk iterator into its own output
    iterator via :meth:`pipe`.  Streaming stages (``streaming=True``)
    emit one output per input chunk and may be separated from their
    consumer by a prefetch thread; barrier stages consume the entire
    upstream before emitting (encoding needs the whole vocabulary,
    training the whole sample set).

    Lifecycle: :meth:`open` before the first chunk, :meth:`close`
    after the output is drained (or the run fails) — in reverse stage
    order, like nested context managers.
    """

    name = "stage"
    #: True when the stage emits per input chunk (eligible for a
    #: prefetch boundary); False for whole-input barriers.
    streaming = True

    def open(self, ctx: RunContext) -> None:
        """Acquire per-run resources (pools, dedup state)."""

    def close(self, ctx: RunContext) -> None:
        """Release resources and flush run-level accounting."""

    def pipe(self, upstream: Iterator, ctx: RunContext) -> Iterator:
        """Transform the upstream iterator (default: map process)."""
        for chunk in upstream:
            yield self.process(chunk, ctx)

    def process(self, chunk, ctx: RunContext):
        raise NotImplementedError


class ExtractStage(Stage):
    """Steps I-III per chunk of cases: slice, assemble, label,
    normalize — through the context's cache/quarantine/pool.

    Emits deduplicated :class:`LabeledGadget` lists by default (the
    training diet); ``per_case=True`` emits the raw per-case
    :class:`CaseResult` lists instead (the scan service needs each
    case's gadgets and failure individually, with no cross-case
    dedup).

    The underlying :class:`CorpusExtractor` keeps its process pool
    across chunks, so streaming pays worker startup once; the
    deduplicator is stateful across chunks, so the concatenated output
    equals a one-shot :func:`~repro.core.extract.extract_gadgets` call
    byte for byte.
    """

    name = "extract"
    streaming = True

    def __init__(self, kind: str = "path-sensitive",
                 categories: tuple[str, ...] | None = None, *,
                 use_control: bool = True, deduplicate: bool = True,
                 keep_gadget: bool = False, per_case: bool = False):
        self._base_config = _make_config(
            kind, categories, use_control=use_control,
            keep_gadget=keep_gadget, case_timeout=None)
        self.deduplicate = deduplicate
        self.per_case = per_case
        self._extractor: CorpusExtractor | None = None
        self._deduper: GadgetDeduplicator | None = None
        self._emitted = 0

    def open(self, ctx: RunContext) -> None:
        config = replace(self._base_config,
                         case_timeout=ctx.case_timeout)
        # the on-disk cache format does not persist raw gadget objects
        cache = None if config.keep_gadget else ctx.cache
        fn_cache = None if config.keep_gadget else ctx.fn_cache
        self._extractor = CorpusExtractor(
            config, workers=ctx.workers, cache=cache,
            quarantine=ctx.quarantine, telemetry=ctx.telemetry,
            retries=ctx.retries, keep_pool=True, fn_cache=fn_cache)
        self._deduper = GadgetDeduplicator(enabled=self.deduplicate)
        self._emitted = 0

    def process(self, chunk: Sequence[TestCase], ctx: RunContext
                ) -> list[CaseResult] | list[LabeledGadget]:
        assert self._extractor is not None, "stage not opened"
        results = self._extractor.run(chunk, failures=ctx.failures)
        if self.per_case:
            return results
        kept: list[LabeledGadget] = []
        for result in results:
            kept.extend(self._deduper.filter(result.gadgets))
        self._emitted += len(kept)
        return kept

    def close(self, ctx: RunContext) -> None:
        if self._extractor is not None:
            self._extractor.close()
            self._extractor = None
        if self._deduper is not None and not self.per_case:
            ctx.telemetry.count("dedup_hits", self._deduper.hits)
            ctx.telemetry.count("gadgets_emitted", self._emitted)
        self._deduper = None


class EncodeStage(Stage):
    """Step IV input side (barrier): vocabulary + word2vec + samples.

    Consumes every upstream gadget chunk (the vocabulary must see the
    whole corpus), then emits one :class:`EncodedDataset`.
    """

    name = "encode"
    streaming = False

    def __init__(self, *, dim: int = 30, w2v_epochs: int = 2,
                 seed: int = 13, min_count: int = 2,
                 vocab=None, word2vec=None):
        self.dim = dim
        self.w2v_epochs = w2v_epochs
        self.seed = seed
        self.min_count = min_count
        self.vocab = vocab
        self.word2vec = word2vec

    def pipe(self, upstream: Iterator, ctx: RunContext) -> Iterator:
        gadgets: list[LabeledGadget] = []
        for chunk in upstream:
            gadgets.extend(chunk)
        if not gadgets:
            raise ValueError("no gadgets could be extracted from the "
                             "training corpus")
        yield encode_gadgets(
            gadgets, dim=self.dim, w2v_epochs=self.w2v_epochs,
            seed=self.seed, vocab=self.vocab, word2vec=self.word2vec,
            min_count=self.min_count, telemetry=ctx.telemetry)


@dataclass
class TrainResult:
    """What a :class:`TrainStage` emits: the trained model, its loss
    trajectory, and the dataset it was trained on."""

    model: Any
    report: TrainReport
    dataset: EncodedDataset


class TrainStage(Stage):
    """Step V learning loop (barrier) over an :class:`EncodedDataset`.

    ``build_model`` receives the dataset (vocabulary size, pretrained
    embedding vectors) and returns a fresh model; binding the rare-id
    alias table is the builder's business so ablations can opt out.
    The checkpoint directory and resume flag come from the context.
    ``samples_of`` narrows training to a subset (cross-validation
    trains on fold indices of the shared dataset).
    """

    name = "train"
    streaming = False

    def __init__(self, build_model: Callable[[EncodedDataset], Any], *,
                 epochs: int = 8, batch_size: int = 16,
                 lr: float = 3e-3, seed: int = 0,
                 class_balance: bool = True, validation=None,
                 patience: int | None = None,
                 checkpoint_every: int = 1,
                 samples_of: Callable[[EncodedDataset], Sequence]
                 | None = None):
        self.build_model = build_model
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.class_balance = class_balance
        self.validation = validation
        self.patience = patience
        self.checkpoint_every = checkpoint_every
        self.samples_of = samples_of

    def pipe(self, upstream: Iterator, ctx: RunContext) -> Iterator:
        for dataset in upstream:
            model = self.build_model(dataset)
            samples = (dataset.samples if self.samples_of is None
                       else self.samples_of(dataset))
            report = train_classifier(
                model, samples, epochs=self.epochs,
                batch_size=self.batch_size, lr=self.lr,
                seed=self.seed, class_balance=self.class_balance,
                validation=self.validation, patience=self.patience,
                telemetry=ctx.telemetry,
                checkpoint_dir=ctx.checkpoint_dir,
                checkpoint_every=self.checkpoint_every,
                resume=ctx.resume)
            yield TrainResult(model, report, dataset)


class ScoreStage(Stage):
    """Step V inference side, per chunk of gadgets.

    Emits one ``(gadgets, scores)`` pair per upstream gadget chunk.
    Scores are byte-identical to a one-shot
    :func:`~repro.core.score.predict_proba` over the concatenated
    corpus because bucketing groups by *exact* length — a row's padded
    representation never depends on its batch-mates.

    With ``workers >= 1`` the stage scores across a
    :class:`~repro.core.scorer_pool.ScorerPool` of spawn processes
    (the same pool implementation the scan server's process backend
    uses): weights are exported to shared memory once in :meth:`open`
    and every chunk's length-bucketed batches fan out over the
    workers.  Bucketing and padding are identical to the serial path,
    so scores stay byte-identical — only the throughput changes.
    """

    name = "score"
    streaming = True

    def __init__(self, model, vocab, *, batch_size: int = 128,
                 workers: int = 0):
        self.model = model
        self.vocab = vocab
        self.batch_size = batch_size
        self.workers = workers
        self._pool = None

    def open(self, ctx: RunContext) -> None:
        if self.workers >= 1:
            from .scorer_pool import ScorerPool

            self.model.eval()
            self._pool = ScorerPool(self.model, self.workers,
                                    telemetry=ctx.telemetry)

    def close(self, ctx: RunContext) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def process(self, chunk: Sequence[LabeledGadget], ctx: RunContext
                ) -> tuple[list[LabeledGadget], np.ndarray]:
        gadgets = list(chunk)
        samples = [g.sample(self.vocab) for g in gadgets]
        if self._pool is not None:
            scores = self._pool.score_samples(
                samples, batch_size=self.batch_size)
        else:
            scores = predict_proba(self.model, samples,
                                   batch_size=self.batch_size)
        return gadgets, scores


_DONE = object()


class _Prefetch:
    """Iterator decoupled from its source by a bounded queue.

    A daemon thread eagerly drains ``source`` into the queue (at most
    ``depth`` items ahead), so the upstream stage keeps working while
    the consumer processes earlier output — the engine's overlap
    mechanism.  Source exceptions are re-raised at the consuming end.

    An abandoned consumer (an ``Engine.stream`` generator dropped
    mid-iteration) must call :meth:`close`: without it the pump thread
    can stay blocked forever on ``queue.put`` against a full queue,
    leaking the thread and racing stage cleanup (the closed
    ``CorpusExtractor``).  ``close`` poisons the pump, drains the
    queue until the thread exits, and leaves a ``_DONE`` sentinel so
    any downstream pump blocked on :meth:`__next__` unblocks too.
    """

    def __init__(self, source: Iterator, depth: int):
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._pump, args=(source,), daemon=True,
            name="engine-prefetch")
        self._thread.start()

    def _pump(self, source: Iterator) -> None:
        try:
            for item in source:
                self._queue.put(item)
                if self._closed:
                    return
        except BaseException as error:  # propagate to the consumer
            self._error = error
        finally:
            self._queue.put(_DONE)

    def close(self) -> None:
        """Stop the pump and join it (idempotent).

        Safe while the pump is blocked on a full queue: the drain loop
        below keeps freeing slots until the thread notices the poison
        flag (or finishes its final ``_DONE`` put) and exits.
        """
        self._closed = True
        while self._thread.is_alive():
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            self._thread.join(timeout=0.01)
        # wake any downstream consumer blocked in __next__
        try:
            self._queue.put_nowait(_DONE)
        except queue.Full:
            pass  # a sentinel (or data it will skip past) is queued

    def __iter__(self) -> "_Prefetch":
        return self

    def __next__(self):
        item = self._queue.get()
        if item is _DONE:
            self._thread.join()
            if self._error is not None and not self._closed:
                raise self._error
            raise StopIteration
        return item


class Engine:
    """Compose stages into a streaming pipeline over chunked input.

    ``stream(items)`` chunks the input (``chunk_size`` cases per
    chunk), threads the chunk iterator through every stage's
    :meth:`Stage.pipe`, and inserts a :class:`_Prefetch` boundary
    after each streaming stage that has a consumer — that thread is
    what lets extraction of chunk N+1 overlap the downstream work on
    chunk N.  ``streaming=False`` disables the prefetch boundaries
    (the serial barrier execution the benchmark compares against);
    results are identical either way.

    ``run(items)`` drains the stream: it returns the single item for
    barrier-terminated chains (a :class:`TrainResult`, an
    :class:`EncodedDataset`) and the list of emitted chunks otherwise.
    """

    def __init__(self, *stages: Stage, ctx: RunContext | None = None,
                 chunk_size: int = 64, prefetch: int = 2,
                 streaming: bool = True):
        if not stages:
            raise ValueError("an Engine needs at least one stage")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.stages = stages
        self.ctx = ctx if ctx is not None else RunContext.create()
        self.chunk_size = chunk_size
        self.prefetch = prefetch
        self.streaming = streaming

    def _chunks(self, items: Iterable) -> Iterator[list]:
        chunk: list = []
        for item in items:
            chunk.append(item)
            if len(chunk) >= self.chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def stream(self, items: Iterable) -> Iterator:
        """Lazily run the pipeline; yields the last stage's output."""
        opened: list[Stage] = []
        prefetches: list[_Prefetch] = []
        try:
            flow: Iterator = self._chunks(items)
            last = len(self.stages) - 1
            for position, stage in enumerate(self.stages):
                stage.open(self.ctx)
                opened.append(stage)
                flow = stage.pipe(flow, self.ctx)
                if (self.streaming and stage.streaming
                        and position < last):
                    flow = _Prefetch(flow, self.prefetch)
                    prefetches.append(flow)
            for item in flow:
                yield item
        finally:
            # Join pump threads before closing stages: an abandoned
            # consumer (early break / gen.close()) leaves pumps
            # running, and closing stages first would race them
            # against a shut-down extractor.  Upstream-first so each
            # closed pump's _DONE sentinel unblocks the next pump's
            # pending __next__.
            for prefetch in prefetches:
                prefetch.close()
            for stage in reversed(opened):
                stage.close(self.ctx)

    def run(self, items: Iterable):
        """Drain the stream; single item for barrier-ended chains."""
        outputs = list(self.stream(items))
        if not self.stages[-1].streaming:
            if len(outputs) != 1:
                raise RuntimeError(
                    f"barrier stage {self.stages[-1].name!r} emitted "
                    f"{len(outputs)} items (expected exactly 1)")
            return outputs[0]
        return outputs
