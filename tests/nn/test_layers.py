"""Tests for Module machinery and the layer zoo."""

import numpy as np
import pytest

from repro.nn import (Conv1d, Dropout, Embedding, Flatten, Linear,
                      Module, Parameter, ReLU, Sequential, Sigmoid,
                      Tanh, Tensor)

from .conftest import assert_grad_close, numerical_gradient


class TestModuleProtocol:
    def test_parameters_discovered_recursively(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 8, rng)
                self.fc2 = Linear(8, 2, rng)

        params = list(Net().parameters())
        assert len(params) == 4  # two weights, two biases

    def test_parameters_in_lists_discovered(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.blocks = [Linear(2, 2, rng), Linear(2, 2, rng)]

        assert len(list(Net().parameters())) == 4

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self, rng):
        layer = Linear(3, 2, rng)
        layer(Tensor(rng.normal(size=(1, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        src = Linear(3, 2, rng)
        dst = Linear(3, 2, np.random.default_rng(999))
        dst.load_state_dict(src.state_dict())
        assert np.allclose(src.weight.data, dst.weight.data)

    def test_load_state_dict_missing_key_raises(self, rng):
        layer = Linear(3, 2, rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        layer = Linear(3, 2, rng)
        bad = {key: np.zeros((1, 1))
               for key in layer.state_dict()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)


class TestLinear:
    def test_forward_values(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        (layer(x) ** 2).sum().backward()

        def loss():
            out = Tensor(x.data) @ Tensor(layer.weight.data) \
                + Tensor(layer.bias.data)
            return float((out.data ** 2).sum())

        assert_grad_close(layer.weight.grad,
                          numerical_gradient(loss, layer.weight.data),
                          1e-5)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])

    def test_gradient_scatter_accumulates_repeats(self, rng):
        emb = Embedding(5, 3, rng)
        ids = np.array([[1, 1, 2]])
        emb(ids).sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_pretrained_weights_used(self, rng):
        weights = rng.normal(size=(6, 4))
        emb = Embedding(6, 4, rng, weights=weights)
        assert np.allclose(emb.weight.data, weights)

    def test_pretrained_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            Embedding(6, 4, rng, weights=np.zeros((3, 3)))

    def test_id_aliases_route_lookup(self, rng):
        aliases = np.arange(6)
        aliases[4] = 1  # rare token 4 shares UNK's row
        emb = Embedding(6, 3, rng, id_aliases=aliases)
        out = emb(np.array([[4, 1]]))
        assert np.allclose(out.data[0, 0], emb.weight.data[1])
        assert np.allclose(out.data[0, 0], out.data[0, 1])

    def test_id_aliases_route_gradients(self, rng):
        aliases = np.arange(6)
        aliases[4] = 1
        emb = Embedding(6, 3, rng, id_aliases=aliases)
        emb(np.array([[4, 1]])).sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)  # both hits
        assert np.allclose(emb.weight.grad[4], 0.0)  # never touched

    def test_id_aliases_settable_after_construction(self, rng):
        emb = Embedding(6, 3, rng)
        emb.id_aliases = np.array([0, 1, 1, 1, 1, 1])
        out = emb(np.array([[5]]))
        assert np.allclose(out.data[0, 0], emb.weight.data[1])


class TestDropout:
    def test_identity_in_eval(self, rng):
        layer = Dropout(0.9, rng)
        layer.eval()
        x = Tensor(rng.normal(size=(100,)))
        assert np.allclose(layer(x).data, x.data)

    def test_masks_in_train(self, rng):
        layer = Dropout(0.5, rng)
        x = Tensor(np.ones(1000))
        out = layer(x)
        assert (out.data == 0).any()

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)

    def test_zero_rate_is_identity(self, rng):
        layer = Dropout(0.0, rng)
        x = Tensor(np.ones(10))
        assert layer(x) is x


class TestConvLayerAndActivations:
    def test_conv_layer_shape(self, rng):
        layer = Conv1d(3, 8, 3, rng, padding=1)
        out = layer(Tensor(rng.normal(size=(2, 3, 10))))
        assert out.shape == (2, 8, 10)

    def test_activation_modules(self, rng):
        x = Tensor(rng.normal(size=(5,)))
        assert np.allclose(ReLU()(x).data, np.maximum(x.data, 0))
        assert np.allclose(Tanh()(x).data, np.tanh(x.data))
        assert np.allclose(Sigmoid()(x).data,
                           1 / (1 + np.exp(-x.data)))

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert Flatten()(x).shape == (2, 12)

    def test_sequential_composes(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 1, rng))
        out = net(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 1)


class TestModuleAliasing:
    """Shared (aliased) submodules and named parameter discovery."""

    def _aliased_net(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.encoder = Linear(4, 4, rng)
                self.decoder = self.encoder  # weight tying
                self.head = Linear(4, 1, rng)

        return Net()

    def test_modules_yields_shared_submodule_once(self, rng):
        net = self._aliased_net(rng)
        mods = list(net.modules())
        assert len(mods) == 3  # net, encoder (once), head
        assert sum(1 for m in mods if m is net.encoder) == 1

    def test_modules_unique_without_aliases(self, rng):
        net = Sequential(Linear(2, 2, rng), ReLU(), Linear(2, 2, rng))
        mods = list(net.modules())
        assert len(mods) == len({id(m) for m in mods})

    def test_named_parameters_dotted_paths(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(3, 2, rng)
                self.blocks = [Linear(2, 2, rng)]
                self.gain = Parameter(np.ones(2))

        names = dict(Net().named_parameters())
        assert set(names) == {"fc.weight", "fc.bias",
                              "blocks.0.weight", "blocks.0.bias",
                              "gain"}

    def test_named_parameters_dedups_aliases_first_name_wins(self, rng):
        net = self._aliased_net(rng)
        named = list(net.named_parameters())
        params = [param for _, param in named]
        assert len(params) == len({id(p) for p in params})
        names = [name for name, _ in named]
        assert "encoder.weight" in names
        assert "decoder.weight" not in names

    def test_named_parameters_mirror_state_dict(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 1, rng))
        state = net.state_dict()
        for name, param in net.named_parameters():
            assert name in state
            assert np.array_equal(state[name], param.data)

    def test_named_parameters_cover_parameters(self, rng):
        net = self._aliased_net(rng)
        by_id = {id(p) for _, p in net.named_parameters()}
        assert {id(p) for p in net.parameters()} == by_id
